"""The ``repro monitor`` live ops console (plain-text, stdlib-only).

Polls a running :class:`~repro.service.RecommenderService` over HTTP —
``/metrics`` for counter totals, ``/debug/history`` for sparkline series,
``/debug/vars`` for the per-stage latency breakdown and ``/debug/quality``
for drift and SLO burn rates — and renders one compact frame per
interval:

- request rate (RPS) with a sparkline over the history window;
- p50/p95/p99 per pipeline stage (IS/GS/AS/rank);
- HTTP p95 sparkline derived from the request-latency histogram history;
- cache hit ratio, shed and deadline-exceeded totals;
- drift score/alert state and the SLO burn rates.

``--once`` renders a single frame and exits; ``--once --json`` emits the
raw collected snapshot as JSON for scripting, which is also what the
integration tests assert against.  The live mode clears the terminal with
ANSI escapes rather than curses — it degrades gracefully in pipes and
keeps this module importable everywhere.

Failures are part of the display, not exceptions: a dead server renders
as an error frame (and exits non-zero under ``--once``), so the console
can outlive the process it watches.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from collections.abc import Callable

#: Sparkline glyphs, lowest to highest.
_SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: ANSI: clear screen + home cursor, used between live frames.
_CLEAR = "\x1b[2J\x1b[H"

#: The pipeline stages rendered in order (``obs.STAGES``) with the short
#: labels the paper uses for the spaces (|IS|, |GS|, |AS|).
_STAGE_ORDER = (
    ("implementation_space", "is"),
    ("goal_space", "gs"),
    ("action_space", "as"),
    ("rank", "rank"),
)


def sparkline(values: list[float | None], width: int = 32) -> str:
    """Render ``values`` (``None`` = gap) as a block-character sparkline."""
    tail = values[-width:] if width > 0 else values
    present = [value for value in tail if value is not None]
    if not present:
        return "·" * len(tail)
    top = max(present)
    chars: list[str] = []
    for value in tail:
        if value is None:
            chars.append("·")
        elif top <= 0:
            chars.append(_SPARK_CHARS[0])
        else:
            index = int(value / top * (len(_SPARK_CHARS) - 1) + 0.5)
            chars.append(_SPARK_CHARS[min(index, len(_SPARK_CHARS) - 1)])
    return "".join(chars)


def parse_metrics(text: str) -> dict[str, float]:
    """Sum a Prometheus text exposition into per-family totals.

    Labels are deliberately collapsed — the console wants "requests shed,
    total" not per-reason cardinality.  Histogram ``_bucket`` samples are
    skipped (summing cumulative buckets is meaningless); ``_sum`` and
    ``_count`` series keep their suffixed names.
    """
    totals: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        sample, _, raw_value = line.rpartition(" ")
        name = sample.partition("{")[0]
        if not name or name.endswith("_bucket"):
            continue
        try:
            value = float(raw_value)
        except ValueError:
            continue
        totals[name] = totals.get(name, 0.0) + value
    return totals


def _fetch(base_url: str, path: str, timeout: float) -> str:
    with urllib.request.urlopen(base_url + path, timeout=timeout) as response:
        body: bytes = response.read()
    return body.decode("utf-8")


def _fetch_json(base_url: str, path: str, timeout: float) -> dict[str, object]:
    payload = json.loads(_fetch(base_url, path, timeout))
    if not isinstance(payload, dict):
        raise ValueError(f"{path} did not return a JSON object")
    return payload


def _sum_rate_series(history: dict[str, object]) -> list[float | None]:
    """Element-wise sum of every series' rate values (gaps stay gaps)."""
    series = history.get("series")
    timestamps = history.get("timestamps")
    if not isinstance(series, list) or not isinstance(timestamps, list):
        return []
    summed: list[float | None] = [None] * len(timestamps)
    for entry in series:
        if not isinstance(entry, dict):
            continue
        values = entry.get("values")
        if not isinstance(values, list):
            continue
        for index, value in enumerate(values[: len(summed)]):
            if isinstance(value, (int, float)):
                current = summed[index]
                summed[index] = value if current is None else current + value
    return summed


def _busiest_quantiles(
    history: dict[str, object],
) -> dict[str, list[float | None]]:
    """The quantile rows of the series with the highest observation rate.

    Quantiles cannot be merged across label sets, so the console shows
    the busiest one (by summed ``count_rate``) — for the request-latency
    family that is the hot endpoint, which is what an operator watches.
    """
    series = history.get("series")
    if not isinstance(series, list):
        return {}
    best: dict[str, object] | None = None
    best_weight = -1.0
    for entry in series:
        if not isinstance(entry, dict):
            continue
        rates = entry.get("count_rate")
        if not isinstance(rates, list):
            continue
        weight = sum(
            value for value in rates if isinstance(value, (int, float))
        )
        if weight > best_weight:
            best_weight = weight
            best = entry
    if best is None:
        return {}
    result: dict[str, list[float | None]] = {}
    for key, values in best.items():
        if key.startswith("p") and isinstance(values, list):
            result[key] = [
                value if isinstance(value, (int, float)) else None
                for value in values
            ]
    return result


def _last(values: list[float | None]) -> float | None:
    for value in reversed(values):
        if value is not None:
            return value
    return None


def collect_snapshot(
    base_url: str,
    timeout: float = 2.0,
    window: float | None = None,
    step: float | None = None,
) -> dict[str, object]:
    """One poll of the server, assembled into the console's data model."""
    base = base_url.rstrip("/")
    suffix = ""
    if window is not None:
        suffix += f"&window={window:g}"
    if step is not None:
        suffix += f"&step={step:g}"
    totals = parse_metrics(_fetch(base, "/metrics", timeout))
    vars_body = _fetch_json(base, "/debug/vars", timeout)
    quality_body = _fetch_json(base, "/debug/quality", timeout)
    history_index = _fetch_json(base, "/debug/history", timeout)
    index_families = history_index.get("families")

    def history_for(family: str) -> dict[str, object]:
        try:
            return _fetch_json(
                base, f"/debug/history?family={family}{suffix}", timeout
            )
        except (urllib.error.HTTPError, ValueError):
            # 404 until the family has traffic; render as an empty row.
            return {}

    rps_values = _sum_rate_series(history_for("repro_http_requests_total"))
    latency_quantiles = _busiest_quantiles(
        history_for("repro_http_request_seconds")
    )
    hits = totals.get("repro_cache_hits_total", 0.0)
    misses = totals.get("repro_cache_misses_total", 0.0)
    lookups = hits + misses
    quality = quality_body.get("quality")
    drift = quality.get("drift") if isinstance(quality, dict) else None
    slo = quality_body.get("slo")
    stages = vars_body.get("stages")
    return {
        "url": base,
        "ts": time.time(),
        "rps": {
            "current": _last(rps_values),
            "values": rps_values,
        },
        "latency": {
            key: {"current": _last(values), "values": values}
            for key, values in latency_quantiles.items()
        },
        "stages": stages if isinstance(stages, dict) else {},
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_ratio": (hits / lookups) if lookups else None,
        },
        "resilience": {
            "shed_total": totals.get("repro_shed_requests_total", 0.0),
            "deadline_total": totals.get(
                "repro_deadline_exceeded_total", 0.0
            ),
            "inflight": totals.get("repro_http_inflight_requests", 0.0),
            "draining": totals.get("repro_service_draining", 0.0) > 0,
        },
        "drift": drift if isinstance(drift, dict) else {},
        "slo": slo if isinstance(slo, dict) else {},
        "history": {
            "captures": history_index.get("captures"),
            "families": (
                len(index_families) if isinstance(index_families, dict) else 0
            ),
            "memory_bytes_estimate": history_index.get(
                "memory_bytes_estimate"
            ),
        },
    }


def _fmt(value: object, unit: str = "", scale: float = 1.0,
         precision: int = 1) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    return f"{value * scale:.{precision}f}{unit}"


def render_frame(snapshot: dict[str, object], width: int = 32) -> str:
    """One plain-text frame of the console."""
    ts = snapshot.get("ts")
    stamp = time.strftime(
        "%Y-%m-%d %H:%M:%S",
        time.localtime(ts if isinstance(ts, (int, float)) else None),
    )
    lines = [f"repro monitor — {snapshot.get('url')} — {stamp}"]

    rps = snapshot.get("rps")
    if isinstance(rps, dict):
        values = rps.get("values")
        spark = sparkline(values if isinstance(values, list) else [], width)
        lines.append(
            f"  rps        {spark}  {_fmt(rps.get('current'), '/s')}"
        )
    latency = snapshot.get("latency")
    if isinstance(latency, dict):
        for key in ("p50", "p95", "p99"):
            row = latency.get(key)
            if not isinstance(row, dict):
                continue
            values = row.get("values")
            spark = sparkline(
                values if isinstance(values, list) else [], width
            )
            lines.append(
                f"  http {key:<4}  {spark}  "
                f"{_fmt(row.get('current'), 'ms', 1000.0)}"
            )
    stages = snapshot.get("stages")
    if isinstance(stages, dict) and stages:
        parts = []
        for stage, label in _STAGE_ORDER:
            breakdown = stages.get(stage)
            if isinstance(breakdown, dict):
                parts.append(
                    f"{label} "
                    f"{_fmt(breakdown.get('p95_seconds'), 'ms', 1000.0, 2)}"
                )
        if parts:
            lines.append(f"  stage p95  {'  '.join(parts)}")
    cache = snapshot.get("cache")
    if isinstance(cache, dict):
        ratio = cache.get("hit_ratio")
        lines.append(
            f"  cache hit  {_fmt(ratio, '%', 100.0)}  "
            f"(hits {_fmt(cache.get('hits'), '', 1.0, 0)} "
            f"misses {_fmt(cache.get('misses'), '', 1.0, 0)})"
        )
    resilience = snapshot.get("resilience")
    if isinstance(resilience, dict):
        draining = "  DRAINING" if resilience.get("draining") else ""
        lines.append(
            f"  shed       {_fmt(resilience.get('shed_total'), '', 1.0, 0)}  "
            f"deadline {_fmt(resilience.get('deadline_total'), '', 1.0, 0)}  "
            f"inflight {_fmt(resilience.get('inflight'), '', 1.0, 0)}"
            f"{draining}"
        )
    drift = snapshot.get("drift")
    slo = snapshot.get("slo")
    drift_part = "-"
    if isinstance(drift, dict) and drift:
        state = "ALERT" if drift.get("alerting") else "ok"
        drift_part = f"{_fmt(drift.get('score'), '', 1.0, 3)} ({state})"
    slo_part = "-"
    if isinstance(slo, dict) and slo:
        slo_part = (
            f"avail {_fmt(slo.get('availability_burn_rate'), 'x', 1.0, 2)} "
            f"latency {_fmt(slo.get('latency_burn_rate'), 'x', 1.0, 2)}"
        )
    lines.append(f"  drift      {drift_part}   slo burn  {slo_part}")
    history = snapshot.get("history")
    if isinstance(history, dict):
        lines.append(
            f"  history    {_fmt(history.get('captures'), '', 1.0, 0)} "
            f"captures over {_fmt(history.get('families'), '', 1.0, 0)} "
            f"families, ~{_fmt(history.get('memory_bytes_estimate'), 'B', 1.0, 0)}"
        )
    return "\n".join(lines)


def _retry_after_seconds(exc: Exception) -> float | None:
    """``Retry-After`` of a draining server's 503, or ``None``.

    A draining :class:`~repro.service.RecommenderService` answers 503
    with a ``Retry-After`` header — that is back-pressure, not death, and
    the console must not confuse the two.
    """
    if not isinstance(exc, urllib.error.HTTPError) or exc.code != 503:
        return None
    raw = exc.headers.get("Retry-After") if exc.headers is not None else None
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


def poll_with_drain_grace(
    url: str,
    interval: float,
    window: float | None = None,
    step: float | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> dict[str, object]:
    """One poll that honors a draining server's ``Retry-After``.

    A 503 carrying ``Retry-After`` gets one courtesy retry after waiting
    ``min(retry_after, interval)`` — so a monitor that races a graceful
    drain sees the final frames instead of declaring the server dead.
    Anything else (including a second 503) propagates to the caller.
    """
    try:
        return collect_snapshot(url, window=window, step=step)
    except urllib.error.HTTPError as exc:
        retry_after = _retry_after_seconds(exc)
        if retry_after is None:
            raise
        sleep(min(retry_after, interval))
        return collect_snapshot(url, window=window, step=step)


def run_monitor(
    url: str,
    interval: float = 2.0,
    once: bool = False,
    as_json: bool = False,
    window: float | None = None,
    step: float | None = None,
    iterations: int | None = None,
    out: Callable[[str], None] = print,
) -> int:
    """Drive the console; returns a process exit code.

    ``once`` renders a single frame; otherwise frames repeat every
    ``interval`` seconds until interrupted (or ``iterations`` frames in
    tests).  Connection failures render an error frame — exit code 1
    under ``--once``, a retry in live mode.  A 503 with ``Retry-After``
    (the server is draining, not dead) is retried once within the
    interval before it counts as a failure.
    """
    frames = 0
    while True:
        try:
            snapshot = poll_with_drain_grace(url, interval, window=window, step=step)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            if once:
                out(f"repro monitor: cannot poll {url}: {exc}")
                return 1
            out(f"{_CLEAR}repro monitor: cannot poll {url}: {exc} (retrying)")
        else:
            if as_json:
                out(json.dumps(snapshot, sort_keys=True))
            elif once:
                out(render_frame(snapshot))
            else:
                out(_CLEAR + render_frame(snapshot))
        frames += 1
        if once or (iterations is not None and frames >= iterations):
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0
