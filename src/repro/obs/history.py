"""In-process metrics history: fixed-memory time series over the registry.

Every observability surface before this module is point-in-time — a
``/metrics`` scrape or ``/debug/vars`` hit says what is true *now*.  This
module adds the missing axis: :class:`MetricsHistory` periodically
snapshots every family in a :class:`~repro.obs.metrics.MetricsRegistry`
into per-series ring buffers, and derives operator-facing views at query
time:

- **counter** families become **rates** (clamped delta / elapsed between
  consecutive snapshots, so a counter reset after ``registry.reset()`` or
  a process restart reads as a dip to zero, never a negative spike);
- **gauge** families report their **last value** at each grid point;
- **histogram** families become **quantile-over-window** summaries
  (p50/p95/p99 by default) interpolated from cumulative-bucket deltas,
  Prometheus ``histogram_quantile`` style, plus an observation rate.

Memory is fixed by construction: one ring buffer of
``window / interval + 1`` points per live series, and series whose family
vanished (e.g. after a registry reset) are pruned once their newest point
ages out of the window.  ``index()`` reports the exact retention math and
a deterministic memory estimate; ``docs/monitoring.md`` walks through it.

Locking is deliberately boring: :meth:`MetricsHistory.capture` reads the
registry snapshot *before* taking the history mutex, so the two locks are
never nested and ``locks.toml`` needs no new edge.  Readers
(:meth:`series`, :meth:`index`) copy the rings under the mutex and derive
outside it, so a slow quantile query never blocks the capture thread.

The clock is injectable — tests drive :meth:`capture` directly with a
fake clock and get bit-deterministic rates; the background thread started
by :meth:`start` is only a convenience loop around the same method.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_right
from collections import deque
from collections.abc import Callable, Sequence

from repro.obs import metrics as obs_metrics
from repro.obs import runtime
from repro.utils.concurrency import make_lock

#: Default cadence and retention: one snapshot every 5s, 15 minutes kept.
DEFAULT_INTERVAL_SECONDS = 5.0
DEFAULT_WINDOW_SECONDS = 900.0

#: Quantiles derived for histogram families unless the query overrides.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)

#: Upper bound on grid points a single query may ask for; keeps a
#: pathological ``step`` from turning one HTTP request into a huge loop.
MAX_GRID_POINTS = 4096

#: Deterministic per-point memory estimates (bytes), used by ``index()``:
#: a scalar point is a float appended to two ring deques; a histogram
#: point adds count/sum floats plus one int per cumulative bucket.
_SCALAR_POINT_BYTES = 120
_HISTOGRAM_POINT_BYTES = 200
_BUCKET_BYTES = 32

#: Lock discipline, machine-checked by ``repro-lint`` (rule RL001):
#: these attributes may only be touched inside ``with self._lock``.  The
#: mutex is a leaf — ``capture()`` finishes reading the registry before
#: acquiring it — so ``locks.toml`` declares no edge for it.
_GUARDED_BY = {
    "MetricsHistory._series": "_lock",
    "MetricsHistory._captures": "_lock",
    "MetricsHistory._last_capture": "_lock",
}

LabelKey = tuple[tuple[str, str], ...]


class _Series:
    """One labelled time series: parallel ring buffers, newest last."""

    __slots__ = (
        "kind", "help", "label_key", "bounds",
        "timestamps", "values", "counts", "sums", "buckets",
    )

    def __init__(self, kind: str, help_text: str, label_key: LabelKey,
                 capacity: int, bounds: tuple[float, ...]) -> None:
        self.kind = kind
        self.help = help_text
        self.label_key = label_key
        self.bounds = bounds
        self.timestamps: deque[float] = deque(maxlen=capacity)
        # Counter/gauge points land in ``values``; histogram points land in
        # ``counts``/``sums``/``buckets``.  The unused deques stay empty.
        self.values: deque[float] = deque(maxlen=capacity)
        self.counts: deque[float] = deque(maxlen=capacity)
        self.sums: deque[float] = deque(maxlen=capacity)
        self.buckets: deque[tuple[int, ...]] = deque(maxlen=capacity)

    def point_bytes(self) -> int:
        if self.kind == "histogram":
            per_point = _HISTOGRAM_POINT_BYTES + _BUCKET_BYTES * (len(self.bounds) + 1)
        else:
            per_point = _SCALAR_POINT_BYTES
        return per_point * len(self.timestamps)


def histogram_quantile(
    quantile: float,
    delta_cumulative: Sequence[float],
    bounds: Sequence[float],
) -> float | None:
    """Interpolated quantile from cumulative bucket-count deltas.

    ``delta_cumulative`` is the element-wise difference of two cumulative
    bucket vectors (``+Inf`` last), i.e. the cumulative distribution of
    the observations that landed *between* two snapshots.  Follows
    Prometheus ``histogram_quantile``: linear interpolation inside the
    target bucket, lower edge 0 for the first bucket, and the highest
    finite bound for anything that lands in ``+Inf``.  Returns ``None``
    when the window holds no observations.
    """
    if not delta_cumulative:
        return None
    total = delta_cumulative[-1]
    if total <= 0:
        return None
    target = quantile * total
    index = 0
    while index < len(delta_cumulative) and delta_cumulative[index] < target:
        index += 1
    if index >= len(delta_cumulative):
        index = len(delta_cumulative) - 1
    if index >= len(bounds):  # the implicit +Inf bucket
        return float(bounds[-1]) if bounds else None
    upper = float(bounds[index])
    lower = float(bounds[index - 1]) if index > 0 else 0.0
    in_bucket = delta_cumulative[index] - (
        delta_cumulative[index - 1] if index > 0 else 0.0
    )
    if in_bucket <= 0:
        return upper
    below = delta_cumulative[index - 1] if index > 0 else 0.0
    fraction = (target - below) / in_bucket
    return lower + (upper - lower) * fraction


def _quantile_key(quantile: float) -> str:
    return f"p{quantile * 100:g}"


class MetricsHistory:
    """Periodic registry snapshots in fixed-size per-series ring buffers.

    Parameters
    ----------
    interval_seconds:
        Cadence of the background capture loop and the default query
        ``step``.
    window_seconds:
        Retention: each series keeps ``window / interval + 1`` points.
    clock:
        Timestamp source for captured points (default ``time.time``);
        inject a fake for deterministic tests.
    registry_getter:
        Callable returning the registry to snapshot (default the
        process-wide one), resolved per capture so a test that swaps the
        global registry is followed automatically.
    """

    def __init__(
        self,
        interval_seconds: float = DEFAULT_INTERVAL_SECONDS,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        *,
        clock: Callable[[], float] = time.time,
        registry_getter: Callable[[], obs_metrics.MetricsRegistry] | None = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError(f"interval must be positive, got {interval_seconds}")
        if window_seconds < interval_seconds:
            raise ValueError(
                f"window ({window_seconds}s) must cover at least one "
                f"interval ({interval_seconds}s)"
            )
        self.interval_seconds = float(interval_seconds)
        self.window_seconds = float(window_seconds)
        self.capacity = int(window_seconds // interval_seconds) + 1
        self._clock = clock
        self._registry_getter = registry_getter or obs_metrics.get_registry
        self._lock = make_lock("MetricsHistory._lock")
        self._series: dict[tuple[str, LabelKey], _Series] = {}
        self._captures = 0
        self._last_capture: float | None = None
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    def capture(self) -> float:
        """Take one snapshot pass; returns its wall-clock cost in seconds.

        Reads the registry (under the registry's own lock) first, then
        appends under the history mutex — the locks never nest.  A capture
        stamped at or before the previous one (frozen fake clock) replaces
        the newest point instead of appending, so repeated calls are
        idempotent rather than a division-by-zero in rate derivation.
        """
        started = time.perf_counter()
        now = float(self._clock())
        snapshot = self._registry_getter().snapshot(include_buckets=True)
        with self._lock:
            for name, family in snapshot.items():
                kind = str(family["kind"])
                help_text = str(family["help"])
                raw_bounds = family.get("bounds", ())
                bounds = tuple(float(b) for b in raw_bounds) \
                    if isinstance(raw_bounds, (tuple, list)) else ()
                for label_key, sample in family["samples"].items():
                    series_key = (name, label_key)
                    series = self._series.get(series_key)
                    if series is None:
                        series = _Series(
                            kind, help_text, label_key, self.capacity, bounds
                        )
                        self._series[series_key] = series
                    elif bounds and not series.bounds:
                        series.bounds = bounds
                    if series.timestamps and now <= series.timestamps[-1]:
                        self._pop_newest(series)
                    series.timestamps.append(now)
                    if kind == "histogram" and isinstance(sample, dict):
                        series.counts.append(float(sample["count"]))
                        series.sums.append(float(sample["sum"]))
                        raw = sample.get("buckets", ())
                        series.buckets.append(
                            tuple(int(b) for b in raw)
                            if isinstance(raw, (tuple, list)) else ()
                        )
                    else:
                        series.values.append(float(sample))  # type: ignore[arg-type]
            # Series whose family vanished (registry reset, label churn)
            # stop receiving points; drop them once their newest point has
            # aged out of the retention window so memory stays bounded.
            horizon = now - self.window_seconds
            stale = [
                key for key, series in self._series.items()
                if not series.timestamps or series.timestamps[-1] < horizon
            ]
            for key in stale:
                del self._series[key]
            self._captures += 1
            self._last_capture = now
            total_series = len(self._series)
            total_points = sum(
                len(series.timestamps) for series in self._series.values()
            )
        elapsed = time.perf_counter() - started
        if runtime.metrics_enabled():
            registry = self._registry_getter()
            registry.counter(
                "repro_history_snapshots_total",
                "Metric-history snapshot passes taken.",
            ).inc()
            registry.gauge(
                "repro_history_series",
                "Live time series tracked by the metrics history.",
            ).set(total_series)
            registry.gauge(
                "repro_history_points",
                "Data points buffered across all history ring buffers.",
            ).set(total_points)
            registry.histogram(
                "repro_history_capture_seconds",
                "Wall-clock cost of one metrics-history snapshot pass.",
                buckets=obs_metrics.CACHE_LOOKUP_BUCKETS,
            ).observe(elapsed)
        return elapsed

    @staticmethod
    def _pop_newest(series: _Series) -> None:
        series.timestamps.pop()
        if series.values:
            series.values.pop()
        if series.counts:
            series.counts.pop()
            series.sums.pop()
            series.buckets.pop()

    # ------------------------------------------------------------------
    # Background loop
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the background capture thread (idempotent).

        Takes one immediate capture so ``/debug/history`` has a baseline
        point before the first interval elapses.
        """
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop_event.clear()
        self.capture()
        thread = threading.Thread(
            target=self._run, name="repro-metrics-history", daemon=True
        )
        self._thread = thread
        thread.start()

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_seconds):
            try:
                self.capture()
            except Exception:  # pragma: no cover - keep the loop alive
                # A half-registered family mid-reset must not kill the
                # capture loop; the next tick retries from scratch.
                continue

    def stop(self) -> None:
        """Stop the background thread and wait for it to exit."""
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None

    def reset(self) -> None:
        """Drop every buffered series (test isolation helper)."""
        with self._lock:
            self._series.clear()
            self._captures = 0
            self._last_capture = None

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def families(self) -> list[str]:
        """Captured family names, sorted."""
        with self._lock:
            return sorted({name for name, _ in self._series})

    def index(self) -> dict[str, object]:
        """Summary of what the history holds and what it costs.

        The memory figure is a deterministic estimate from the documented
        per-point constants (see ``docs/monitoring.md``), not a live
        ``sys.getsizeof`` walk — it exists so operators can sanity-check
        retention math, and so tests can pin it.
        """
        with self._lock:
            kinds: dict[str, str] = {}
            series_counts: dict[str, int] = {}
            point_counts: dict[str, int] = {}
            memory = 0
            for (name, _), series in self._series.items():
                kinds.setdefault(name, series.kind)
                series_counts[name] = series_counts.get(name, 0) + 1
                point_counts[name] = (
                    point_counts.get(name, 0) + len(series.timestamps)
                )
                memory += series.point_bytes()
            captures = self._captures
            last = self._last_capture
        return {
            "interval_seconds": self.interval_seconds,
            "window_seconds": self.window_seconds,
            "capacity_points_per_series": self.capacity,
            "captures": captures,
            "last_capture": last,
            "families": {
                name: {
                    "kind": kinds[name],
                    "series": series_counts[name],
                    "points": point_counts[name],
                }
                for name in sorted(kinds)
            },
            "memory_bytes_estimate": memory,
        }

    def series(
        self,
        family: str,
        *,
        window: float | None = None,
        step: float | None = None,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        end: float | None = None,
    ) -> dict[str, object] | None:
        """Aligned series for one family; ``None`` if never captured.

        The grid has ``floor(window / step) + 1`` timestamps ending at the
        newest capture (or ``end``).  Each grid point reads the newest
        snapshot at or before it: counters as clamped rates between that
        snapshot and its predecessor, gauges as the raw value, histograms
        as interpolated window quantiles plus an observation rate.  Grid
        points with no usable data are ``null`` so gaps render as gaps.

        When ``step`` is omitted it defaults to the capture interval,
        coarsened just enough to keep the grid under
        :data:`MAX_GRID_POINTS` — the no-argument query always succeeds
        no matter how the window/interval ratio is configured.  An
        *explicit* step that overflows the grid raises :class:`ValueError`.
        """
        window_s = float(window) if window is not None else self.window_seconds
        if step is not None:
            step_s = float(step)
        else:
            step_s = max(
                self.interval_seconds, window_s / (MAX_GRID_POINTS - 1)
            )
        if window_s <= 0 or step_s <= 0:
            raise ValueError("window and step must be positive")
        steps = int(window_s // step_s)
        if steps + 1 > MAX_GRID_POINTS:
            raise ValueError(
                f"window/step asks for {steps + 1} grid points "
                f"(max {MAX_GRID_POINTS})"
            )
        with self._lock:
            matching = [
                series for (name, _), series in sorted(self._series.items())
                if name == family
            ]
            if not matching:
                return None
            kind = matching[0].kind
            help_text = matching[0].help
            copies = [
                (
                    series.label_key,
                    list(series.timestamps),
                    list(series.values),
                    list(series.counts),
                    list(series.buckets),
                    series.bounds,
                )
                for series in matching
            ]
            last = self._last_capture
        end_ts = float(end) if end is not None else (last if last is not None else 0.0)
        times = [end_ts - (steps - i) * step_s for i in range(steps + 1)]
        rendered: list[dict[str, object]] = []
        for label_key, stamps, values, counts, buckets, bounds in copies:
            labels = dict(label_key)
            if kind == "histogram":
                rendered.append(self._histogram_series(
                    labels, stamps, counts, buckets, bounds, times, quantiles
                ))
            elif kind == "counter":
                rendered.append({
                    "labels": labels,
                    "values": self._rate_series(stamps, values, times),
                })
            else:
                rendered.append({
                    "labels": labels,
                    "values": self._gauge_series(stamps, values, times),
                })
        return {
            "family": family,
            "kind": kind,
            "help": help_text,
            "end": end_ts,
            "window_seconds": window_s,
            "step_seconds": step_s,
            "timestamps": times,
            "series": rendered,
        }

    @staticmethod
    def _gauge_series(
        stamps: list[float], values: list[float], times: list[float]
    ) -> list[float | None]:
        out: list[float | None] = []
        for t in times:
            index = bisect_right(stamps, t + 1e-9) - 1
            out.append(values[index] if index >= 0 else None)
        return out

    @staticmethod
    def _rate_series(
        stamps: list[float], values: list[float], times: list[float]
    ) -> list[float | None]:
        out: list[float | None] = []
        for t in times:
            index = bisect_right(stamps, t + 1e-9) - 1
            if index < 1:
                out.append(None)
                continue
            dt = stamps[index] - stamps[index - 1]
            if dt <= 0:
                out.append(None)
                continue
            # Clamp: a counter reset (registry.reset, restart) reads as a
            # zero-rate dip, never a negative spike.
            out.append(max(0.0, values[index] - values[index - 1]) / dt)
        return out

    @staticmethod
    def _histogram_series(
        labels: dict[str, str],
        stamps: list[float],
        counts: list[float],
        buckets: list[tuple[int, ...]],
        bounds: tuple[float, ...],
        times: list[float],
        quantiles: Sequence[float],
    ) -> dict[str, object]:
        count_rate: list[float | None] = []
        quantile_rows: dict[str, list[float | None]] = {
            _quantile_key(q): [] for q in quantiles
        }
        for t in times:
            index = bisect_right(stamps, t + 1e-9) - 1
            usable = index >= 1 and stamps[index] - stamps[index - 1] > 0
            if not usable:
                count_rate.append(None)
                for q in quantiles:
                    quantile_rows[_quantile_key(q)].append(None)
                continue
            dt = stamps[index] - stamps[index - 1]
            count_rate.append(max(0.0, counts[index] - counts[index - 1]) / dt)
            newer, older = buckets[index], buckets[index - 1]
            if len(newer) != len(older) or not newer:
                delta: list[float] = []
            else:
                delta = [max(0.0, float(n - o)) for n, o in zip(newer, older)]
            for q in quantiles:
                quantile_rows[_quantile_key(q)].append(
                    histogram_quantile(q, delta, bounds)
                )
        result: dict[str, object] = {"labels": labels, "count_rate": count_rate}
        result.update(quantile_rows)
        return result
