"""Paper Table 2: top-10 overlap of goal-based vs standard recommenders.

The paper reports overlaps of at most ~2.3% on both datasets — the
goal-based mechanisms retrieve fundamentally different actions than content
and collaborative filtering.  Expected shape here: every goal-based /
baseline overlap is small (well below the overlaps among goal-based methods
reported by Table 6's bench).
"""

from __future__ import annotations

from conftest import publish

from repro.core import PAPER_STRATEGIES
from repro.eval import average_list_overlap, format_table


def _overlap_rows(harness, baselines):
    goal_lists = harness.run_goal_methods()
    baseline_lists = harness.run_baselines(baselines)
    rows = []
    for strategy in PAPER_STRATEGIES:
        row = [strategy]
        for baseline in baselines:
            row.append(
                average_list_overlap(goal_lists[strategy], baseline_lists[baseline])
            )
        rows.append(row)
    return rows


def test_table2_foodmart(foodmart_harness, benchmark):
    baselines = ("content", "cf_mf", "cf_knn")
    rows = benchmark.pedantic(
        _overlap_rows, args=(foodmart_harness, baselines), rounds=1, iterations=1
    )
    table = format_table(
        ["method"] + [f"overlap_{b}" for b in baselines],
        rows,
        title="Table 2 (foodmart): goal-based vs standard top-10 overlap",
    )
    publish("table2_foodmart", table)
    # Shape check: goal-based lists barely overlap any baseline's.
    for row in rows:
        for value in row[1:]:
            assert value < 0.35


def test_table2_fortythree(fortythree_harness, benchmark):
    baselines = ("cf_mf", "cf_knn")  # no content features on 43T (paper)
    rows = benchmark.pedantic(
        _overlap_rows, args=(fortythree_harness, baselines), rounds=1, iterations=1
    )
    table = format_table(
        ["method"] + [f"overlap_{b}" for b in baselines],
        rows,
        title="Table 2 (43things): goal-based vs standard top-10 overlap",
    )
    publish("table2_fortythree", table)
    for row in rows:
        for value in row[1:]:
            assert value < 0.35
