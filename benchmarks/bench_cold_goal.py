"""Cold-goal evaluation (extension): reaching a goal the past only hints at.

For multi-goal users, one goal's exclusive actions are hidden entirely; a
method succeeds when its top-10 reaches them anyway.  This operationalizes
the introduction's core claim — goal-based recommendation can propose
actions *different in nature* from the visible past — and is the regime
where similarity-driven baselines are structurally handicapped: the hidden
actions never co-occur with the visible ones in any training activity of
the same user.
"""

from __future__ import annotations

from conftest import publish

from repro.baselines import CFKnnRecommender, PopularityRecommender
from repro.core import PAPER_STRATEGIES
from repro.eval import format_table
from repro.eval.cold_goal import build_cold_goal_cases, evaluate_cold_goal


def _cold_goal_rows(harness):
    model = harness.model
    cases = build_cold_goal_cases(
        harness.dataset, model, seed=0, max_users=100
    )
    rows = []
    for strategy in PAPER_STRATEGIES:
        lists = [
            harness.recommender.recommend(case.visible, k=harness.k,
                                          strategy=strategy)
            for case in cases
        ]
        result = evaluate_cold_goal(strategy, lists, cases)
        rows.append([strategy, result.reach_rate, result.mean_recovered])
    training = [case.visible for case in cases]
    for baseline in (CFKnnRecommender(), PopularityRecommender()):
        baseline.fit(training)
        lists = [
            baseline.recommend(case.visible, k=harness.k) for case in cases
        ]
        result = evaluate_cold_goal(baseline.name, lists, cases)
        rows.append([baseline.name, result.reach_rate, result.mean_recovered])
    return rows


def test_cold_goal_fortythree(fortythree_harness, benchmark):
    rows = benchmark.pedantic(
        _cold_goal_rows, args=(fortythree_harness,), rounds=1, iterations=1
    )
    publish(
        "cold_goal_fortythree",
        format_table(
            ["method", "reach_rate", "mean_recovered"],
            rows,
            title="Cold goal (43things): reaching a fully hidden goal, top-10",
        ),
    )
    values = {row[0]: row for row in rows}
    best_goal = max(values[s][1] for s in PAPER_STRATEGIES)
    for baseline in ("cf_knn", "popularity"):
        assert best_goal > values[baseline][1]
