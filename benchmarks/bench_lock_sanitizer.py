"""Lock-sanitizer overhead: disabled within noise, enabled within 25%.

The runtime half of the concurrency-correctness gate (see
``docs/static-analysis.md`` for the static RL006/RL007 half) promises two
budgets on the paper-scale recommend path:

- **disabled** (the production default): the ``make_lock``/``RWLock``
  factories return *raw* ``threading`` primitives when the sanitizer is
  off, so a service built without ``--lock-sanitizer`` must be within
  measurement noise of one that predates the subsystem entirely (≤2%) —
  the type-identity assertion below is the structural proof, the timing
  documents it;
- **enabled**: a service built under ``enable_lock_sanitizer`` pays for
  per-thread acquisition stacks, order checks and hold timing on every
  lock operation, and must stay within 25% end to end.

The workload drives :class:`~repro.service.ModelManager.recommend` — the
serving path whose locks (``ModelManager._lock`` read side, the two LRU
cache mutexes) the sanitizer actually instruments — with unit-sized caches
so every request does real scoring work rather than degenerating into a
lock microbench.  Timings interleave the three configurations round-robin
and compare each round's back-to-back tuple, taking the cleanest pair per
ratio: load drift slows all arms of a round together, so the paired ratio
isolates instrumentation cost (same method as ``bench_quality_telemetry``).
"""

from __future__ import annotations

import gc
import threading
import time

from conftest import publish

from repro.core.incremental import IncrementalGoalModel
from repro.eval.report import format_table
from repro.service import ModelManager
from repro.utils.concurrency import (
    enable_lock_sanitizer,
    lock_sanitizer_snapshot,
    lock_sanitizer_violations,
    make_condition,
    make_lock,
    make_rlock,
    reset_lock_sanitizer,
)

REPEATS = 9
TOP_K = 10
DISABLED_BUDGET = 1.02  # within noise of a pre-subsystem build
ENABLED_BUDGET = 1.25  # full checking on the recommend path


def _build_manager(harness) -> ModelManager:
    incremental = IncrementalGoalModel.from_library(harness.model.to_library())
    # Unit caches: every request misses and runs the full scoring pipeline,
    # which is what "the recommend path" means at paper scale — a warm-LRU
    # loop would time nothing but the lock acquisitions themselves.
    return ModelManager(incremental, cache_size=1, space_cache_size=1)


def _run_once(manager: ModelManager, activities) -> float:
    start = time.perf_counter()
    for activity in activities:
        manager.recommend(activity, k=TOP_K, strategy="breadth")
    return time.perf_counter() - start


def test_lock_sanitizer_overhead(foodmart_harness, benchmark):
    activities = [list(user.observed) for user in foodmart_harness.split]

    reset_lock_sanitizer()
    # Structural zero-overhead proof: with the sanitizer off the factories
    # hand back the raw stdlib primitives, not wrappers around them.
    assert type(make_lock("Bench._lock")) is type(threading.Lock())
    assert type(make_rlock("Bench._rlock")) is type(threading.RLock())
    assert isinstance(make_condition("Bench._cond"), threading.Condition)

    baseline = _build_manager(foodmart_harness)
    disabled = _build_manager(foodmart_harness)
    enable_lock_sanitizer()  # discovers the committed locks.toml
    assert lock_sanitizer_snapshot()["declared_edges"] >= 1
    enabled = _build_manager(foodmart_harness)

    def interleaved() -> tuple[float, float, float, float, float]:
        for manager in (baseline, disabled, enabled):
            _run_once(manager, activities)  # warm outside the timed rounds
        rounds: list[tuple[float, float, float]] = []
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(REPEATS):
                gc.collect()
                rounds.append(
                    (
                        _run_once(baseline, activities),
                        _run_once(disabled, activities),
                        _run_once(enabled, activities),
                    )
                )
        finally:
            if gc_was_enabled:
                gc.enable()
        disabled_ratio = min(d / b for b, d, _e in rounds)
        enabled_ratio = min(e / b for b, _d, e in rounds)
        best_base = min(b for b, _d, _e in rounds)
        best_enabled = min(e for _b, _d, e in rounds)
        best_disabled = min(d for _b, d, _e in rounds)
        return (
            disabled_ratio, enabled_ratio,
            best_base, best_disabled, best_enabled,
        )

    try:
        (
            disabled_ratio, enabled_ratio,
            best_base, best_disabled, best_enabled,
        ) = benchmark.pedantic(interleaved, rounds=1, iterations=1)
        violations = lock_sanitizer_violations()
        sites = lock_sanitizer_snapshot()["sites"]
    finally:
        reset_lock_sanitizer()

    per_request_us = 1e6 / len(activities)
    rows = [
        ["baseline (no sanitizer)", best_base * per_request_us, 1.0],
        ["disabled (factories, off)", best_disabled * per_request_us,
         disabled_ratio],
        ["enabled (full checking)", best_enabled * per_request_us,
         enabled_ratio],
    ]
    publish(
        "lock_sanitizer",
        format_table(
            ["configuration", "us_per_request", "vs_baseline"],
            rows,
            title=(
                f"lock sanitizer overhead: ModelManager.recommend over "
                f"FoodMart, best pair of {REPEATS}x{len(activities)} requests"
            ),
        ),
    )

    assert disabled_ratio <= DISABLED_BUDGET, (
        f"sanitizer-off build is {disabled_ratio:.3f}x baseline "
        f"(budget {DISABLED_BUDGET}x) — the disabled mode must be free"
    )
    assert enabled_ratio <= ENABLED_BUDGET, (
        f"instrumented build is {enabled_ratio:.3f}x baseline "
        f"(budget {ENABLED_BUDGET}x)"
    )
    # The gate measured the real thing: the instrumented manager's locks
    # were exercised and the committed ordering held.
    assert violations == ()
    assert "ModelManager._lock" in sites
    assert "LRUCache._lock" in sites
