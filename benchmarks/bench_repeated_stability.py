"""Stability of the headline result across protocol seeds (extension).

The paper reports single-split numbers; this bench reruns the Figure 4
comparison under several split seeds and reports each method's pooled TPR
with a bootstrap confidence interval.  The goal-based advantage must hold
on every individual split, not just on average.
"""

from __future__ import annotations

from conftest import FORTYTHREE_CONFIG, publish

from repro.data import generate_fortythree
from repro.eval import format_table
from repro.eval.repeated import repeated_evaluation

METHODS = ("breadth", "focus_cmp", "best_match", "cf_knn", "cf_mf")
SEEDS = (0, 1, 2)


def test_tpr_stability(benchmark):
    dataset = generate_fortythree(FORTYTHREE_CONFIG, seed=1)
    results = benchmark.pedantic(
        repeated_evaluation,
        args=(dataset,),
        kwargs={"methods": METHODS, "seeds": SEEDS, "max_users": 100},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            result.method,
            result.mean,
            result.interval.lower,
            result.interval.upper,
        ]
        + [round(m, 3) for m in result.per_split_means]
        for result in results
    ]
    publish(
        "repeated_tpr_stability",
        format_table(
            ["method", "pooled_tpr", "ci_low", "ci_high"]
            + [f"seed{s}" for s in SEEDS],
            rows,
            title="TPR stability (43things) across split seeds",
        ),
    )
    by_method = {result.method: result for result in results}
    for goal_method in ("breadth", "focus_cmp", "best_match"):
        for baseline in ("cf_knn", "cf_mf"):
            # Advantage holds on every split individually...
            for g, b in zip(
                by_method[goal_method].per_split_means,
                by_method[baseline].per_split_means,
            ):
                assert g > b
            # ...and the pooled intervals do not even overlap.
            assert (
                by_method[goal_method].interval.lower
                > by_method[baseline].interval.upper
            )
