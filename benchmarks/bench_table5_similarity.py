"""Paper Table 5: pairwise feature similarity inside each top-10 list.

The paper's finding (grocery dataset only — 43Things has no accepted domain
features): the content-based lists are by far the most internally similar
(AvgAvg 0.81 with AvgMax 1.0), collaborative lists the least (~0.15), the
goal-based lists in between (0.24-0.33) — different enough from the user's
past, but coherent because they serve shared recipes.  Expected shape here:
content > every goal-based method > nothing in particular vs CF, plus
content's AvgMax near 1.
"""

from __future__ import annotations

from conftest import publish

from repro.core import PAPER_STRATEGIES
from repro.eval import average_pairwise_similarity, format_table


def _similarity_rows(harness, methods):
    similarity = harness.content_similarity()
    rows = []
    for method in methods:
        if method in PAPER_STRATEGIES:
            lists = harness.run_goal_method(method)
        else:
            lists = harness.run_baseline(method)
        summary = average_pairwise_similarity(lists, similarity)
        rows.append([method, summary.average, summary.maximum, summary.minimum])
    return rows


def test_table5_foodmart(foodmart_harness, benchmark):
    methods = ("content", "cf_knn", "cf_mf") + PAPER_STRATEGIES
    rows = benchmark.pedantic(
        _similarity_rows, args=(foodmart_harness, methods), rounds=1, iterations=1
    )
    publish(
        "table5_foodmart",
        format_table(
            ["method", "AvgAvg", "AvgMax", "AvgMin"],
            rows,
            title="Table 5 (foodmart): pairwise feature similarity within lists",
        ),
    )
    values = {row[0]: row[1] for row in rows}
    for strategy in PAPER_STRATEGIES:
        assert values["content"] > values[strategy]
    max_values = {row[0]: row[2] for row in rows}
    assert max_values["content"] > 0.9
