"""Quality telemetry overhead: monitor + flight recorder within 10%.

The quality layer (``docs/quality.md``) promises the same budget as the
base instrumentation: with metrics, tracing and exemplars already on,
additionally feeding the :class:`~repro.obs.QualityMonitor` (per-strategy
accounting, OOV/coverage, PSI drift window) and the sampled
:class:`~repro.obs.FlightRecorder` (JSONL export at a production-like 0.25
sample rate) must cost at most 10% over the instrumented-but-unmonitored
path.

Timings interleave the two configurations round-robin and compare each
round's back-to-back pair, taking the cleanest pair: machine load that
drifts across rounds slows both arms of a pair together, so the paired
ratio isolates hook cost where a min-over-all-rounds comparison would
gate on which round happened to catch a quiet machine.  The
recorder flushes *outside* the timed region — the budget covers the
request-path cost (hash, enqueue), not the worker's disk writes.  The
telemetry directory is kept under ``benchmarks/results/telemetry`` so CI
can archive what a bench run actually exported.
"""

from __future__ import annotations

import gc
import shutil
import time

from conftest import RESULTS_DIR, publish

from repro import obs
from repro.eval.report import format_table

REPEATS = 7
REQUESTS_PER_REPEAT = 60
OVERHEAD_BUDGET = 1.10  # quality+exporter may cost at most 10% extra
SAMPLE_RATE = 0.25
TELEMETRY_DIR = RESULTS_DIR / "telemetry"


def _run_plain(recommender, activities) -> float:
    start = time.perf_counter()
    for activity in activities:
        recommender.recommend(activity, k=10, strategy="breadth")
    return time.perf_counter() - start


def _run_monitored(recommender, model, activities, ids, monitor, recorder) -> float:
    start = time.perf_counter()
    for request_id, activity in zip(ids, activities):
        result = recommender.recommend(activity, k=10, strategy="breadth")
        monitor.observe_traffic(activity, model, result, generation=0)
        recorder.record_request(request_id, "/recommend", "POST", 200, 0.0)
    return time.perf_counter() - start


def test_quality_telemetry_overhead(foodmart_harness, benchmark):
    recommender = foodmart_harness.recommender
    model = foodmart_harness.model
    activities = [
        user.observed for user in foodmart_harness.split
    ][:REQUESTS_PER_REPEAT]
    ids = [f"req-{index:05d}" for index in range(len(activities))]

    if TELEMETRY_DIR.exists():
        shutil.rmtree(TELEMETRY_DIR)
    recorder = obs.FlightRecorder(TELEMETRY_DIR, sample_rate=SAMPLE_RATE)
    monitor = obs.QualityMonitor(window_size=256)
    monitor.drift.set_baseline(obs.BaselineProfile.from_model(model))
    previous = obs.set_quality_monitor(monitor)

    def interleaved() -> tuple[float, float]:
        obs.enable(metrics=True, tracing=True, exemplars=True)
        _run_plain(recommender, activities)  # warm caches before timing
        plain: list[float] = []
        monitored: list[float] = []
        # GC pauses scale with whatever heap the surrounding test session
        # built up, so a collection landing inside one timed region would
        # gate on suite composition rather than hook cost: collect between
        # rounds, never during them.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(REPEATS):
                gc.collect()
                # enable() never clears flags, so reset before each arm:
                # plain rounds must not keep the last round's quality flag.
                obs.disable()
                obs.enable(metrics=True, tracing=True, exemplars=True)
                plain.append(_run_plain(recommender, activities))
                obs.enable(
                    metrics=True, tracing=True, exemplars=True, quality=True
                )
                monitored.append(
                    _run_monitored(
                        recommender, model, activities, ids, monitor, recorder
                    )
                )
                # Drain the worker between rounds, outside the timed
                # region: the budget is the request-path cost, not disk
                # throughput.
                assert recorder.flush(timeout=10.0)
        finally:
            if gc_was_enabled:
                gc.enable()
        obs.disable()
        # Judge each round by its own back-to-back pair: under drifting
        # load the fastest plain round and the fastest monitored round can
        # land in different load regimes, which measures the machine, not
        # the hooks.
        best_pair = min(zip(plain, monitored), key=lambda pair: pair[1] / pair[0])
        return best_pair

    try:
        best_plain, best_monitored = benchmark.pedantic(
            interleaved, rounds=1, iterations=1
        )
    finally:
        obs.set_quality_monitor(previous)
        obs.disable()
        sampled = sum(1 for request_id in ids if recorder.should_sample(request_id))
        snap = recorder.snapshot()
        recorder.close()

    ratio = best_monitored / best_plain
    per_request_us = 1e6 / len(activities)
    rows = [
        ["metrics+tracing+exemplars", best_plain * per_request_us, 1.0],
        ["+quality+flight-recorder", best_monitored * per_request_us, ratio],
    ]
    publish(
        "quality_telemetry",
        format_table(
            ["configuration", "us_per_request", "vs_instrumented"],
            rows,
            title=(
                f"quality telemetry overhead: breadth over FoodMart, best "
                f"pair of {REPEATS}x{len(activities)} requests, "
                f"sample rate {SAMPLE_RATE}"
            ),
        ),
    )

    assert ratio <= OVERHEAD_BUDGET, (
        f"monitored recommend is {ratio:.3f}x the instrumented path "
        f"(budget {OVERHEAD_BUDGET}x)"
    )
    # Sanity: the monitor actually accounted every monitored request ...
    assert monitor.snapshot()["observations"] == REPEATS * len(activities)
    # ... head-based sampling admitted the same deterministic subset each
    # round, and the worker wrote every admitted record to disk.
    assert 0 < sampled < len(activities)
    assert snap["written"] == REPEATS * sampled
    assert snap["dropped"] == {}
    records = list(obs.iter_telemetry_records(TELEMETRY_DIR))
    assert len(records) == REPEATS * sampled
    assert {record["kind"] for record in records} == {"request"}
