"""Observability overhead: instrumented recommend must stay within 10%.

The instrumentation contract (``docs/observability.md``) is *near-zero
overhead when disabled* and *cheap when enabled*: a disabled process pays
one boolean check per guarded site, and an enabled one pays the span
guards, a histogram observation (with exemplar capture) and a counter
increment per request.  This bench quantifies both against the synthetic
FoodMart library and enforces the enabled-path budget: per-request latency
with **metrics, tracing and exemplars all on** must be within 10% of the
uninstrumented (disabled) path.

*Trace detail* (``obs.enable(trace_detail=True)``) is deliberately outside
the budget: its space-size span attributes cost three extra index queries
per request — an opt-in debugging depth, not the production default (see
``docs/profiling.md``).

Timings interleave the two configurations round-robin and take the best of
several repetitions, so background noise hits both sides equally.
"""

from __future__ import annotations

import time

from conftest import publish

from repro import obs
from repro.eval.report import format_table

REPEATS = 7
REQUESTS_PER_REPEAT = 60
OVERHEAD_BUDGET = 1.10  # enabled may cost at most 10% over disabled


def _run_once(recommender, activities) -> float:
    start = time.perf_counter()
    for activity in activities:
        recommender.recommend(activity, k=10, strategy="breadth")
    return time.perf_counter() - start


def _interleaved_timings(recommender, activities) -> tuple[float, float]:
    """Best disabled/enabled wall-clock over interleaved repetitions."""
    obs.disable()
    _run_once(recommender, activities)  # warm caches before timing either side
    disabled_times: list[float] = []
    enabled_times: list[float] = []
    for _ in range(REPEATS):
        obs.disable()
        disabled_times.append(_run_once(recommender, activities))
        obs.enable(metrics=True, tracing=True, exemplars=True)
        enabled_times.append(_run_once(recommender, activities))
    obs.disable()
    return min(disabled_times), min(enabled_times)


def test_obs_overhead(foodmart_harness, benchmark):
    recommender = foodmart_harness.recommender
    activities = [
        user.observed for user in foodmart_harness.split
    ][:REQUESTS_PER_REPEAT]

    best_disabled, best_enabled = benchmark.pedantic(
        _interleaved_timings, args=(recommender, activities),
        rounds=1, iterations=1,
    )
    ratio = best_enabled / best_disabled
    per_request_us = 1e6 / len(activities)
    rows = [
        ["disabled", best_disabled * per_request_us, 1.0],
        ["metrics+tracing+exemplars", best_enabled * per_request_us, ratio],
    ]
    publish(
        "obs_overhead",
        format_table(
            ["configuration", "us_per_request", "vs_disabled"],
            rows,
            title=(
                f"observability overhead: breadth over FoodMart, "
                f"best of {REPEATS}x{len(activities)} requests"
            ),
        ),
    )

    assert ratio <= OVERHEAD_BUDGET, (
        f"fully-enabled recommend is {ratio:.3f}x the disabled path "
        f"(budget {OVERHEAD_BUDGET}x)"
    )
    # Sanity: the enabled run actually recorded per-strategy samples.
    histogram = obs.get_registry().histogram(  # repro-lint: disable=RL003
        "repro_recommend_latency_seconds", strategy="breadth"
    )
    assert histogram.count >= REPEATS * len(activities)
    # ... and actually produced span trees for the traced requests.
    assert any(
        span["name"] == "recommend"
        for span in obs.get_tracer().spans()
    ), "tracing was enabled but no recommend spans were recorded"
