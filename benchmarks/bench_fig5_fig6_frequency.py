"""Paper Figures 5 and 6: frequency profiles of the retrieved actions.

Figure 5: how often each action appears across the recommendation lists of
one method (grocery dataset).  The paper: the majority of actions appear
with frequency below 0.2; Best Match and Breadth repeat actions more (22%
and 14% above 0.2) because they serve several goals at once.

Figure 6: the frequency *in the implementation set* of the actions each
method retrieves.  The paper: more than 92% of retrieved actions appear in
fewer than 20% of the implementations — the mechanisms do not just parrot
the ingredients common to every recipe.
"""

from __future__ import annotations

from conftest import publish

from repro.core import PAPER_STRATEGIES
from repro.eval import (
    format_table,
    frequency_histogram,
    library_frequencies,
    recommendation_frequencies,
)

BINS = (0.2, 0.4, 0.6, 0.8, 1.0)


def _histogram_rows(harness, frequency_fn):
    rows = []
    for strategy in PAPER_STRATEGIES:
        lists = harness.run_goal_method(strategy)
        histogram = frequency_histogram(frequency_fn(lists), BINS)
        rows.append([strategy] + [fraction for _, fraction in histogram])
    return rows


def test_fig5_recommendation_frequency(foodmart_harness, benchmark):
    rows = benchmark.pedantic(
        _histogram_rows,
        args=(foodmart_harness, recommendation_frequencies),
        rounds=1,
        iterations=1,
    )
    publish(
        "fig5_foodmart",
        format_table(
            ["method"] + [f"<= {edge}" for edge in BINS],
            rows,
            title="Figure 5 (foodmart): action frequency across recommendation lists",
        ),
    )
    for row in rows:
        # Majority of retrieved actions below 0.2 frequency.
        assert row[1] > 0.5


def test_fig6_library_frequency(foodmart_harness, benchmark):
    rows = benchmark.pedantic(
        _histogram_rows,
        args=(
            foodmart_harness,
            lambda lists: library_frequencies(foodmart_harness.model, lists),
        ),
        rounds=1,
        iterations=1,
    )
    publish(
        "fig6_foodmart",
        format_table(
            ["method"] + [f"<= {edge}" for edge in BINS],
            rows,
            title="Figure 6 (foodmart): library frequency of retrieved actions",
        ),
    )
    for row in rows:
        # Paper: >92% of retrieved actions are rare in the library; at our
        # smaller, denser scale we require a clear majority.
        assert row[1] > 0.6
