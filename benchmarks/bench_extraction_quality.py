"""Extraction-pipeline quality (extension).

The paper's 43Things dataset came from the authors' unpublished action
extraction module; ours is `repro.text`.  This bench measures it on
synthetic labelled stories (known gold action sets): micro P/R/F1 as the
distractor ratio grows, plus an impoverished-lexicon ablation showing what
the verb lexicon contributes.
"""

from __future__ import annotations

from conftest import publish

from repro.data.synthetic.stories import (
    evaluate_extractor,
    generate_labelled_stories,
)
from repro.eval import format_table
from repro.text.extraction import ActionExtractor


def _quality_rows():
    rows = []
    for distractors in (0, 2, 5, 10):
        stories = generate_labelled_stories(
            count=80, actions_per_story=3,
            distractors_per_story=distractors, seed=0,
        )
        quality = evaluate_extractor(stories)
        rows.append(
            [
                f"distractors={distractors}",
                quality.precision,
                quality.recall,
                quality.f1,
            ]
        )
    # Lexicon ablation: drop half the verbs and watch recall fall.
    stories = generate_labelled_stories(count=80, distractors_per_story=2, seed=0)
    full = evaluate_extractor(stories, extractor=ActionExtractor())
    restricted = ActionExtractor()
    restricted.verbs = frozenset(sorted(restricted.verbs)[: len(restricted.verbs) // 2])
    half = evaluate_extractor(stories, extractor=restricted)
    rows.append(["lexicon=full", full.precision, full.recall, full.f1])
    rows.append(["lexicon=half", half.precision, half.recall, half.f1])
    return rows


def test_extraction_quality(benchmark):
    rows = benchmark.pedantic(_quality_rows, rounds=1, iterations=1)
    publish(
        "extraction_quality",
        format_table(
            ["setting", "precision", "recall", "f1"],
            rows,
            title="Extraction quality on labelled synthetic stories",
        ),
    )
    values = {row[0]: row for row in rows}
    # Distractors must not poison precision on this corpus.
    assert values["distractors=10"][1] > 0.9
    # The lexicon matters: halving it must cost recall.
    assert values["lexicon=half"][2] < values["lexicon=full"][2]
