"""Beyond-accuracy comparison (extension; paper §1 cites this literature).

The paper argues goal-based recommendation differs from the
serendipity/novelty/diversity line of work by being *principled* — driven by
explicit targets.  This bench quantifies where the goal-based methods land
on those axes anyway, against the baselines, plus a paired-bootstrap
significance check on the headline Figure 4 (TPR) comparison.
"""

from __future__ import annotations

from conftest import publish

from repro.core import PAPER_STRATEGIES
from repro.eval import (
    average_intra_list_distance,
    catalog_coverage,
    format_table,
    gini_concentration,
    novelty,
    paired_bootstrap_test,
    true_positive_rate,
)


def _beyond_rows(harness, methods):
    activities = harness.observed_activities()
    similarity = harness.content_similarity()
    catalog = harness.model.num_actions
    rows = []
    for method in methods:
        if method in PAPER_STRATEGIES:
            lists = harness.run_goal_method(method)
        else:
            lists = harness.run_baseline(method)
        rows.append(
            [
                method,
                average_intra_list_distance(lists, similarity),
                novelty(lists, activities),
                catalog_coverage(lists, catalog),
                gini_concentration(lists),
            ]
        )
    return rows


def test_beyond_accuracy_foodmart(foodmart_harness, benchmark):
    methods = ("content", "cf_knn", "cf_mf", "popularity") + PAPER_STRATEGIES
    rows = benchmark.pedantic(
        _beyond_rows, args=(foodmart_harness, methods), rounds=1, iterations=1
    )
    publish(
        "beyond_foodmart",
        format_table(
            ["method", "diversity", "novelty", "coverage", "gini"],
            rows,
            title="Beyond-accuracy (foodmart): diversity / novelty / coverage",
        ),
    )
    values = {row[0]: row for row in rows}
    # Content's homogeneous lists must be the least diverse (Table 5 dual);
    # popularity must explore the catalogue least (it recommends the same
    # handful of items to everyone, so its *coverage* collapses).
    for strategy in PAPER_STRATEGIES:
        assert values[strategy][1] > values["content"][1]
    assert values["popularity"][3] == min(row[3] for row in rows)


def test_tpr_significance_fortythree(fortythree_harness, benchmark):
    """Figure 4's goal-based advantage must survive a paired bootstrap."""
    harness = fortythree_harness
    hidden = harness.hidden_sets()

    def per_user_tpr(lists):
        return [
            true_positive_rate(rec, user_hidden)
            for rec, user_hidden in zip(lists, hidden)
        ]

    def compare():
        breadth = per_user_tpr(harness.run_goal_method("breadth"))
        cf = per_user_tpr(harness.run_baseline("cf_knn"))
        return paired_bootstrap_test(breadth, cf, seed=0)

    result = benchmark.pedantic(compare, rounds=1, iterations=1)
    publish(
        "significance_tpr_fortythree",
        format_table(
            ["comparison", "mean_diff", "p_value", "significant@0.05"],
            [
                [
                    "breadth vs cf_knn (TPR)",
                    result.mean_difference,
                    result.p_value,
                    str(result.significant()),
                ]
            ],
            title="Paired bootstrap (43things): goal-based TPR advantage",
        ),
    )
    assert result.mean_difference > 0
    assert result.significant()
