"""Paper Figure 7: per-request execution time as the library grows.

The paper's findings: all four mechanisms scale to millions of
implementations; execution time is driven by connectivity more than raw
library size; Breadth is the most efficient mechanism; and within the Focus
pair the completeness variant costs more than the closeness variant (set
intersection vs asymmetric difference).  Expected shape here: latency grows
with library scale for every strategy, and Breadth's mean latency is below
Best Match's at the largest scale (Best Match does strictly more work — it
builds a vector per candidate on top of Breadth-like traversal).
"""

from __future__ import annotations

from conftest import publish

from repro.eval import format_table
from repro.eval.timing import DEFAULT_SCALES, run_scaling_study


def test_fig7_scaling(benchmark):
    rows = benchmark.pedantic(
        run_scaling_study, kwargs={"scales": DEFAULT_SCALES, "seed": 7},
        rounds=1, iterations=1,
    )
    table_rows = [
        [
            row.scale,
            row.num_implementations,
            row.connectivity,
            row.strategy,
            row.mean_seconds * 1e3,
        ]
        for row in rows
    ]
    publish(
        "fig7_scaling",
        format_table(
            ["scale", "impls", "connectivity", "strategy", "mean_ms"],
            table_rows,
            title="Figure 7: mean per-request latency vs library scale",
        ),
    )
    by_key = {(row.scale, row.strategy): row.mean_seconds for row in rows}
    largest = DEFAULT_SCALES[-1].label
    smallest = DEFAULT_SCALES[0].label
    for strategy in ("focus_cmp", "focus_cl", "breadth", "best_match"):
        assert by_key[(largest, strategy)] > by_key[(smallest, strategy)]
    # Best Match strictly extends Breadth's work with per-candidate vectors.
    assert by_key[(largest, "breadth")] < by_key[(largest, "best_match")]
