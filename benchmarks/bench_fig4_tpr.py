"""Paper Figure 4: average true positive rate at top-5 and top-10.

The TPR is the fraction of recommended actions the user has *actually
performed* (they sit in the hidden 70% of the activity) — not precision,
since the user never saw the list.  The paper's finding: on 43Things the
goal-based methods (Best Match, Focus_cmp, Breadth at top-5) retrieve many
such actions; on the grocery dataset all methods score low (at most ~3 carts
per user).  Expected shape here: on 43Things every goal-based method beats
every collaborative baseline at both cutoffs.
"""

from __future__ import annotations

from conftest import publish

from repro.core import PAPER_STRATEGIES
from repro.eval import average_true_positive_rate, format_table

CUTOFFS = (5, 10)


def _tpr_rows(harness, methods):
    hidden = harness.hidden_sets()
    rows = []
    for method in methods:
        if method in PAPER_STRATEGIES:
            lists = harness.run_goal_method(method)
        else:
            lists = harness.run_baseline(method)
        row = [method]
        for cutoff in CUTOFFS:
            row.append(
                average_true_positive_rate(
                    [rec.top(cutoff) for rec in lists], hidden
                )
            )
        rows.append(row)
    return rows


def test_fig4_fortythree(fortythree_harness, benchmark):
    methods = ("cf_knn", "cf_mf") + PAPER_STRATEGIES
    rows = benchmark.pedantic(
        _tpr_rows, args=(fortythree_harness, methods), rounds=1, iterations=1
    )
    publish(
        "fig4_fortythree",
        format_table(
            ["method", "avg_tpr_top5", "avg_tpr_top10"],
            rows,
            title="Figure 4 (43things): average true positive rate",
        ),
    )
    values = {row[0]: row[1:] for row in rows}
    for strategy in PAPER_STRATEGIES:
        for baseline in ("cf_knn", "cf_mf"):
            assert values[strategy][0] > values[baseline][0]
            assert values[strategy][1] > values[baseline][1]


def test_fig4_foodmart(foodmart_harness, benchmark):
    methods = ("content", "cf_knn", "cf_mf") + PAPER_STRATEGIES
    rows = benchmark.pedantic(
        _tpr_rows, args=(foodmart_harness, methods), rounds=1, iterations=1
    )
    publish(
        "fig4_foodmart",
        format_table(
            ["method", "avg_tpr_top5", "avg_tpr_top10"],
            rows,
            title="Figure 4 (foodmart): average true positive rate",
        ),
    )
    # The paper: "all the methods show low percentages in the foodmarket
    # dataset" — sanity-check that nothing is implausibly high.
    for row in rows:
        assert row[1] < 0.8 and row[2] < 0.8
