"""Serving throughput: ``POST /recommend/batch`` vs a single-request loop.

The acceptance bar for the serving layer is a >= 5x throughput gain for the
batch endpoint over looping ``POST /recommend`` on a >= 5000-activity
workload, with bit-identical rankings.  The loop is measured against a
service with result caching *disabled* (``cache_size=0``), so it prices the
honest per-request reference path rather than LRU hits; the loop leg is
timed on a subsample and reported as throughput, the batch leg scores the
full workload in chunks.
"""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from conftest import publish

from repro.eval import format_table
from repro.service import RecommenderService

WORKLOAD = 5000   # activities scored through the batch endpoint
LOOP_SAMPLE = 300  # single requests timed for the loop throughput estimate
BATCH_CHUNK = 1000  # activities per /recommend/batch request
TOP_K = 10


def _post(port: int, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


@pytest.fixture(scope="module")
def serving(request):
    harness = request.getfixturevalue("foodmart_harness")
    base = [sorted(user.observed) for user in harness.split]
    activities = [base[i % len(base)] for i in range(WORKLOAD)]
    service = RecommenderService(
        harness.model, port=0, enable_metrics=False,
        cache_size=0, space_cache_size=0,
    ).start()
    yield service, activities
    service.stop()


def test_batch_endpoint_beats_single_request_loop(serving):
    service, activities = serving

    # Loop leg: one HTTP round trip per activity, reference ranking path.
    sample = activities[:LOOP_SAMPLE]
    start = time.perf_counter()
    loop_results = [
        _post(service.port, "/recommend", {"activity": a, "k": TOP_K})
        for a in sample
    ]
    loop_seconds = time.perf_counter() - start
    loop_throughput = len(sample) / loop_seconds

    # Batch leg: the full workload in a few bulk requests.
    start = time.perf_counter()
    batch_rows: list[list[dict]] = []
    for begin in range(0, len(activities), BATCH_CHUNK):
        body = _post(
            service.port, "/recommend/batch",
            {
                "activities": activities[begin:begin + BATCH_CHUNK],
                "k": TOP_K,
                "strategy": "breadth",
            },
        )
        batch_rows.extend(body["results"])
    batch_seconds = time.perf_counter() - start
    batch_throughput = len(activities) / batch_seconds

    # Bit-identical rankings on the overlapping slice.
    assert len(batch_rows) == len(activities)
    for single, bulk in zip(loop_results, batch_rows):
        assert single["recommendations"] == bulk

    speedup = batch_throughput / loop_throughput
    table = format_table(
        ["path", "activities", "seconds", "activities_per_s", "speedup"],
        [
            ["loop /recommend", len(sample), loop_seconds, loop_throughput, 1.0],
            [
                "batch /recommend/batch", len(activities), batch_seconds,
                batch_throughput, speedup,
            ],
        ],
        title=(
            f"serving throughput, breadth top-{TOP_K} "
            f"({len(activities)} activities, cache disabled)"
        ),
    )
    publish("batch_serving_throughput", table)
    assert speedup >= 5.0, f"batch speedup {speedup:.1f}x below the 5x bar"
