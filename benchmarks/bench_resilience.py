"""Resilience-layer cost: admission overhead and the shed fast path.

Two legs, both about the tail-at-scale contract of the admission
controller (docs/resilience.md):

- the per-request bookkeeping (``try_acquire`` + ``release``) must be
  negligible next to a recommendation — it sits in front of *every* work
  request;
- a shed request must be answered **fast**: the entire point of load
  shedding is that a saturated server produces a cheap 429 instead of an
  expensive timeout, so the rejection path is measured end-to-end over
  HTTP against a server whose single slot is pinned by a latency fault.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from conftest import publish

from repro.core import AssociationGoalModel
from repro.eval import format_table
from repro.resilience import AdmissionController, FaultInjector, FaultRule
from repro.resilience.faults import clear_faults, install_faults
from repro.service import RecommenderService

CONTROLLER_OPS = 50_000
SHED_REQUESTS = 200

PAIRS = [
    ("olivier salad", {"potatoes", "carrots", "pickles"}),
    ("mashed potatoes", {"potatoes", "nutmeg", "butter"}),
    ("pan-fried carrots", {"carrots", "nutmeg", "oil"}),
]


def test_admission_bookkeeping_is_cheap():
    controller = AdmissionController(max_inflight=64, max_queue=128)
    start = time.perf_counter()
    for _ in range(CONTROLLER_OPS):
        admitted, _ = controller.try_acquire()
        assert admitted
        controller.release()
    seconds = time.perf_counter() - start
    ops_per_second = CONTROLLER_OPS / seconds
    per_op_us = seconds / CONTROLLER_OPS * 1e6

    table = format_table(
        ["operation", "count", "seconds", "ops_per_s", "us_per_op"],
        [[
            "try_acquire+release", CONTROLLER_OPS, seconds,
            ops_per_second, per_op_us,
        ]],
        title="admission controller bookkeeping (uncontended)",
    )
    publish("resilience_admission_overhead", table)
    # A recommendation costs hundreds of microseconds at minimum; the
    # gate keeper must stay well over an order of magnitude cheaper.
    assert per_op_us < 100.0, f"admission op cost {per_op_us:.1f}us"


def test_shed_fast_path_under_saturation():
    model = AssociationGoalModel.from_pairs(PAIRS)
    service = RecommenderService(
        model, port=0, enable_metrics=False,
        max_inflight=1, max_queue=0,
    ).start()
    install_faults(
        FaultInjector([FaultRule("model", "latency", delay_ms=10_000.0)])
    )
    payload = json.dumps({"activity": ["potatoes"], "k": 5}).encode()

    def occupy():
        request = urllib.request.Request(
            f"http://127.0.0.1:{service.port}/recommend",
            data=payload, headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request, timeout=60).read()
        except (urllib.error.URLError, OSError):
            pass  # the drain below may cut this request short; expected

    occupant = threading.Thread(target=occupy, daemon=True)
    occupant.start()
    deadline = time.monotonic() + 10.0
    while service.admission.active() == 0:
        assert time.monotonic() < deadline, "occupant never admitted"
        time.sleep(0.01)

    try:
        latencies = []
        start = time.perf_counter()
        for _ in range(SHED_REQUESTS):
            request = urllib.request.Request(
                f"http://127.0.0.1:{service.port}/recommend",
                data=payload, headers={"Content-Type": "application/json"},
            )
            before = time.perf_counter()
            try:
                urllib.request.urlopen(request, timeout=10).read()
                status = 200
            except urllib.error.HTTPError as error:
                status = error.code
                error.read()
            latencies.append(time.perf_counter() - before)
            assert status == 429, f"expected shed 429, got {status}"
        seconds = time.perf_counter() - start
    finally:
        clear_faults()
        service._server.block_on_close = False
        service.stop()

    latencies.sort()
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[int(len(latencies) * 0.99)]
    table = format_table(
        ["leg", "requests", "seconds", "sheds_per_s", "p50_ms", "p99_ms"],
        [[
            "429 fast path", SHED_REQUESTS, seconds,
            SHED_REQUESTS / seconds, p50 * 1e3, p99 * 1e3,
        ]],
        title="load shedding under saturation (max_inflight=1, max_queue=0)",
    )
    publish("resilience_shed_fast_path", table)
    # A shed must be answered in milliseconds — far below the 10 s the
    # pinned slot would make a queued request wait.
    assert p50 < 0.05, f"shed p50 {p50 * 1e3:.1f}ms is not a fast path"
