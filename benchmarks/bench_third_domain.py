"""Third domain (extension): the introduction's online-learning scenario.

The paper motivates goal-based recommendation with course/specialization
platforms but evaluates on groceries and life goals.  This bench closes the
loop: the headline shapes (goal-based TPR and completeness advantages over
CF) must also hold on a specialization/track/course world — evidence the
mechanisms are domain-independent, not tuned to two datasets.
"""

from __future__ import annotations

from conftest import publish

from repro.core import PAPER_STRATEGIES
from repro.data import LearningConfig, generate_learning
from repro.eval import (
    ExperimentHarness,
    average_true_positive_rate,
    format_table,
    goal_completeness_after,
    usefulness_summary,
)

CONFIG = LearningConfig(
    num_courses=300,
    num_subjects=12,
    num_specializations=60,
    num_students=500,
)


def _rows(harness):
    hidden = harness.hidden_sets()
    rows = []
    for method in ("content", "cf_knn", "cf_mf") + PAPER_STRATEGIES:
        if method in PAPER_STRATEGIES:
            lists = harness.run_goal_method(method)
        else:
            lists = harness.run_baseline(method)
        completeness = usefulness_summary(
            [
                goal_completeness_after(
                    harness.model, user.observed, rec, goals=user.user.goals
                )
                for user, rec in zip(harness.split, lists)
            ]
        )
        rows.append(
            [
                method,
                average_true_positive_rate(lists, hidden),
                completeness.avg_avg,
            ]
        )
    return rows


def test_learning_domain(benchmark):
    dataset = generate_learning(CONFIG, seed=2)
    harness = ExperimentHarness(dataset, k=10, max_users=150, seed=0)
    rows = benchmark.pedantic(_rows, args=(harness,), rounds=1, iterations=1)
    publish(
        "third_domain_learning",
        format_table(
            ["method", "avg_tpr_top10", "goal_completeness"],
            rows,
            title="Third domain (online learning): headline shapes",
        ),
    )
    values = {row[0]: row for row in rows}
    best_goal_tpr = max(values[s][1] for s in PAPER_STRATEGIES)
    best_goal_completeness = max(values[s][2] for s in PAPER_STRATEGIES)
    for baseline in ("content", "cf_knn", "cf_mf"):
        assert best_goal_tpr > values[baseline][1]
        assert best_goal_completeness > values[baseline][2]
