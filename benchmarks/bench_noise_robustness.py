"""Noise robustness (extension): how gracefully do strategies degrade?

Real goal libraries are noisy (crawled recipes miss ingredients, extracted
stories hallucinate actions).  This bench perturbs the 43Things library at
increasing drop rates — each implementation loses that fraction of its
actions — and re-measures the hidden-action TPR against the *clean* ground
truth.  Expected shape: monotone-ish degradation with no cliff, and the
goal-based advantage over CF surviving heavy noise (CF is unaffected by
library noise — it never reads the library — so it is the fixed yardstick).
"""

from __future__ import annotations

from conftest import FORTYTHREE_CONFIG, publish

from repro.core import AssociationGoalModel, GoalRecommender
from repro.data import generate_fortythree
from repro.data.perturb import perturb_library
from repro.eval import (
    ExperimentHarness,
    average_true_positive_rate,
    format_table,
)

DROP_RATES = (0.0, 0.1, 0.25, 0.5)


def _robustness_rows():
    dataset = generate_fortythree(FORTYTHREE_CONFIG, seed=1)
    harness = ExperimentHarness(dataset, k=10, max_users=150, seed=0)
    hidden = harness.hidden_sets()
    cf_tpr = average_true_positive_rate(harness.run_baseline("cf_knn"), hidden)
    rows = []
    for drop in DROP_RATES:
        noisy = (
            dataset.library
            if drop == 0.0
            else perturb_library(dataset.library, drop_prob=drop, seed=3)
        )
        recommender = GoalRecommender(AssociationGoalModel.from_library(noisy))
        lists = [
            recommender.recommend(user.observed, k=harness.k, strategy="breadth")
            for user in harness.split
        ]
        rows.append(
            [f"drop={drop:g}", average_true_positive_rate(lists, hidden), cf_tpr]
        )
    return rows


def test_noise_robustness(benchmark):
    rows = benchmark.pedantic(_robustness_rows, rounds=1, iterations=1)
    publish(
        "noise_robustness",
        format_table(
            ["library_noise", "breadth_tpr", "cf_knn_tpr (noise-free)"],
            rows,
            title="Noise robustness (43things): Breadth TPR vs library drop rate",
        ),
    )
    values = [row[1] for row in rows]
    # No catastrophic cliff: half the actions dropped still leaves most of
    # the clean-library TPR...
    assert values[-1] > 0.4 * values[0]
    # ...and the goal-based advantage over CF survives every noise level.
    for row in rows:
        assert row[1] > row[2]
