"""Sampled Breadth: accuracy/latency trade-off (extension).

Section 6.2's exact mechanisms pay for the whole implementation space; the
sampled variant caps the per-request work.  This bench sweeps the sample
budget on the grocery harness and reports top-10 agreement with exact
Breadth, hidden-action TPR, and mean latency — the curve an operator would
use to pick a budget.
"""

from __future__ import annotations

import time

from conftest import publish

from repro.core.approximate import SampledBreadthStrategy
from repro.eval import (
    average_list_overlap,
    average_true_positive_rate,
    format_table,
)

BUDGETS = (25, 100, 400, 10_000_000)  # the last one is effectively exact


def _tradeoff_rows(harness):
    exact_lists = harness.run_goal_method("breadth")
    hidden = harness.hidden_sets()
    rows = []
    for budget in BUDGETS:
        strategy = SampledBreadthStrategy(max_implementations=budget, seed=0)
        start = time.perf_counter()
        lists = [
            strategy.recommend(
                harness.model,
                harness.model.encode_activity(user.observed),
                k=harness.k,
            )
            for user in harness.split
        ]
        elapsed = time.perf_counter() - start
        rows.append(
            [
                "exact" if budget >= 10_000_000 else f"budget={budget}",
                average_list_overlap(lists, exact_lists),
                average_true_positive_rate(lists, hidden),
                elapsed / len(lists) * 1e3,
            ]
        )
    return rows


def test_sampled_breadth_tradeoff(foodmart_harness, benchmark):
    rows = benchmark.pedantic(
        _tradeoff_rows, args=(foodmart_harness,), rounds=1, iterations=1
    )
    publish(
        "approximate_breadth",
        format_table(
            ["setting", "overlap_vs_exact", "avg_tpr", "mean_ms"],
            rows,
            title="Sampled Breadth (foodmart): accuracy vs latency",
        ),
    )
    values = {row[0]: row for row in rows}
    assert values["exact"][1] == 1.0
    # Agreement must grow with the budget.
    assert values["budget=400"][1] >= values["budget=25"][1]
    # The smallest budget must actually be cheaper than exact.
    assert values["budget=25"][3] < values["exact"][3]
