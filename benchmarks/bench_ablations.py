"""Ablations over the design choices DESIGN.md calls out.

1. **Breadth score variant** — ``intersection`` (our canonical reading of
   Algorithm 2) vs ``union`` (Equation 6 as printed) vs ``count`` (the bare
   utility of Equation 5).  Measured by top-10 overlap against the canonical
   variant and by hidden-action TPR: the union variant degenerates toward
   "longest implementations win".
2. **Best Match distance** — cosine vs euclidean vs manhattan (Equation 10
   leaves the metric open).
3. **Best Match vectors** — count (Equation 8) vs boolean (Equation 7); the
   paper argues counts matter because one action can serve a goal through
   several implementations.
"""

from __future__ import annotations

from conftest import publish

from repro.eval import (
    average_list_overlap,
    average_true_positive_rate,
    format_table,
)


def _variant_lists(harness, strategy, **options):
    return [
        harness.recommender.recommend(
            user.observed, k=harness.k, strategy=strategy, **options
        )
        for user in harness.split
    ]


def _ablation_rows(harness, strategy, option_name, values, canonical):
    hidden = harness.hidden_sets()
    baseline_lists = _variant_lists(
        harness, strategy, **{option_name: canonical}
    )
    rows = []
    for value in values:
        lists = _variant_lists(harness, strategy, **{option_name: value})
        rows.append(
            [
                f"{option_name}={value}",
                average_list_overlap(lists, baseline_lists),
                average_true_positive_rate(lists, hidden),
            ]
        )
    return rows


def test_ablation_breadth_variants(fortythree_harness, benchmark):
    rows = benchmark.pedantic(
        _ablation_rows,
        args=(
            fortythree_harness,
            "breadth",
            "variant",
            ("intersection", "union", "count"),
            "intersection",
        ),
        rounds=1,
        iterations=1,
    )
    publish(
        "ablation_breadth",
        format_table(
            ["variant", "overlap_vs_canonical", "avg_tpr_top10"],
            rows,
            title="Ablation (43things): Breadth score variants",
        ),
    )
    values = {row[0]: row for row in rows}
    assert values["variant=intersection"][1] == 1.0
    # The canonical reading should recover hidden actions at least as well
    # as the union reading (Equation 6 as printed).
    assert (
        values["variant=intersection"][2] >= values["variant=union"][2]
    )


def test_ablation_best_match_distances(fortythree_harness, benchmark):
    rows = benchmark.pedantic(
        _ablation_rows,
        args=(
            fortythree_harness,
            "best_match",
            "distance",
            ("cosine", "euclidean", "manhattan"),
            "cosine",
        ),
        rounds=1,
        iterations=1,
    )
    publish(
        "ablation_best_match_distance",
        format_table(
            ["distance", "overlap_vs_cosine", "avg_tpr_top10"],
            rows,
            title="Ablation (43things): Best Match distance metrics",
        ),
    )
    assert rows[0][1] == 1.0  # cosine vs itself


def test_ablation_best_match_vectors(fortythree_harness, benchmark):
    rows = benchmark.pedantic(
        _ablation_rows,
        args=(
            fortythree_harness,
            "best_match",
            "vector_mode",
            ("count", "boolean"),
            "count",
        ),
        rounds=1,
        iterations=1,
    )
    publish(
        "ablation_best_match_vectors",
        format_table(
            ["vector_mode", "overlap_vs_count", "avg_tpr_top10"],
            rows,
            title="Ablation (43things): Best Match vector modes (Eq. 7 vs 8)",
        ),
    )
    assert rows[0][1] == 1.0


def test_ablation_hybrid_alpha(foodmart_harness, benchmark):
    """Hybrid goal+content (the paper's future work): sweep the blend.

    alpha=0 is pure Breadth; alpha=1 ranks the goal-grounded candidate set
    purely by content similarity.  Reported: overlap with pure Breadth, the
    average recipe completeness (the goal signal) and the internal content
    similarity of the lists (the content signal) — the blend should trade
    one for the other monotonically at the extremes.
    """
    from repro.eval import average_pairwise_similarity, goal_completeness_after, usefulness_summary

    harness = foodmart_harness
    features = harness.dataset.item_features
    similarity = harness.content_similarity()

    def sweep():
        rows = []
        pure = None
        for alpha in (0.0, 0.25, 0.5, 0.75, 1.0):
            lists = [
                harness.recommender.recommend(
                    user.observed, k=harness.k, strategy="hybrid",
                    item_features=features, alpha=alpha,
                )
                for user in harness.split
            ]
            if pure is None:
                pure = lists
            completeness = usefulness_summary(
                [
                    goal_completeness_after(harness.model, user.observed, rec)
                    for user, rec in zip(harness.split, lists)
                ]
            )
            content = average_pairwise_similarity(lists, similarity)
            rows.append(
                [
                    f"alpha={alpha:g}",
                    average_list_overlap(lists, pure),
                    completeness.avg_avg,
                    content.average,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish(
        "ablation_hybrid_alpha",
        format_table(
            ["blend", "overlap_vs_breadth", "goal_completeness", "content_sim"],
            rows,
            title="Ablation (foodmart): hybrid goal+content blend sweep",
        ),
    )
    values = {row[0]: row for row in rows}
    assert values["alpha=0"][1] == 1.0
    # Full content weight must produce the most content-coherent lists.
    assert values["alpha=1"][3] >= values["alpha=0"][3]
