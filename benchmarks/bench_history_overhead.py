"""Metrics-history overhead: background capture within 2% of no history.

The history layer (``docs/monitoring.md``) runs off the request path by
construction: a daemon thread snapshots the registry every interval, and
``capture()`` reads the registry snapshot *before* taking the history
mutex, so the only request-visible cost is brief registry-lock contention
while a snapshot copies the family maps.  That makes its budget much
tighter than the quality layer's: with metrics, tracing and exemplars on,
serving with a :class:`~repro.obs.MetricsHistory` capturing on a
deliberately aggressive interval (50x the production default rate) must
cost at most 2% over the same path without a history.

Timings interleave the two configurations round-robin and compare each
round's back-to-back pair, taking the cleanest pair — the same protocol
as ``bench_quality_telemetry.py``: load drift slows both arms of a pair
together, so the paired ratio isolates the history's cost where a
min-over-all-rounds comparison would gate on which round caught a quiet
machine.  The history is started *before* and stopped *after* each
monitored timing, so thread start-up and the immediate baseline capture
stay outside the timed region — the budget is the steady-state
contention cost, not thread lifecycle.
"""

from __future__ import annotations

import gc
import time

from conftest import publish

from repro import obs
from repro.eval.report import format_table

REPEATS = 7
REQUESTS_PER_REPEAT = 60
OVERHEAD_BUDGET = 1.02  # background capture may cost at most 2% extra
#: 50x the production default cadence: the timed region of one round is
#: far shorter than the 5s default, so a bench-scale interval is needed
#: for captures to land *inside* the monitored rounds at all.
HISTORY_INTERVAL = 0.01
HISTORY_WINDOW = 60.0


def _run_requests(recommender, activities) -> float:
    start = time.perf_counter()
    for activity in activities:
        recommender.recommend(activity, k=10, strategy="breadth")
    return time.perf_counter() - start


def test_history_overhead(foodmart_harness, benchmark):
    recommender = foodmart_harness.recommender
    activities = [
        user.observed for user in foodmart_harness.split
    ][:REQUESTS_PER_REPEAT]

    history = obs.MetricsHistory(HISTORY_INTERVAL, HISTORY_WINDOW)
    captures_seen = 0

    def interleaved() -> tuple[float, float]:
        nonlocal captures_seen
        obs.enable(metrics=True, tracing=True, exemplars=True)
        _run_requests(recommender, activities)  # warm caches before timing
        plain: list[float] = []
        monitored: list[float] = []
        # Collect between rounds, never during them: a GC pause landing
        # inside one timed region would gate on suite composition rather
        # than capture cost.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(REPEATS):
                gc.collect()
                plain.append(_run_requests(recommender, activities))
                # Thread start-up and the immediate baseline capture stay
                # outside the timed region; the budget is steady-state
                # registry-lock contention.
                history.start()
                try:
                    monitored.append(_run_requests(recommender, activities))
                finally:
                    history.stop()
        finally:
            if gc_was_enabled:
                gc.enable()
        captures_seen = int(history.index()["captures"])
        obs.disable()
        # Judge each round by its own back-to-back pair: under drifting
        # load the fastest plain round and the fastest monitored round
        # can land in different load regimes, which measures the machine,
        # not the history thread.
        best_pair = min(zip(plain, monitored), key=lambda pair: pair[1] / pair[0])
        return best_pair

    try:
        best_plain, best_monitored = benchmark.pedantic(
            interleaved, rounds=1, iterations=1
        )
    finally:
        history.stop()
        obs.disable()

    ratio = best_monitored / best_plain
    per_request_us = 1e6 / len(activities)
    rows = [
        ["metrics+tracing+exemplars", best_plain * per_request_us, 1.0],
        ["+metrics-history capture", best_monitored * per_request_us, ratio],
    ]
    publish(
        "history_overhead",
        format_table(
            ["configuration", "us_per_request", "vs_instrumented"],
            rows,
            title=(
                f"metrics-history overhead: breadth over FoodMart, best "
                f"pair of {REPEATS}x{len(activities)} requests, capture "
                f"interval {HISTORY_INTERVAL * 1000:g}ms"
            ),
        ),
    )

    assert ratio <= OVERHEAD_BUDGET, (
        f"serving with history capture is {ratio:.3f}x the instrumented "
        f"path (budget {OVERHEAD_BUDGET}x)"
    )
    # Sanity: the history actually captured — at least the baseline
    # capture of every monitored round, and it saw the request-path
    # metric families the rounds produced.
    assert captures_seen >= REPEATS
    index = history.index()
    families = index["families"]
    assert "repro_history_snapshots_total" in families
    assert int(index["memory_bytes_estimate"]) > 0
