"""Thin shim: ``python benchmarks/run.py`` == ``repro-bench``.

Kept next to the pytest-benchmark modules so the regression harness is
discoverable from the benchmarks directory; all logic lives in
:mod:`repro.bench.runner`.
"""

from __future__ import annotations

import sys

from repro.bench.runner import main

if __name__ == "__main__":
    sys.exit(main())
