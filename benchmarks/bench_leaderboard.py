"""The full method leaderboard (extension).

Every implemented method — the four goal-based strategies and the complete
baseline family including the related-work Markov model and BPR — on one
table with the headline metrics.  Expected shape: every goal-based method
outranks every history-based method on TPR/NDCG/MRR/completeness on the
sparse life-goal dataset.
"""

from __future__ import annotations

from conftest import publish

from repro.core import PAPER_STRATEGIES
from repro.eval import format_table
from repro.eval.leaderboard import LeaderboardRow, build_leaderboard

METHODS = PAPER_STRATEGIES + (
    "cf_knn", "item_knn", "cf_mf", "bpr", "markov", "assoc_rules", "popularity",
)


def test_leaderboard_fortythree(fortythree_harness, benchmark):
    rows = benchmark.pedantic(
        build_leaderboard,
        args=(fortythree_harness, METHODS),
        rounds=1,
        iterations=1,
    )
    publish(
        "leaderboard_fortythree",
        format_table(
            LeaderboardRow.headers(),
            [row.as_list() for row in rows],
            title="Leaderboard (43things): all methods, headline metrics",
        ),
    )
    by_method = {row.method: row for row in rows}
    baselines = [m for m in METHODS if m not in PAPER_STRATEGIES]
    for metric in ("avg_tpr", "ndcg", "mrr", "completeness"):
        best_goal = max(
            getattr(by_method[s], metric) for s in PAPER_STRATEGIES
        )
        best_baseline = max(
            getattr(by_method[b], metric) for b in baselines
        )
        assert best_goal > best_baseline, metric
