"""Paper-scale smoke run (opt-in: set REPRO_PAPER_SCALE=1).

Generates the 43Things scenario at the *published* counts (18 047
implementations, 3 747 goals, 8 071 users) and times one pass of every
strategy over a user sample — evidence that the index structures hold up at
the paper's actual scale, not just at benchmark scale.  The foodmart
paper-scale config (56.5K recipes of ~33 ingredients) takes minutes to
generate and is left to the `repro report` path.

Skipped by default so the regular benchmark run stays fast.
"""

from __future__ import annotations

import os

import pytest

from conftest import publish

from repro.core import AssociationGoalModel, GoalRecommender, PAPER_STRATEGIES
from repro.data import FortyThreeConfig, generate_fortythree
from repro.eval import format_table
from repro.utils.timing import Stopwatch

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_PAPER_SCALE") != "1",
    reason="paper-scale run is opt-in (REPRO_PAPER_SCALE=1)",
)


def test_paper_scale_fortythree(benchmark):
    def run():
        dataset = generate_fortythree(FortyThreeConfig.paper_scale(), seed=1)
        model = AssociationGoalModel.from_library(dataset.library)
        recommender = GoalRecommender(model)
        watch = Stopwatch()
        sample = [user.full_activity for user in dataset.users[:200]]
        for strategy in PAPER_STRATEGIES:
            for activity in sample:
                with watch.measure(strategy):
                    recommender.recommend(activity, k=10, strategy=strategy)
        stats = model.stats()
        rows = [
            [
                summary.name,
                stats.num_implementations,
                stats.connectivity,
                summary.mean * 1e3,
            ]
            for summary in watch.summaries()
        ]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "paper_scale_fortythree",
        format_table(
            ["strategy", "impls", "connectivity", "mean_ms"],
            rows,
            title="Paper-scale 43things: per-request latency",
        ),
    )
    # Per-request latency must stay interactive at the published scale.
    for row in rows:
        assert row[3] < 500.0
