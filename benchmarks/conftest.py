"""Shared benchmark fixtures: one harness per scenario, built once.

The benchmarks mirror the paper's Section 6 experiments at a laptop-friendly
scale (the generators accept ``paper_scale()`` configs for a full-size run).
Every bench prints its table to stdout and also writes it under
``benchmarks/results/`` so the regenerated rows survive pytest's capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import obs
from repro.data import (
    FoodMartConfig,
    FortyThreeConfig,
    generate_foodmart,
    generate_fortythree,
)
from repro.eval import ExperimentHarness

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def _obs_disabled():
    """Benchmarks measure the uninstrumented paths unless they opt in.

    Observability is off by default, but a benchmark that enables it (e.g.
    ``bench_obs_overhead``) must not leak the flag into the timings of the
    next module; reset around every bench.
    """
    obs.disable()
    yield
    obs.disable()

#: Benchmark-scale configurations: the same *shape* as the paper's datasets
#: (dense grocery vs sparse life goals), two orders of magnitude smaller.
FOODMART_CONFIG = FoodMartConfig(
    num_products=240,
    num_categories=24,
    num_recipes=1500,
    num_carts=400,
)
FORTYTHREE_CONFIG = FortyThreeConfig(
    num_goals=400,
    num_actions=1500,
    num_implementations=1900,
    num_families=40,
    num_users=800,
)
MAX_USERS = 150
TOP_K = 10


@pytest.fixture(scope="session")
def foodmart_harness() -> ExperimentHarness:
    dataset = generate_foodmart(FOODMART_CONFIG, seed=0)
    return ExperimentHarness(dataset, k=TOP_K, max_users=MAX_USERS, seed=0)


@pytest.fixture(scope="session")
def fortythree_harness() -> ExperimentHarness:
    dataset = generate_fortythree(FORTYTHREE_CONFIG, seed=1)
    return ExperimentHarness(dataset, k=TOP_K, max_users=MAX_USERS, seed=0)


def publish(name: str, table: str) -> None:
    """Print a result table and persist it under ``benchmarks/results``."""
    print(f"\n{table}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n", encoding="utf-8")
