"""Ensemble fusion and per-segment error analysis (extensions).

1. Rank-fusing the goal-based strategies should be competitive with the
   best individual member on both datasets without knowing the regime —
   the hedge Table 4's dataset-dependent winners motivate.
2. The error analysis slices the 43Things TPR by the user's goal count,
   exposing *which users* each method serves best.
"""

from __future__ import annotations

from conftest import publish

from repro.eval import average_true_positive_rate, format_table
from repro.eval.error_analysis import compare_methods_bucketed, goal_count
from repro.eval.repeated import tpr_metric

MEMBERS = ("focus_cmp", "breadth", "best_match")


def _ensemble_lists(harness):
    return [
        harness.recommender.recommend(
            user.observed, k=harness.k, strategy="ensemble", members=MEMBERS
        )
        for user in harness.split
    ]


def test_ensemble_competitive(foodmart_harness, fortythree_harness, benchmark):
    def run():
        rows = []
        for harness in (foodmart_harness, fortythree_harness):
            hidden = harness.hidden_sets()
            member_tprs = {
                name: average_true_positive_rate(
                    harness.run_goal_method(name), hidden
                )
                for name in MEMBERS
            }
            fused = average_true_positive_rate(_ensemble_lists(harness), hidden)
            rows.append(
                [harness.dataset.name]
                + [member_tprs[name] for name in MEMBERS]
                + [fused]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "ensemble_tpr",
        format_table(
            ["dataset"] + list(MEMBERS) + ["ensemble_rrf"],
            rows,
            title="Ensemble fusion: TPR vs individual members",
        ),
    )
    for row in rows:
        members_best = max(row[1:4])
        members_worst = min(row[1:4])
        fused = row[4]
        # The fusion must never fall below the worst member and should sit
        # near the best one (within 15% relative).
        assert fused >= members_worst
        assert fused >= 0.85 * members_best


def test_error_analysis_by_goal_count(fortythree_harness, benchmark):
    harness = fortythree_harness

    def run():
        method_lists = {
            "breadth": harness.run_goal_method("breadth"),
            "focus_cmp": harness.run_goal_method("focus_cmp"),
            "cf_knn": harness.run_baseline("cf_knn"),
        }
        return compare_methods_bucketed(
            list(harness.split),
            method_lists,
            tpr_metric,
            goal_count,
            bin_edges=(1, 2, 6),
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    publish(
        "error_analysis_goal_count",
        format_table(
            ["goals", "users", "breadth", "cf_knn", "focus_cmp"],
            rows,
            title="TPR by user goal count (43things)",
        ),
    )
    # Goal-based methods must beat CF within every segment, not just overall.
    for row in rows:
        assert max(row[2], row[4]) > row[3]
