"""Paper Table 4 / Figure 3: goal completeness after following the list.

The paper's finding: the goal-based mechanisms leave the user's goals far
more complete than the standard recommenders (grocery: Breadth/Best Match
highest; 43Things: Focus_cmp highest, goal-based ~0.9 vs CF <= 0.43).
Expected shape here: on both datasets the best goal-based AvgAvg clearly
exceeds the best baseline AvgAvg.  Goals considered: the full goal space of
the observed activity for the grocery dataset (no per-cart ground truth),
the user's true goals on 43Things — the paper's exact choices.
"""

from __future__ import annotations

from conftest import publish

from repro.core import PAPER_STRATEGIES
from repro.eval import format_table, goal_completeness_after, usefulness_summary


def _usefulness_rows(harness, methods, use_true_goals):
    rows = []
    for method in methods:
        if method in PAPER_STRATEGIES:
            lists = harness.run_goal_method(method)
        else:
            lists = harness.run_baseline(method)
        summaries = []
        for user, rec in zip(harness.split, lists):
            goals = user.user.goals if use_true_goals else None
            summaries.append(
                goal_completeness_after(harness.model, user.observed, rec, goals)
            )
        agg = usefulness_summary(summaries)
        rows.append([method, agg.avg_avg, agg.min_avg, agg.max_avg])
    return rows


def _best(rows, names):
    return max(row[1] for row in rows if row[0] in names)


def test_table4_foodmart(foodmart_harness, benchmark):
    methods = ("content", "cf_knn", "cf_mf") + PAPER_STRATEGIES
    rows = benchmark.pedantic(
        _usefulness_rows,
        args=(foodmart_harness, methods, False),
        rounds=1,
        iterations=1,
    )
    publish(
        "table4_foodmart",
        format_table(
            ["method", "AvgAvg", "MinAvg", "MaxAvg"],
            rows,
            title="Table 4 (foodmart): goal completeness after recommendations",
        ),
    )
    baselines = {"content", "cf_knn", "cf_mf"}
    assert _best(rows, set(PAPER_STRATEGIES)) > _best(rows, baselines)


def test_table4_fortythree(fortythree_harness, benchmark):
    methods = ("cf_knn", "cf_mf") + PAPER_STRATEGIES
    rows = benchmark.pedantic(
        _usefulness_rows,
        args=(fortythree_harness, methods, True),
        rounds=1,
        iterations=1,
    )
    publish(
        "table4_fortythree",
        format_table(
            ["method", "AvgAvg", "MinAvg", "MaxAvg"],
            rows,
            title="Table 4 (43things): completeness of the user's true goals",
        ),
    )
    assert _best(rows, set(PAPER_STRATEGIES)) > _best(rows, {"cf_knn", "cf_mf"})
