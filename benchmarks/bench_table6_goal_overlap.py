"""Paper Table 6: top-10 overlap among the goal-based methods themselves.

The paper's findings: Best Match and Breadth overlap heavily (98% grocery /
79% 43Things — on dense libraries Breadth effectively considers the whole
goal space, converging to Best Match); the Focus pair overlaps 35.6% / 78%;
Focus methods overlap Breadth/Best Match at 40-70%; and every overlap is
higher on 43Things than on the grocery dataset.  Expected shape here:
Breadth-BestMatch is the largest overlap on both datasets and every
goal-based pair overlaps far more than goal-based vs baselines (Table 2).
"""

from __future__ import annotations

from conftest import publish

from repro.core import PAPER_STRATEGIES
from repro.eval import average_list_overlap, format_table


def _pairwise_rows(harness):
    lists = harness.run_goal_methods()
    rows = []
    for a in PAPER_STRATEGIES:
        row = [a]
        for b in PAPER_STRATEGIES:
            row.append(
                1.0 if a == b else average_list_overlap(lists[a], lists[b])
            )
        rows.append(row)
    return rows


def _check_breadth_bestmatch_highest(rows):
    cells = {}
    for row in rows:
        for name, value in zip(PAPER_STRATEGIES, row[1:]):
            if row[0] != name:
                cells[(row[0], name)] = value
    top_pair = cells[("breadth", "best_match")]
    for (a, b), value in cells.items():
        if {a, b} != {"breadth", "best_match"}:
            assert top_pair >= value, (
                f"breadth/best_match ({top_pair:.3f}) should dominate "
                f"{a}/{b} ({value:.3f})"
            )


def test_table6_foodmart(foodmart_harness, benchmark):
    rows = benchmark.pedantic(
        _pairwise_rows, args=(foodmart_harness,), rounds=1, iterations=1
    )
    publish(
        "table6_foodmart",
        format_table(
            ["method"] + list(PAPER_STRATEGIES),
            rows,
            title="Table 6 (foodmart): overlap among goal-based methods",
        ),
    )
    _check_breadth_bestmatch_highest(rows)


def test_table6_fortythree(fortythree_harness, benchmark):
    rows = benchmark.pedantic(
        _pairwise_rows, args=(fortythree_harness,), rounds=1, iterations=1
    )
    publish(
        "table6_fortythree",
        format_table(
            ["method"] + list(PAPER_STRATEGIES),
            rows,
            title="Table 6 (43things): overlap among goal-based methods",
        ),
    )
