"""Multi-worker serving throughput: ``repro serve --workers N`` scaling.

The acceptance bar for the pre-fork pool: at least **1.7x** request
throughput with 2 workers and **3x** with 4 workers over the
single-process server, while every pooled response stays *byte-identical*
to the single-process reference and the p99 latency honors the default
serving SLO (250 ms).  The parity and SLO gates always run; the scaling
gates need real cores and skip on boxes with fewer CPUs than workers
(fork concurrency cannot beat the GIL plus one core).

Runs at benchmark scale by default; ``REPRO_PAPER_SCALE=1`` switches the
workload to the published FoodMart counts (1 560 products / 56 500
recipes, ~minutes to generate).
"""

from __future__ import annotations

import itertools
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request
import zlib
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from conftest import FOODMART_CONFIG, publish

from repro.data import FoodMartConfig, generate_foodmart
from repro.eval import format_table
from repro.storage import JsonLibraryStore

SRC = str(Path(__file__).resolve().parent.parent / "src")

PAPER_SCALE = os.environ.get("REPRO_PAPER_SCALE") == "1"
#: Unique recommend payloads per leg (no request ever hits the LRU).
WORKLOAD = 2000 if PAPER_SCALE else 600
CLIENT_THREADS = 8
TOP_K = 10
#: Matches the serving layer's default latency SLO (--slo-latency-ms).
P99_SLO_SECONDS = 0.250
#: Untimed requests per leg, spread across the workers before measuring.
WARMUP = 16
START_TIMEOUT = 600.0 if PAPER_SCALE else 60.0

SPEEDUP_BARS = {2: 1.7, 4: 3.0}


class _Server:
    """One ``repro serve --workers N`` subprocess and its parsed port."""

    def __init__(self, library: Path, workers: int) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--library", str(library), "--port", "0",
                "--workers", str(workers), "--history-window", "0",
                "--no-tracing",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        banner: list[str] = []
        reader = threading.Thread(
            target=lambda: banner.append(self.proc.stdout.readline()),
            daemon=True,
        )
        reader.start()
        reader.join(START_TIMEOUT)
        match = (
            re.search(r" on http://[\d.]+:(\d+)", banner[0])
            if banner else None
        )
        if match is None:
            self.proc.kill()
            raise AssertionError(f"server did not start: {banner!r}")
        self.url = f"http://127.0.0.1:{int(match.group(1))}"

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(60)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(10)
        if self.proc.stdout is not None:
            self.proc.stdout.close()


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """(library path, unique recommend payloads) for every leg."""
    config = (
        FoodMartConfig.paper_scale() if PAPER_SCALE else FOODMART_CONFIG
    )
    dataset = generate_foodmart(config, seed=0)
    path = tmp_path_factory.mktemp("multiworker_bench") / "lib.json"
    JsonLibraryStore(path).save(dataset.library)
    labels = sorted(
        {str(a) for impl in dataset.library for a in impl.actions}
    )
    payloads = [
        json.dumps({"activity": [a, b], "k": TOP_K}).encode()
        for a, b in itertools.islice(
            itertools.combinations(labels, 2), WORKLOAD + WARMUP
        )
    ]
    assert len(payloads) == WORKLOAD + WARMUP
    # The warm-up slice is disjoint from the timed slice so the timed
    # requests never hit a result cache on any leg (a warm-leg request
    # re-fired in the timed region would flip ``"cached"`` in the body
    # and break the byte-parity gate).
    return path, payloads[WARMUP:], payloads[:WARMUP]


def _fire(url: str, payload: bytes) -> tuple[bytes, float]:
    request = urllib.request.Request(
        url + "/recommend", data=payload,
        headers={"Content-Type": "application/json"},
    )
    start = time.perf_counter()
    with urllib.request.urlopen(request, timeout=120) as response:
        body = response.read()
    return body, time.perf_counter() - start


def _run_leg(
    library: Path, workers: int, payloads: list[bytes], warm: list[bytes]
) -> tuple[float, float, list[int]]:
    """(requests/s, p99 seconds, per-request CRC32s in payload order)."""
    server = _Server(library, workers)
    try:
        # Warm every worker's first-request path outside the timed region
        # with payloads disjoint from the timed set.
        for payload in warm:
            _fire(server.url, payload)
        with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
            start = time.perf_counter()
            results = list(
                pool.map(lambda p: _fire(server.url, p), payloads)
            )
            wall = time.perf_counter() - start
    finally:
        server.stop()
    latencies = sorted(latency for _body, latency in results)
    p99 = latencies[int(len(latencies) * 0.99) - 1]
    crcs = [zlib.crc32(body) for body, _latency in results]
    return len(payloads) / wall, p99, crcs


def test_worker_pool_scales_with_bit_identical_responses(workload):
    library, payloads, warm = workload
    cores = os.cpu_count() or 1

    legs = [1, 2, 4]
    rows = []
    reference_crcs: list[int] | None = None
    base_rps = 0.0
    skipped_gates: list[str] = []
    for workers in legs:
        rps, p99, crcs = _run_leg(library, workers, payloads, warm)
        if workers == 1:
            base_rps = rps
            reference_crcs = crcs
            speedup = 1.0
        else:
            speedup = rps / base_rps
            # Parity gate, always on: every pooled response body is
            # byte-identical to the single process's, request by request.
            assert crcs == reference_crcs, (
                f"{workers}-worker responses diverge from single-process"
            )
        # SLO gate, always on: the pool must not trade latency for RPS.
        assert p99 <= P99_SLO_SECONDS, (
            f"{workers}-worker p99 {p99 * 1e3:.1f}ms over the "
            f"{P99_SLO_SECONDS * 1e3:.0f}ms SLO"
        )
        bar = SPEEDUP_BARS.get(workers)
        gated = bar is not None and cores >= workers
        if bar is not None and not gated:
            skipped_gates.append(
                f"{workers}-worker >= {bar}x (only {cores} cores)"
            )
        rows.append(
            [workers, rps, p99 * 1e3, speedup, bar if gated else "-"]
        )
        if gated:
            assert speedup >= bar, (
                f"{workers} workers: {speedup:.2f}x below the {bar}x bar"
            )

    scale = "paper_scale" if PAPER_SCALE else "bench_scale"
    table = format_table(
        ["workers", "requests_per_s", "p99_ms", "speedup", "gate"],
        rows,
        title=(
            f"multi-worker serving, {scale} "
            f"({len(payloads)} unique requests, {CLIENT_THREADS} client "
            f"threads, {cores} cores)"
        ),
    )
    if skipped_gates:
        table += "\nscaling gates skipped: " + "; ".join(skipped_gates)
    publish("multiworker_scaling", table)
