"""Paper Table 3: correlation of recommendations with popular actions.

The paper's finding: collaborative methods perpetuate collective behaviour
(CF-MF up to 0.87, CF-KNN 0.45-0.75, content 0.115), while every goal-based
method is *negatively* correlated with the top-20 popular actions.  Expected
shape here: every CF correlation strictly exceeds every goal-based one.
"""

from __future__ import annotations

from conftest import publish

from repro.core import PAPER_STRATEGIES
from repro.eval import format_table, popularity_correlation

TOP_N = 20


def _correlation_rows(harness, baselines):
    activities = harness.observed_activities()
    rows = []
    for name in baselines:
        lists = harness.run_baseline(name)
        rows.append([name, popularity_correlation(activities, lists, TOP_N)])
    for strategy in PAPER_STRATEGIES:
        lists = harness.run_goal_method(strategy)
        rows.append([strategy, popularity_correlation(activities, lists, TOP_N)])
    return rows


def _check_shape(rows, cf_names):
    values = dict((name, value) for name, value in rows)
    worst_cf = min(values[name] for name in cf_names)
    best_goal = max(values[name] for name in PAPER_STRATEGIES)
    assert worst_cf > best_goal, (
        f"CF should out-correlate goal-based methods: {values}"
    )


def test_table3_foodmart(foodmart_harness, benchmark):
    baselines = ("content", "cf_knn", "cf_mf")
    rows = benchmark.pedantic(
        _correlation_rows, args=(foodmart_harness, baselines), rounds=1, iterations=1
    )
    publish(
        "table3_foodmart",
        format_table(
            ["method", "pearson_top20"],
            rows,
            title="Table 3 (foodmart): correlation with popular actions",
        ),
    )
    _check_shape(rows, ("cf_knn", "cf_mf"))


def test_table3_fortythree(fortythree_harness, benchmark):
    baselines = ("cf_knn", "cf_mf")
    rows = benchmark.pedantic(
        _correlation_rows,
        args=(fortythree_harness, baselines),
        rounds=1,
        iterations=1,
    )
    publish(
        "table3_fortythree",
        format_table(
            ["method", "pearson_top20"],
            rows,
            title="Table 3 (43things): correlation with popular actions",
        ),
    )
    _check_shape(rows, ("cf_knn", "cf_mf"))
