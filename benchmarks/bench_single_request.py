"""Single-request hot path: CSR vs scalar, and the pruned approximate tier.

Two gates (both in the CI ``bench`` job, against constants committed here):

1. **Exact path**: at ``FortyThreeConfig.paper_scale()`` the CSR-routed
   ``GoalRecommender`` must answer single requests at least 5x faster than
   the scalar reference strategies for all four paper strategies, with
   bit-identical output (the CRC32 checksums of both paths must match each
   other *and* the committed ``PAPER_CHECKSUMS``).
2. **Approximate tier**: on a dense grocery workload at the paper's ~1.2K
   action connectivity (Section 6.2's regime, where posting lists are
   long), ``breadth_pruned`` at the default budget must reach recall@10 of
   at least 0.95 against the exact Breadth rankings while cutting the
   measured per-request latency below the exact CSR path's.

Timing legs use best-of-``REPEATS`` over a fixed activity sample; the
engine (and its lazily built co-occurrence index) is warmed outside every
timed region so the gates price steady-state serving, not construction.
"""

from __future__ import annotations

import gc
import time
import zlib

import pytest

from conftest import publish

from repro.core import AssociationGoalModel, GoalRecommender, recall_at_k
from repro.core.approximate import PrunedBreadthStrategy
from repro.core.recommender import PAPER_STRATEGIES
from repro.data import (
    FoodMartConfig,
    FortyThreeConfig,
    generate_foodmart,
    generate_fortythree,
)
from repro.eval import format_table

TOP_K = 10
SAMPLE = 60      # activities per timed leg
REPEATS = 5      # best-of repeats per leg
SPEEDUP_BAR = 5.0
RECALL_BAR = 0.95

#: Committed CRC32 baselines of the paper-scale rankings (seed 1, first
#: ``SAMPLE`` users, top-10).  Scalar and CSR paths must both reproduce
#: these exactly — the dataset generator is deterministic, so any drift
#: here means the ranking semantics changed.
PAPER_CHECKSUMS = {
    "focus_cmp": 4198772013,
    "focus_cl": 2064477266,
    "breadth": 1053447515,
    "best_match": 3043722569,
}

#: Dense grocery workload at the paper's connectivity (~1.2K): long recipes
#: over a small catalog make every posting list long, which is exactly the
#: regime the pruned tier exists for.  Generation stays under ~15s.
DENSE_CONFIG = FoodMartConfig(
    num_products=350,
    num_categories=48,
    num_recipes=12_700,
    num_carts=192,
    recipe_length_mean=33.0,
    recipe_length_min=5,
    recipe_length_max=60,
)
DENSE_SEED = 11


def _checksum(lists) -> int:
    digest = 0
    for result in lists:
        for item in result:
            line = f"{item.action}:{item.score:.9f};"
            digest = zlib.crc32(line.encode("utf-8"), digest)
    return digest


def _leg_minima(fn, items, best: list[float]) -> None:
    """One consecutive pass over ``items``, folding per-item minima."""
    perf_counter = time.perf_counter
    for index, item in enumerate(items):
        start = perf_counter()
        fn(item)
        elapsed = perf_counter() - start
        if elapsed < best[index]:
            best[index] = elapsed


def _paired_minima(
    slow_fn, fast_fn, items, repeats: int = REPEATS
) -> tuple[float, float]:
    """Per-item best times of two legs, alternating leg passes.

    Each leg's total is the sum over ``items`` of the minimum per-item
    wall time across ``repeats`` — the standard estimator of unloaded
    cost, so a scheduler transient (this box is a single-core VM)
    corrupts a few samples that the minima then discard, instead of
    silently inflating a whole timed leg.  The legs alternate *pass by
    pass* (not request by request: consecutive same-path requests keep
    the caches warm, like real serving traffic does), so slow drifts in
    machine conditions still land on both sides.  GC stays paused for
    the same reason ``timeit`` pauses it.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        best_slow = [float("inf")] * len(items)
        best_fast = [float("inf")] * len(items)
        for _ in range(repeats):
            _leg_minima(slow_fn, items, best_slow)
            _leg_minima(fast_fn, items, best_fast)
        return sum(best_slow), sum(best_fast)
    finally:
        if was_enabled:
            gc.enable()


@pytest.fixture(scope="module")
def paper_workload():
    """Paper-scale life-goal model plus a fixed activity sample."""
    dataset = generate_fortythree(FortyThreeConfig.paper_scale(), seed=1)
    model = AssociationGoalModel.from_library(dataset.library)
    activities = [user.full_activity for user in dataset.users[:SAMPLE]]
    return model, activities


@pytest.fixture(scope="module")
def dense_workload():
    """Dense grocery model (paper-connectivity regime) plus activities."""
    dataset = generate_foodmart(DENSE_CONFIG, seed=DENSE_SEED)
    model = AssociationGoalModel.from_library(dataset.library)
    activities = [user.full_activity for user in dataset.users[:SAMPLE]]
    return model, activities


def test_csr_hot_path_speedup_with_parity(paper_workload):
    model, activities = paper_workload
    scalar = GoalRecommender(model, use_csr=False)
    csr = GoalRecommender(model, use_csr=True)
    assert csr.csr_engine() is not None, "SciPy missing: nothing to gate"

    rows = []
    failures = []
    for strategy in PAPER_STRATEGIES:
        def run(recommender=scalar, name=strategy):
            return [
                recommender.recommend(a, k=TOP_K, strategy=name)
                for a in activities
            ]

        scalar_lists = run()
        csr_lists = run(csr)  # also warms the engine + co-occurrence index
        assert scalar_lists == csr_lists, (
            f"{strategy}: CSR output diverges from the scalar reference"
        )
        digest = _checksum(scalar_lists)
        assert digest == _checksum(csr_lists)
        assert digest == PAPER_CHECKSUMS[strategy], (
            f"{strategy}: rankings drifted from the committed baseline"
        )

        def scalar_one(activity, name=strategy):
            scalar.recommend(activity, k=TOP_K, strategy=name)

        def csr_one(activity, name=strategy):
            csr.recommend(activity, k=TOP_K, strategy=name)

        scalar_seconds, csr_seconds = _paired_minima(
            scalar_one, csr_one, activities
        )
        # A strategy landing under the bar earns bounded extra rounds: a
        # noise spike washes out of the running minima, a real regression
        # stays under the bar through all of them.
        for _ in range(2):
            if scalar_seconds / csr_seconds >= SPEEDUP_BAR:
                break
            more_scalar, more_csr = _paired_minima(
                scalar_one, csr_one, activities
            )
            scalar_seconds = min(scalar_seconds, more_scalar)
            csr_seconds = min(csr_seconds, more_csr)
        speedup = scalar_seconds / csr_seconds
        rows.append([
            strategy, digest, scalar_seconds * 1e3 / len(activities),
            csr_seconds * 1e3 / len(activities), speedup,
        ])
        if speedup < SPEEDUP_BAR:
            failures.append(f"{strategy}: {speedup:.1f}x")

    table = format_table(
        ["strategy", "crc32", "scalar_ms_per_req", "csr_ms_per_req",
         "speedup"],
        rows,
        title=(
            f"single-request hot path at paper scale "
            f"({len(activities)} activities, top-{TOP_K}, best of "
            f"{REPEATS})"
        ),
    )
    publish("single_request_speedup", table)
    assert not failures, (
        f"speedup below the {SPEEDUP_BAR:.0f}x bar: {', '.join(failures)}"
    )


def test_pruned_tier_recall_and_latency(dense_workload):
    model, activities = dense_workload
    csr = GoalRecommender(model, use_csr=True)
    engine = csr.csr_engine()
    assert engine is not None, "SciPy missing: nothing to gate"
    pruned = PrunedBreadthStrategy()  # serving default budget
    encoded = [model.encode_activity(a) for a in activities]

    # Warm the co-occurrence index outside the timed regions.
    engine.rank(encoded[0], TOP_K, "breadth")

    exact_lists = [engine.rank(e, TOP_K, "breadth") for e in encoded]
    approx_lists = [pruned.rank(csr.model, e, TOP_K) for e in encoded]
    scored = [
        (exact, approx)
        for exact, approx in zip(exact_lists, approx_lists)
        if exact
    ]
    assert scored, "dense workload produced no rankings"
    recall = sum(recall_at_k(e, a) for e, a in scored) / len(scored)

    exact_seconds, approx_seconds = _paired_minima(
        lambda e: engine.rank(e, TOP_K, "breadth"),
        lambda e: engine.pruned_breadth_rank(e, TOP_K, pruned.budget),
        encoded,
    )
    table = format_table(
        ["tier", "budget", "ms_per_req", "recall_at_10"],
        [
            ["exact", "-", exact_seconds * 1e3 / len(encoded), 1.0],
            [
                "approx", pruned.budget,
                approx_seconds * 1e3 / len(encoded), recall,
            ],
        ],
        title=(
            f"pruned breadth tier on the dense workload "
            f"({len(encoded)} activities, connectivity ~1.2K, best of "
            f"{REPEATS})"
        ),
    )
    publish("single_request_approx_tier", table)
    assert recall >= RECALL_BAR, (
        f"recall@10 {recall:.3f} below the {RECALL_BAR} bar"
    )
    assert approx_seconds < exact_seconds, (
        f"approx tier not faster: {approx_seconds:.4f}s vs "
        f"{exact_seconds:.4f}s exact"
    )
