"""Throughput: vectorized batch engine vs reference strategies (extension).

`BatchRecommender` is asserted bit-identical to the reference strategies in
the unit tests; this bench quantifies the speedup on the grocery scenario's
bulk workload using pytest-benchmark's proper multi-round timing.
"""

from __future__ import annotations

import pytest

from conftest import publish

from repro.core.vectorized import BatchRecommender
from repro.eval import format_table

BULK = 50  # carts per timed call


@pytest.fixture(scope="module")
def setup(request):
    foodmart = request.getfixturevalue("foodmart_harness")
    batch = BatchRecommender(foodmart.model)
    activities = [user.observed for user in foodmart.split][:BULK]
    return foodmart, batch, activities


@pytest.mark.parametrize("strategy", ["breadth", "best_match"])
def test_reference_bulk(setup, benchmark, strategy):
    harness, _, activities = setup
    benchmark(
        lambda: [
            harness.recommender.recommend(a, k=10, strategy=strategy)
            for a in activities
        ]
    )


@pytest.mark.parametrize("strategy", ["breadth", "best_match"])
def test_vectorized_bulk(setup, benchmark, strategy):
    _, batch, activities = setup
    benchmark(lambda: batch.recommend_many(list(activities), k=10, strategy=strategy))


def test_speedup_summary(setup, benchmark):
    """One-shot wall-clock comparison persisted alongside the other tables."""
    import time

    harness, batch, activities = setup

    def measure():
        rows = []
        for strategy in ("breadth", "best_match"):
            start = time.perf_counter()
            reference = [
                harness.recommender.recommend(a, k=10, strategy=strategy)
                for a in activities
            ]
            reference_s = time.perf_counter() - start
            start = time.perf_counter()
            vectorized = batch.recommend_many(
                list(activities), k=10, strategy=strategy
            )
            vectorized_s = time.perf_counter() - start
            assert all(
                r.actions() == v.actions()
                for r, v in zip(reference, vectorized)
            )
            rows.append(
                [
                    strategy,
                    reference_s * 1e3,
                    vectorized_s * 1e3,
                    reference_s / vectorized_s,
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    publish(
        "vectorized_throughput",
        format_table(
            ["strategy", "reference_ms", "vectorized_ms", "speedup"],
            rows,
            title=f"Vectorized engine: {BULK}-cart bulk scoring (foodmart)",
        ),
    )
