"""Standard ranking metrics per method (extension).

The paper's own metrics (TPR, completeness) translated into the standard
evaluation vocabulary — NDCG@10, MRR, MAP, precision/recall@10 against the
hidden 70% of each activity — so the goal-based advantage can be compared
with numbers from the wider recommender literature.
"""

from __future__ import annotations

from conftest import publish

from repro.core import PAPER_STRATEGIES
from repro.eval import format_table
from repro.eval.ranking_metrics import (
    average_over_users,
    average_precision,
    ndcg_at,
    precision_at,
    recall_at,
    reciprocal_rank,
)

METRICS = (
    ("ndcg@10", ndcg_at(10)),
    ("mrr", reciprocal_rank),
    ("map", average_precision),
    ("p@10", precision_at(10)),
    ("r@10", recall_at(10)),
)


def _metric_rows(harness, methods):
    hidden = harness.hidden_sets()
    rows = []
    for method in methods:
        if method in PAPER_STRATEGIES:
            lists = harness.run_goal_method(method)
        else:
            lists = harness.run_baseline(method)
        row: list[object] = [method]
        for _, metric in METRICS:
            row.append(average_over_users(metric, lists, hidden))
        rows.append(row)
    return rows


def test_ranking_metrics_fortythree(fortythree_harness, benchmark):
    methods = ("cf_knn", "cf_mf") + PAPER_STRATEGIES
    rows = benchmark.pedantic(
        _metric_rows, args=(fortythree_harness, methods), rounds=1, iterations=1
    )
    publish(
        "ranking_metrics_fortythree",
        format_table(
            ["method"] + [name for name, _ in METRICS],
            rows,
            title="Standard ranking metrics (43things), hidden 70% as relevance",
        ),
    )
    values = {row[0]: row for row in rows}
    # The Figure 4 advantage must persist under every standard metric.
    for column in range(1, len(METRICS) + 1):
        best_goal = max(values[s][column] for s in PAPER_STRATEGIES)
        for baseline in ("cf_knn", "cf_mf"):
            assert best_goal > values[baseline][column]
