"""Sensitivity sweeps (extension): list length and evidence share.

The paper fixes top-10 lists and a 30% observed activity.  These benches
show the headline findings are not artifacts of those constants: the
goal-based TPR advantage (Figure 4) and the completeness advantage
(Table 4) persist across ``k`` and across observed fractions.
"""

from __future__ import annotations

from conftest import FORTYTHREE_CONFIG, publish

from repro.data import generate_fortythree
from repro.eval import format_table
from repro.eval.sweeps import sweep_k, sweep_observed_fraction

METHODS = ("breadth", "focus_cmp", "cf_knn")


def test_sweep_k(fortythree_harness, benchmark):
    rows = benchmark.pedantic(
        sweep_k,
        args=(fortythree_harness,),
        kwargs={"k_values": (1, 3, 5, 10), "methods": METHODS},
        rounds=1,
        iterations=1,
    )
    publish(
        "sweep_k_fortythree",
        format_table(
            ["k", "method", "avg_tpr", "completeness"],
            [[int(r.value), r.method, r.avg_tpr, r.avg_completeness] for r in rows],
            title="Sweep (43things): sensitivity to list length k",
        ),
    )
    # The goal-based advantage must hold at every k.
    by_key = {(r.value, r.method): r.avg_tpr for r in rows}
    for k in (1.0, 3.0, 5.0, 10.0):
        assert by_key[(k, "breadth")] > by_key[(k, "cf_knn")]


def test_sweep_observed_fraction(benchmark):
    dataset = generate_fortythree(FORTYTHREE_CONFIG, seed=1)
    rows = benchmark.pedantic(
        sweep_observed_fraction,
        args=(dataset,),
        kwargs={
            "fractions": (0.1, 0.3, 0.5),
            "methods": METHODS,
            "max_users": 100,
        },
        rounds=1,
        iterations=1,
    )
    publish(
        "sweep_fraction_fortythree",
        format_table(
            ["observed", "method", "avg_tpr", "completeness"],
            [[r.value, r.method, r.avg_tpr, r.avg_completeness] for r in rows],
            title="Sweep (43things): sensitivity to the observed fraction",
        ),
    )
    by_key = {(r.value, r.method): r.avg_completeness for r in rows}
    for fraction in (0.1, 0.3, 0.5):
        assert by_key[(fraction, "focus_cmp")] > by_key[(fraction, "cf_knn")]
