"""Unit tests for the ALS-WR matrix-factorization baseline."""

import numpy as np
import pytest

from repro.baselines import CFMatrixFactorizationRecommender
from repro.exceptions import RecommendationError


@pytest.fixture
def block_corpus():
    """Two disjoint taste communities: dairy people and tool people."""
    dairy = [{"milk", "cheese", "yogurt"}, {"milk", "cheese"}, {"cheese", "yogurt"}]
    tools = [{"hammer", "nails", "saw"}, {"hammer", "nails"}, {"nails", "saw"}]
    return dairy + tools


class TestConfiguration:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CFMatrixFactorizationRecommender(num_factors=0)
        with pytest.raises(ValueError):
            CFMatrixFactorizationRecommender(num_iterations=0)
        with pytest.raises(ValueError):
            CFMatrixFactorizationRecommender(regularization=0)

    def test_recommend_before_fit_rejected(self):
        with pytest.raises(RecommendationError, match="before fit"):
            CFMatrixFactorizationRecommender().recommend({"a"})


class TestFactorization:
    def test_factor_shapes(self, block_corpus):
        model = CFMatrixFactorizationRecommender(
            num_factors=4, num_iterations=3
        ).fit(block_corpus)
        assert model.user_factors.shape == (6, 4)
        assert model.item_factors.shape == (6, 4)

    def test_reconstruction_separates_communities(self, block_corpus):
        model = CFMatrixFactorizationRecommender(
            num_factors=4, num_iterations=15, seed=0
        ).fit(block_corpus)
        milk = model.items.get("milk")
        hammer = model.items.get("hammer")
        dairy_user = model.user_factors[0]
        assert dairy_user @ model.item_factors[milk] > (
            dairy_user @ model.item_factors[hammer]
        )

    def test_deterministic_given_seed(self, block_corpus):
        a = CFMatrixFactorizationRecommender(seed=42).fit(block_corpus)
        b = CFMatrixFactorizationRecommender(seed=42).fit(block_corpus)
        np.testing.assert_allclose(a.item_factors, b.item_factors)

    def test_different_seeds_differ(self, block_corpus):
        a = CFMatrixFactorizationRecommender(seed=1).fit(block_corpus)
        b = CFMatrixFactorizationRecommender(seed=2).fit(block_corpus)
        assert not np.allclose(a.item_factors, b.item_factors)


class TestFoldIn:
    def test_fold_in_empty_activity_is_zero(self, block_corpus):
        model = CFMatrixFactorizationRecommender(num_factors=4).fit(block_corpus)
        np.testing.assert_allclose(model.fold_in(frozenset()), np.zeros(4))

    def test_fold_in_vector_shape(self, block_corpus):
        model = CFMatrixFactorizationRecommender(num_factors=4).fit(block_corpus)
        query = model.items.encode({"milk"})
        assert model.fold_in(query).shape == (4,)


class TestRecommend:
    def test_within_community_recommendation(self, block_corpus):
        model = CFMatrixFactorizationRecommender(
            num_factors=4, num_iterations=15, seed=0
        ).fit(block_corpus)
        result = model.recommend({"milk", "cheese"}, k=1)
        assert result.actions() == ["yogurt"]

    def test_query_items_excluded(self, block_corpus):
        model = CFMatrixFactorizationRecommender().fit(block_corpus)
        result = model.recommend({"milk"}, k=10)
        assert "milk" not in result.actions()

    def test_scores_descend(self, block_corpus):
        model = CFMatrixFactorizationRecommender().fit(block_corpus)
        result = model.recommend({"milk"}, k=10)
        scores = [item.score for item in result]
        assert scores == sorted(scores, reverse=True)
