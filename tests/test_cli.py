"""Unit tests for the command-line interface (driving main() directly)."""

import json

import pytest

from repro.cli import main
from repro.data import generate_fortythree, FortyThreeConfig, save_dataset
from repro.storage import JsonLibraryStore


@pytest.fixture
def library_path(tmp_path, recipe_library):
    path = tmp_path / "lib.json"
    JsonLibraryStore(path).save(recipe_library)
    return path


@pytest.fixture
def dataset_path(tmp_path):
    dataset = generate_fortythree(FortyThreeConfig.tiny(), seed=1)
    return save_dataset(dataset, tmp_path / "ds.json")


class TestGenerate:
    def test_generates_dataset_file(self, tmp_path, capsys):
        out = tmp_path / "fm.json"
        code = main(
            [
                "generate", "--scenario", "foodmart", "--scale", "tiny",
                "--seed", "3", "--out", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        payload = json.loads(out.read_text())
        assert payload["name"] == "foodmart"
        assert "wrote" in capsys.readouterr().out

    def test_43things_scenario(self, tmp_path, capsys):
        out = tmp_path / "ft.json"
        code = main(
            ["generate", "--scenario", "43things", "--out", str(out)]
        )
        assert code == 0
        assert json.loads(out.read_text())["name"] == "43things"


class TestInspect:
    def test_inspect_dataset(self, dataset_path, capsys):
        assert main(["inspect", str(dataset_path)]) == 0
        assert "43things" in capsys.readouterr().out

    def test_inspect_library(self, library_path, capsys):
        assert main(["inspect", str(library_path)]) == 0
        assert "connectivity" in capsys.readouterr().out


class TestRecommend:
    def test_recommend_prints_table(self, library_path, capsys):
        code = main(
            [
                "recommend", "--library", str(library_path),
                "--activity", "potatoes,carrots", "--strategy", "breadth",
                "-k", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pickles" in out
        assert "breadth top-3" in out

    def test_unmatched_activity_exit_code(self, library_path, capsys):
        code = main(
            [
                "recommend", "--library", str(library_path),
                "--activity", "martian",
            ]
        )
        assert code == 1
        assert "no recommendations" in capsys.readouterr().out

    def test_missing_library_reports_error(self, tmp_path, capsys):
        code = main(
            [
                "recommend", "--library", str(tmp_path / "nope.json"),
                "--activity", "potatoes",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestEvaluate:
    def test_evaluate_prints_all_methods(self, dataset_path, capsys):
        code = main(
            [
                "evaluate", "--dataset", str(dataset_path),
                "-k", "5", "--max-users", "15",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for method in ("breadth", "best_match", "cf_knn", "popularity"):
            assert method in out


class TestExtract:
    def test_extract_builds_library(self, tmp_path, capsys):
        stories = tmp_path / "stories.tsv"
        stories.write_text(
            "lose weight\tI joined a gym. Drank more water.\n"
            "\n"
            "save money\tStop eating out; cook at home.\n"
        )
        out = tmp_path / "extracted.json"
        code = main(
            ["extract", "--stories", str(stories), "--out", str(out)]
        )
        assert code == 0
        library = JsonLibraryStore(out).load()
        assert len(library) == 2

    def test_malformed_line_fails(self, tmp_path, capsys):
        stories = tmp_path / "stories.tsv"
        stories.write_text("no tab separator here\n")
        code = main(
            ["extract", "--stories", str(stories), "--out", str(tmp_path / "o.json")]
        )
        assert code == 1
        assert "goal<TAB>story" in capsys.readouterr().err

    def test_no_actions_extracted_fails(self, tmp_path, capsys):
        stories = tmp_path / "stories.tsv"
        stories.write_text("vague goal\tIt was nice.\n")
        code = main(
            ["extract", "--stories", str(stories), "--out", str(tmp_path / "o.json")]
        )
        assert code == 1


class TestGoals:
    def test_goals_inferred(self, library_path, capsys):
        code = main(
            [
                "goals", "--library", str(library_path),
                "--activity", "potatoes,carrots", "--top", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "olivier salad" in out
        assert "inferred goals" in out

    def test_scorer_selectable(self, library_path, capsys):
        code = main(
            [
                "goals", "--library", str(library_path),
                "--activity", "potatoes", "--scorer", "evidence",
            ]
        )
        assert code == 0
        assert "evidence" in capsys.readouterr().out

    def test_unmatched_activity_exit_code(self, library_path, capsys):
        code = main(
            ["goals", "--library", str(library_path), "--activity", "martian"]
        )
        assert code == 1


class TestServe:
    def test_serve_starts_and_stops(self, library_path, capsys):
        import argparse

        from repro.cli import _cmd_serve

        args = argparse.Namespace(
            library=library_path, host="127.0.0.1", port=0
        )
        code = _cmd_serve(args, block=False)
        assert code == 0
        out = capsys.readouterr().out
        assert "serving" in out
        assert "/recommend" in out

    def test_serve_missing_library_errors(self, tmp_path):
        code = main(
            [
                "serve", "--library", str(tmp_path / "nope.json"),
                "--port", "0",
            ]
        )
        assert code == 2

    def test_approx_budget_flag_parses_with_default(self, library_path):
        from repro.cli import _build_parser

        parser = _build_parser()
        args = parser.parse_args(
            ["serve", "--library", str(library_path)]
        )
        assert args.approx_budget == 128
        args = parser.parse_args(
            [
                "serve", "--library", str(library_path),
                "--approx-budget", "5",
            ]
        )
        assert args.approx_budget == 5

    def test_approx_budget_reaches_service(self, library_path, capsys):
        import argparse

        from repro.cli import _cmd_serve

        args = argparse.Namespace(
            library=library_path, host="127.0.0.1", port=0, approx_budget=9
        )
        code = _cmd_serve(args, block=False)
        assert code == 0
        assert "serving" in capsys.readouterr().out


class TestProfileFlag:
    def test_profile_report_goes_to_stderr(self, library_path, capsys):
        code = main(
            [
                "--profile", "--profile-sort", "tottime",
                "recommend", "--library", str(library_path),
                "--activity", "potatoes", "-k", "3",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "# profiled calls: 1" in captured.err
        assert "tottime" in captured.err
        # stdout still carries the command's own table, uncontaminated.
        assert "profiled calls" not in captured.out

    def test_profile_out_writes_report_file(
        self, library_path, tmp_path, capsys
    ):
        report_path = tmp_path / "deep" / "profile.txt"
        code = main(
            [
                "--profile", "--profile-out", str(report_path),
                "inspect", str(library_path),
            ]
        )
        assert code == 0
        assert report_path.read_text().startswith("# profiled calls: 1")
        assert "wrote profile" in capsys.readouterr().err

    def test_profile_preserves_the_command_exit_code(
        self, library_path, capsys
    ):
        code = main(
            [
                "--profile",
                "recommend", "--library", str(library_path),
                "--activity", "martian",
            ]
        )
        assert code == 1
        assert "# profiled calls: 1" in capsys.readouterr().err
