"""Unit tests for the interactive recommendation session."""

import pytest

from repro.core.session import GoalCompleted, RecommendationSession
from repro.exceptions import RecommendationError


@pytest.fixture
def session(recipe_model):
    return RecommendationSession(recipe_model)


class TestState:
    def test_initial_activity_recorded(self, recipe_model):
        session = RecommendationSession(
            recipe_model, initial_activity={"potatoes"}
        )
        assert session.activity == frozenset({"potatoes"})
        assert session.history == ("potatoes",)

    def test_goal_progress(self, session):
        session.perform("potatoes")
        session.perform("carrots")
        progress = session.goal_progress()
        assert progress["olivier salad"] == pytest.approx(2 / 3)

    def test_completed_goals_initially_empty(self, session):
        assert session.completed_goals() == set()


class TestPerform:
    def test_event_on_goal_completion(self, session):
        session.perform_all(["potatoes", "carrots"])
        events = session.perform("pickles")
        assert events == [GoalCompleted(goal="olivier salad", action="pickles")]

    def test_no_event_before_completion(self, session):
        assert session.perform("potatoes") == []

    def test_duplicate_perform_is_noop(self, session):
        session.perform("potatoes")
        assert session.perform("potatoes") == []
        assert session.history.count("potatoes") == 1

    def test_unknown_action_recorded_silently(self, session):
        events = session.perform("napkins")
        assert events == []
        assert "napkins" in session.activity

    def test_multiple_goals_in_one_event_batch(self, recipe_model):
        session = RecommendationSession(
            recipe_model,
            initial_activity={"potatoes", "carrots", "butter", "oil"},
        )
        events = session.perform("nutmeg")
        goals = {event.goal for event in events}
        assert goals == {"mashed potatoes", "pan-fried carrots"}

    def test_perform_all_accumulates_events(self, session):
        events = session.perform_all(["potatoes", "carrots", "pickles"])
        assert [e.goal for e in events] == ["olivier salad"]


class TestUndo:
    def test_undo_removes_last_action(self, session):
        session.perform_all(["potatoes", "carrots"])
        assert session.undo() == "carrots"
        assert session.activity == frozenset({"potatoes"})

    def test_undo_reopens_goal(self, session):
        session.perform_all(["potatoes", "carrots", "pickles"])
        session.undo()
        assert "olivier salad" not in session.completed_goals()

    def test_undo_empty_raises(self, session):
        with pytest.raises(RecommendationError, match="undo"):
            session.undo()


class TestRecommendations:
    def test_recommendations_follow_activity(self, session):
        session.perform_all(["potatoes", "carrots"])
        assert session.next_action() in {"pickles", "nutmeg"}

    def test_next_action_none_without_evidence(self, session):
        assert session.next_action() is None

    def test_strategy_override(self, session):
        session.perform_all(["potatoes", "carrots"])
        result = session.recommendations(k=3, strategy="focus_cl")
        assert result.strategy == "focus_cl"

    def test_completed_actions_never_recommended(self, session):
        session.perform_all(["potatoes", "carrots", "pickles"])
        result = session.recommendations(k=10)
        assert not result.action_set() & session.activity
