"""Unit tests for CSV import/export."""

import pytest

from repro.data.csv_io import (
    read_activities_csv,
    read_library_csv,
    write_activities_csv,
    write_library_csv,
)
from repro.data.schema import GeneratedUser
from repro.exceptions import DataError


class TestLibraryCsv:
    def test_roundtrip(self, tmp_path, recipe_library):
        path = write_library_csv(recipe_library, tmp_path / "lib.csv")
        restored = read_library_csv(path)
        assert [(i.goal, i.actions) for i in restored] == [
            (i.goal, i.actions) for i in recipe_library
        ]

    def test_read_without_impl_column_groups_by_goal(self, tmp_path):
        path = tmp_path / "lib.csv"
        path.write_text(
            "goal,action\nsalad,tomato\nsalad,feta\nsoup,leek\n"
        )
        library = read_library_csv(path)
        assert len(library) == 2
        assert library.implementations_of("salad")[0].actions == frozenset(
            {"tomato", "feta"}
        )

    def test_impl_column_splits_alternatives(self, tmp_path):
        path = tmp_path / "lib.csv"
        path.write_text(
            "goal,impl,action\n"
            "salad,v1,tomato\nsalad,v1,feta\nsalad,v2,rocket\n"
        )
        library = read_library_csv(path)
        assert len(library.implementations_of("salad")) == 2

    def test_missing_columns_raise(self, tmp_path):
        path = tmp_path / "lib.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(DataError, match="columns"):
            read_library_csv(path)

    def test_blank_cells_raise_with_line_number(self, tmp_path):
        path = tmp_path / "lib.csv"
        path.write_text("goal,action\nsalad,tomato\n,feta\n")
        with pytest.raises(DataError, match=":3"):
            read_library_csv(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "lib.csv"
        path.write_text("goal,action\n")
        with pytest.raises(DataError, match="no implementation rows"):
            read_library_csv(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataError, match="not found"):
            read_library_csv(tmp_path / "nope.csv")


class TestActivitiesCsv:
    @pytest.fixture
    def users(self):
        return [
            GeneratedUser(
                user_id="u1",
                full_activity=frozenset({"a", "b", "c"}),
                sequence=("b", "a", "c"),
            ),
            GeneratedUser(user_id="u2", full_activity=frozenset({"x"})),
        ]

    def test_roundtrip_preserves_sequences(self, tmp_path, users):
        path = write_activities_csv(users, tmp_path / "acts.csv")
        restored = read_activities_csv(path)
        assert restored[0].user_id == "u1"
        assert restored[0].sequence == ("b", "a", "c")
        assert restored[0].full_activity == frozenset({"a", "b", "c"})

    def test_sequenceless_user_sorted(self, tmp_path, users):
        path = write_activities_csv(users, tmp_path / "acts.csv")
        restored = read_activities_csv(path)
        assert restored[1].sequence == ("x",)

    def test_duplicate_events_kept_once(self, tmp_path):
        path = tmp_path / "acts.csv"
        path.write_text("user,action\nu,run\nu,swim\nu,run\n")
        (user,) = read_activities_csv(path)
        assert user.sequence == ("run", "swim")

    def test_user_order_preserved(self, tmp_path):
        path = tmp_path / "acts.csv"
        path.write_text("user,action\nzed,a\nann,b\n")
        users = read_activities_csv(path)
        assert [u.user_id for u in users] == ["zed", "ann"]

    def test_missing_columns_raise(self, tmp_path):
        path = tmp_path / "acts.csv"
        path.write_text("who,what\nu,a\n")
        with pytest.raises(DataError, match="columns"):
            read_activities_csv(path)

    def test_blank_cells_raise(self, tmp_path):
        path = tmp_path / "acts.csv"
        path.write_text("user,action\nu,\n")
        with pytest.raises(DataError):
            read_activities_csv(path)

    def test_empty_raises(self, tmp_path):
        path = tmp_path / "acts.csv"
        path.write_text("user,action\n")
        with pytest.raises(DataError, match="no activity rows"):
            read_activities_csv(path)
