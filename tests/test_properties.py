"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cf_knn import tanimoto
from repro.core import AssociationGoalModel, ImplementationLibrary
from repro.core.distances import (
    cosine_distance,
    euclidean_distance,
    manhattan_distance,
)
from repro.core.strategies import create_strategy
from repro.core.strategies.focus import closeness, completeness
from repro.data.loaders import library_from_dict, library_to_dict
from repro.eval.metrics import list_overlap, pearson

# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

action_labels = st.integers(min_value=0, max_value=25).map(lambda i: f"a{i}")
goal_labels = st.integers(min_value=0, max_value=8).map(lambda g: f"g{g}")

implementations = st.tuples(
    goal_labels, st.frozensets(action_labels, min_size=1, max_size=6)
)
libraries = st.lists(implementations, min_size=1, max_size=20)
activities = st.frozensets(action_labels, max_size=8)


def build_model(pairs):
    return AssociationGoalModel.from_pairs(pairs)


# ---------------------------------------------------------------------------
# Model invariants
# ---------------------------------------------------------------------------

@given(libraries, activities)
@settings(max_examples=60)
def test_goal_space_subset_of_goals(pairs, activity):
    model = build_model(pairs)
    encoded = model.encode_activity(activity)
    assert model.goal_space(encoded) <= set(range(model.num_goals))


@given(libraries, activities)
@settings(max_examples=60)
def test_action_space_monotone_in_activity(pairs, activity):
    """Adding actions to H can only grow AS(H) (union semantics)."""
    model = build_model(pairs)
    encoded = model.encode_activity(activity)
    for aid in list(encoded):
        smaller = encoded - {aid}
        assert model.action_space(smaller) <= model.action_space(encoded)


@given(libraries, activities)
@settings(max_examples=60)
def test_candidates_disjoint_from_activity(pairs, activity):
    model = build_model(pairs)
    encoded = model.encode_activity(activity)
    assert not model.candidate_actions(encoded) & encoded


@given(libraries)
@settings(max_examples=60)
def test_goal_space_of_implementation_contains_its_goal(pairs):
    """Every implementation's own activity reaches its goal."""
    model = build_model(pairs)
    for pid in range(model.num_implementations):
        activity = model.implementation_actions(pid)
        assert model.implementation_goal(pid) in model.goal_space(activity)


@given(libraries)
@settings(max_examples=40)
def test_connectivity_positive_and_bounded(pairs):
    model = build_model(pairs)
    connectivity = model.connectivity()
    assert 1.0 <= connectivity <= model.num_implementations


# ---------------------------------------------------------------------------
# Strategy invariants
# ---------------------------------------------------------------------------

@given(libraries, activities, st.sampled_from(
    ["focus_cmp", "focus_cl", "breadth", "best_match"]
))
@settings(max_examples=60, deadline=None)
def test_strategy_output_invariants(pairs, activity, name):
    """Every strategy: no H actions, no duplicates, descending scores, <= k."""
    model = build_model(pairs)
    encoded = model.encode_activity(activity)
    ranked = create_strategy(name).rank(model, encoded, k=5)
    actions = [aid for aid, _ in ranked]
    assert len(actions) == len(set(actions))
    assert not set(actions) & encoded
    assert len(ranked) <= 5
    if name != "focus_cmp" and name != "focus_cl":
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)


@given(libraries, activities)
@settings(max_examples=40, deadline=None)
def test_strategies_deterministic(pairs, activity):
    model = build_model(pairs)
    encoded = model.encode_activity(activity)
    for name in ("focus_cmp", "focus_cl", "breadth", "best_match"):
        strategy = create_strategy(name)
        assert strategy.rank(model, encoded, 10) == strategy.rank(
            model, encoded, 10
        )


@given(
    st.frozensets(st.integers(0, 20), min_size=1, max_size=10),
    st.frozensets(st.integers(0, 20), max_size=10),
)
def test_focus_measures_ranges(impl, activity):
    assert 0.0 <= completeness(impl, activity) <= 1.0
    if impl - activity:
        assert 0.0 < closeness(impl, activity) <= 1.0


# ---------------------------------------------------------------------------
# Distance metric properties
# ---------------------------------------------------------------------------

# Coordinates are zero or well-conditioned positives: the distance functions
# are used on integer count vectors, where subnormal-float underflow (which
# makes cosine numerically meaningless) cannot occur.
coordinate = st.floats(min_value=0.0, max_value=100.0).map(
    lambda x: 0.0 if x < 1e-6 else x
)
vectors = st.lists(coordinate, min_size=1, max_size=8)
paired_vectors = st.integers(1, 8).flatmap(
    lambda n: st.tuples(
        st.lists(coordinate, min_size=n, max_size=n),
        st.lists(coordinate, min_size=n, max_size=n),
    )
)


@given(paired_vectors)
def test_distances_symmetric_and_nonnegative(pair):
    u, v = pair
    for metric in (cosine_distance, euclidean_distance, manhattan_distance):
        assert metric(u, v) >= -1e-12
        assert abs(metric(u, v) - metric(v, u)) < 1e-9


@given(vectors)
def test_self_distance_zero(v):
    assert euclidean_distance(v, v) == 0.0
    assert manhattan_distance(v, v) == 0.0
    if any(x > 0 for x in v):
        assert abs(cosine_distance(v, v)) < 1e-9


@given(paired_vectors)
def test_cosine_bounded_for_nonnegative_vectors(pair):
    u, v = pair
    assert -1e-9 <= cosine_distance(u, v) <= 1.0 + 1e-9


# ---------------------------------------------------------------------------
# Similarity / metric properties
# ---------------------------------------------------------------------------

@given(
    st.frozensets(st.integers(0, 30), max_size=15),
    st.frozensets(st.integers(0, 30), max_size=15),
)
def test_tanimoto_properties(a, b):
    value = tanimoto(a, b)
    assert 0.0 <= value <= 1.0
    assert value == tanimoto(b, a)
    if a and a == b:
        assert value == 1.0
    if not (a & b):
        assert value == 0.0


@given(
    st.lists(st.floats(-100, 100), min_size=2, max_size=20),
)
def test_pearson_bounded(x):
    y = [2.5 * value + 1.0 for value in x]
    value = pearson(x, y)
    assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


# ---------------------------------------------------------------------------
# Serialization round-trips
# ---------------------------------------------------------------------------

@given(libraries)
@settings(max_examples=40)
def test_library_json_roundtrip(pairs):
    library = ImplementationLibrary()
    for goal, actions in pairs:
        library.add_pair(goal, actions)
    restored = library_from_dict(library_to_dict(library))
    assert [(i.goal, i.actions) for i in restored] == [
        (i.goal, i.actions) for i in library
    ]


@given(libraries)
@settings(max_examples=40)
def test_library_dedup_idempotent(pairs):
    once = ImplementationLibrary()
    twice = ImplementationLibrary()
    for goal, actions in pairs:
        once.add_pair(goal, actions)
    for goal, actions in pairs + pairs:
        twice.add_pair(goal, actions)
    assert len(once) == len(twice)


# ---------------------------------------------------------------------------
# Metric sanity
# ---------------------------------------------------------------------------

@given(
    st.lists(action_labels, unique=True, max_size=10),
    st.lists(action_labels, unique=True, max_size=10),
)
def test_list_overlap_bounded_and_symmetric(a, b):
    from repro.core.entities import RecommendationList, ScoredAction

    list_a = RecommendationList(
        "x", tuple(ScoredAction(v, 1.0) for v in a)
    )
    list_b = RecommendationList(
        "y", tuple(ScoredAction(v, 1.0) for v in b)
    )
    value = list_overlap(list_a, list_b)
    assert 0.0 <= value <= 1.0
    assert value == list_overlap(list_b, list_a)
