"""The metrics-history layer: deterministic derivation, retention, HTTP.

Unit tests drive :class:`repro.obs.MetricsHistory` with a fake clock and a
private registry, pinning the derived views bit-for-bit: counter families
become clamped rates, gauges report last values, histograms interpolate
window quantiles from cumulative-bucket deltas.  Retention (ring-buffer
eviction, stale-series pruning after a registry reset) and the
frozen-clock idempotence rule are covered, plus a concurrent
capture/read/reset hammer.

Integration tests exercise ``GET /debug/history`` on a live service —
index and family views, query validation, survival across a hot-reload
generation swap (the generation gauge steps visibly inside one window) —
and the ``repro monitor`` CLI in ``--once`` / ``--once --json`` modes.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.core import AssociationGoalModel
from repro.obs.history import MAX_GRID_POINTS, MetricsHistory
from repro.obs.metrics import MetricsRegistry
from repro.service import RecommenderService


class FakeClock:
    def __init__(self, start: float = 1_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def registry():
    return MetricsRegistry()


def make_history(registry, clock, interval=5.0, window=60.0):
    return MetricsHistory(
        interval, window, clock=clock, registry_getter=lambda: registry
    )


# ----------------------------------------------------------------------
# Derivation determinism (fake clock)
# ----------------------------------------------------------------------


class TestCounterRates:
    def test_rates_are_deltas_over_elapsed(self, registry):
        clock = FakeClock(1_000.0)
        history = make_history(registry, clock)
        counter = registry.counter("jobs_total", "test counter")
        counter.inc(0)
        history.capture()
        clock.advance(5.0)
        counter.inc(10)
        history.capture()
        clock.advance(5.0)
        counter.inc(30)
        history.capture()

        result = history.series("jobs_total", window=10.0, step=5.0)
        assert result is not None
        assert result["kind"] == "counter"
        assert result["timestamps"] == [1_000.0, 1_005.0, 1_010.0]
        (series,) = result["series"]
        # No predecessor at the first point; then (10-0)/5 and (40-10)/5.
        assert series["values"] == [None, 2.0, 6.0]

    def test_labelled_children_stay_separate_series(self, registry):
        clock = FakeClock()
        history = make_history(registry, clock)
        registry.counter("ops_total", "test", kind="read").inc(5)
        registry.counter("ops_total", "test", kind="write").inc(1)
        history.capture()
        clock.advance(5.0)
        registry.counter("ops_total", "test", kind="read").inc(5)
        registry.counter("ops_total", "test", kind="write").inc(3)
        history.capture()

        result = history.series("ops_total", window=5.0, step=5.0)
        by_label = {
            series["labels"]["kind"]: series["values"]
            for series in result["series"]
        }
        assert by_label == {
            "read": [None, 1.0],
            "write": [None, 0.6],
        }

    def test_counter_reset_clamps_to_zero_rate(self):
        # A counter that goes backwards (registry reset, process restart)
        # must read as a dip to zero, never a negative rate.
        out = MetricsHistory._rate_series(
            [1_000.0, 1_005.0], [100.0, 40.0], [1_005.0]
        )
        assert out == [0.0]


class TestGaugeSeries:
    def test_last_value_wins_and_gaps_are_none(self, registry):
        clock = FakeClock(1_000.0)
        history = make_history(registry, clock)
        gauge = registry.gauge("depth", "test gauge")
        gauge.set(5.0)
        history.capture()
        clock.advance(5.0)
        gauge.set(7.0)
        history.capture()

        result = history.series("depth", window=15.0, step=5.0)
        (series,) = result["series"]
        # Grid runs 990 → 1005: the two points before the first capture
        # have no data; then the captured values verbatim.
        assert series["values"] == [None, None, 5.0, 7.0]


class TestHistogramQuantiles:
    def test_interpolated_quantiles_from_bucket_deltas(self, registry):
        clock = FakeClock(1_000.0)
        history = make_history(registry, clock)
        histogram = registry.histogram(
            "latency_seconds", "test histogram", buckets=(1.0, 2.0, 4.0)
        )
        history.capture()
        clock.advance(5.0)
        for _ in range(100):
            histogram.observe(0.5)   # bucket <= 1.0
        for _ in range(100):
            histogram.observe(1.5)   # bucket <= 2.0
        history.capture()

        result = history.series(
            "latency_seconds", window=5.0, step=5.0
        )
        assert result["kind"] == "histogram"
        (series,) = result["series"]
        # 200 observations over 5 seconds.
        assert series["count_rate"] == [None, 40.0]
        # Cumulative delta [100, 200, 200, 200]: the median lands exactly
        # at the top of the first bucket, p95 interpolates 90% into the
        # second, p99 98% into it.
        assert series["p50"] == [None, 1.0]
        assert series["p95"] == [None, pytest.approx(1.9)]
        assert series["p99"] == [None, pytest.approx(1.98)]

    def test_overflow_reports_highest_finite_bound(self):
        # Everything in +Inf: the quantile saturates at the last bound.
        assert obs.histogram_quantile(0.5, [0.0, 0.0, 5.0], (1.0, 2.0)) == 2.0

    def test_empty_window_is_none(self):
        assert obs.histogram_quantile(0.5, [], (1.0,)) is None
        assert obs.histogram_quantile(0.5, [0.0, 0.0], (1.0,)) is None


# ----------------------------------------------------------------------
# Capture semantics: idempotence, retention, pruning
# ----------------------------------------------------------------------


class TestCaptureSemantics:
    def test_frozen_clock_replaces_newest_point(self, registry):
        clock = FakeClock()
        history = make_history(registry, clock)
        counter = registry.counter("ticks_total", "test")
        counter.inc(1)
        history.capture()
        counter.inc(1)
        history.capture()  # same timestamp: replace, not append
        index = history.index()
        assert index["captures"] == 2
        assert index["families"]["ticks_total"]["points"] == 1
        # And rate derivation never divides by the zero-width interval.
        result = history.series("ticks_total", window=5.0, step=5.0)
        assert result["series"][0]["values"] == [None, None]

    def test_ring_buffer_retention_is_window_over_interval(self, registry):
        clock = FakeClock()
        history = make_history(registry, clock, interval=1.0, window=5.0)
        assert history.capacity == 6
        gauge = registry.gauge("depth", "test")
        for tick in range(10):
            gauge.set(float(tick))
            history.capture()
            clock.advance(1.0)
        index = history.index()
        assert index["families"]["depth"]["points"] == 6
        assert index["capacity_points_per_series"] == 6

    def test_vanished_family_is_pruned_after_window(self, registry):
        clock = FakeClock()
        history = make_history(registry, clock, interval=5.0, window=20.0)
        registry.counter("doomed_total", "test").inc(1)
        history.capture()
        assert "doomed_total" in history.families()
        registry.reset()  # the family vanishes; no new points arrive
        for _ in range(6):
            clock.advance(5.0)
            history.capture()
        assert "doomed_total" not in history.families()
        assert history.index()["memory_bytes_estimate"] == 0

    def test_memory_estimate_follows_documented_constants(self, registry):
        clock = FakeClock()
        history = make_history(registry, clock)
        registry.gauge("depth", "test").set(1.0)
        registry.histogram(
            "lat_seconds", "test", buckets=(1.0, 2.0)
        ).observe(0.5)
        history.capture()
        # One scalar point (120 B) + one histogram point
        # (200 B + 32 B × 3 buckets incl. +Inf) — docs/monitoring.md math.
        assert history.index()["memory_bytes_estimate"] == 120 + 200 + 32 * 3


class TestQueryValidation:
    def test_unknown_family_is_none(self, registry):
        history = make_history(registry, FakeClock())
        history.capture()
        assert history.series("nope_total") is None

    def test_explicit_step_overflowing_grid_raises(self, registry):
        history = make_history(registry, FakeClock(), interval=1.0,
                               window=10.0)
        with pytest.raises(ValueError, match="grid points"):
            history.series("x", window=10_000.0, step=0.001)

    def test_default_step_auto_coarsens_instead_of_raising(self, registry):
        clock = FakeClock()
        history = make_history(registry, clock, interval=0.01, window=900.0)
        registry.gauge("depth", "test").set(1.0)
        history.capture()
        result = history.series("depth")  # 90 001 raw points: must coarsen
        assert len(result["timestamps"]) <= MAX_GRID_POINTS

    def test_nonpositive_window_or_step_raises(self, registry):
        history = make_history(registry, FakeClock())
        with pytest.raises(ValueError):
            history.series("x", window=0.0)
        with pytest.raises(ValueError):
            history.series("x", step=-1.0)

    def test_bad_construction_raises(self):
        with pytest.raises(ValueError):
            MetricsHistory(0.0, 60.0)
        with pytest.raises(ValueError):
            MetricsHistory(10.0, 5.0)  # window shorter than interval


class TestConcurrency:
    def test_concurrent_capture_read_reset(self, registry):
        history = MetricsHistory(
            0.001, 1.0, registry_getter=lambda: registry
        )
        counter = registry.counter("hammer_total", "test")
        gauge = registry.gauge("hammer_depth", "test")
        stop = threading.Event()
        errors: list[BaseException] = []

        def guard(fn):
            def run():
                while not stop.is_set():
                    try:
                        fn()
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                        return
            return run

        def write():
            counter.inc(1)
            gauge.set(time.time() % 100)
            history.capture()

        def read():
            history.index()
            history.families()
            history.series("hammer_total", window=1.0, step=0.05)

        threads = [
            threading.Thread(target=guard(write)),
            threading.Thread(target=guard(write)),
            threading.Thread(target=guard(read)),
            threading.Thread(target=guard(read)),
            threading.Thread(target=guard(history.reset)),
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.5)
        stop.set()
        for thread in threads:
            thread.join(5.0)
        assert not errors, errors

    def test_start_stop_lifecycle_is_idempotent(self, registry):
        history = MetricsHistory(
            0.01, 1.0, registry_getter=lambda: registry
        )
        registry.gauge("depth", "test").set(1.0)
        history.start()
        history.start()  # no second thread
        deadline = time.monotonic() + 5.0
        while history.index()["captures"] < 3:
            assert time.monotonic() < deadline, "capture loop never ticked"
            time.sleep(0.01)
        history.stop()
        history.stop()
        captures = history.index()["captures"]
        time.sleep(0.05)
        assert history.index()["captures"] == captures  # loop really dead


# ----------------------------------------------------------------------
# HTTP integration: /debug/history on a live service
# ----------------------------------------------------------------------


PAIRS = [
    ("olivier salad", {"potatoes", "carrots", "pickles"}),
    ("mashed potatoes", {"potatoes", "nutmeg", "butter"}),
    ("pan-fried carrots", {"carrots", "nutmeg", "oil"}),
]


@pytest.fixture
def service(request):
    """A live service capturing history every 50 ms into a private registry."""
    previous_registry = obs.set_registry(MetricsRegistry())
    model = AssociationGoalModel.from_pairs(PAIRS)
    server = RecommenderService(
        model, port=0, history_interval_seconds=0.05,
        history_window_seconds=30.0,
    ).start()

    def teardown():
        server.stop()
        obs.disable()
        obs.set_registry(previous_registry)

    request.addfinalizer(teardown)
    return server


def call(service, path, payload=None, method=None, headers=None):
    url = f"http://127.0.0.1:{service.port}{path}"
    data = json.dumps(payload).encode() if payload is not None else None
    request_headers = dict(headers or {})
    if data is not None:
        request_headers.setdefault("Content-Type", "application/json")
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data else "GET"),
        headers=request_headers,
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            raw = response.read()
            content_type = response.headers.get("Content-Type", "")
            parsed = (
                json.loads(raw) if content_type.startswith("application/json")
                else raw.decode("utf-8")
            )
            return response.status, parsed, dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def wait_for(fetch, predicate, timeout=5.0):
    """Poll until ``predicate(fetch())``; request accounting runs after the
    response is written, so history/trace reads must tolerate a beat."""
    deadline = time.monotonic() + timeout
    while True:
        value = fetch()
        if predicate(value):
            return value
        if time.monotonic() >= deadline:
            return value
        time.sleep(0.02)


class TestDebugHistoryEndpoint:
    def test_index_shape(self, service):
        status, body, _ = wait_for(
            lambda: call(service, "/debug/history"),
            lambda result: result[1].get("captures", 0) >= 2,
        )
        assert status == 200
        assert body["enabled"] is True
        assert body["interval_seconds"] == 0.05
        assert body["window_seconds"] == 30.0
        assert (
            body["capacity_points_per_series"] == service.history.capacity
        )
        assert body["memory_bytes_estimate"] > 0
        assert body["families"]  # the service's own gauges at minimum
        sample = next(iter(body["families"].values()))
        assert set(sample) == {"kind", "series", "points"}

    def test_family_series_after_traffic(self, service):
        status, _, _ = call(
            service, "/recommend", {"activity": ["potatoes"], "k": 3}
        )
        assert status == 200

        def fetch():
            return call(
                service,
                "/debug/history?family=repro_http_requests_total&window=10",
            )

        status, body, _ = wait_for(
            fetch,
            lambda result: result[0] == 200 and any(
                value for series in result[1].get("series", ())
                for value in series["values"] if value
            ),
        )
        assert status == 200
        assert body["kind"] == "counter"
        for series in body["series"]:
            assert len(series["values"]) == len(body["timestamps"])
            assert set(series["labels"]) == {"endpoint", "method", "status"}

    def test_histogram_family_renders_quantiles(self, service):
        call(service, "/recommend", {"activity": ["potatoes"], "k": 3})
        status, body, _ = wait_for(
            lambda: call(
                service,
                "/debug/history?family=repro_http_request_seconds&window=10",
            ),
            lambda result: result[0] == 200,
        )
        assert status == 200
        assert body["kind"] == "histogram"
        for series in body["series"]:
            assert {"labels", "count_rate", "p50", "p95", "p99"} <= set(series)

    def test_query_validation(self, service):
        status, body, _ = call(
            service, "/debug/history?family=x&window=abc"
        )
        assert status == 400
        assert "window" in body["error"]
        status, body, _ = call(
            service, "/debug/history?family=x&window=9000&step=0.0001"
        )
        assert status == 400
        assert "grid points" in body["detail"]
        status, body, _ = wait_for(
            lambda: call(service, "/debug/history?family=no_such_family"),
            lambda result: result[0] == 404,
        )
        assert status == 404
        assert isinstance(body["detail"]["families"], list)

    def test_method_not_allowed(self, service):
        status, _, headers = call(
            service, "/debug/history", method="DELETE"
        )
        assert status == 405
        assert headers["Allow"] == "GET, HEAD"

    def test_history_self_metrics_are_exported(self, service):
        _, text, _ = wait_for(
            lambda: call(service, "/metrics"),
            lambda result: "repro_history_snapshots_total" in result[1],
        )
        assert "repro_history_snapshots_total" in text
        assert "repro_history_series" in text
        assert "repro_history_points" in text
        assert "repro_history_capture_seconds_bucket" in text

    def test_debug_vars_carries_the_index(self, service):
        _, body, _ = call(service, "/debug/vars")
        assert body["history"]["enabled"] is True
        assert body["history"]["interval_seconds"] == 0.05

    def test_series_survive_generation_swap(self, service):
        """A hot-reload steps the generation gauge inside one window."""
        call(service, "/recommend", {"activity": ["potatoes"], "k": 3})
        family = "/debug/history?family=repro_quality_model_generation"
        _, before, _ = wait_for(
            lambda: call(service, family + "&window=20"),
            lambda result: result[0] == 200,
        )
        status, _, _ = call(
            service, "/model/implementations",
            {"implementations": [{"goal": "soup", "actions": ["leek"]}]},
            method="PUT",
        )
        assert status == 200
        call(service, "/recommend", {"activity": ["leek"], "k": 3})

        def levels(result):
            if result[0] != 200:
                return set()
            return {
                value
                for series in result[1]["series"]
                for value in series["values"]
                if value is not None
            }

        status, body, _ = wait_for(
            lambda: call(service, family + "&window=20"),
            lambda result: {0.0, 1.0} <= levels(result),
        )
        assert {0.0, 1.0} <= levels((status, body, None)), (
            "generation step never surfaced in the history window"
        )
        assert before["kind"] == "gauge"


class TestHistoryDisabled:
    def test_disabled_service_reports_and_still_serves(self):
        previous_registry = obs.set_registry(MetricsRegistry())
        model = AssociationGoalModel.from_pairs(PAIRS)
        server = RecommenderService(
            model, port=0, history_enabled=False
        ).start()
        try:
            status, body, _ = call(server, "/debug/history")
            assert (status, body) == (200, {"enabled": False})
            _, vars_body, _ = call(server, "/debug/vars")
            assert vars_body["history"] == {"enabled": False}
        finally:
            server.stop()
            obs.disable()
            obs.set_registry(previous_registry)


# ----------------------------------------------------------------------
# The repro monitor CLI against a live server
# ----------------------------------------------------------------------


class TestMonitorCli:
    def test_once_json_snapshot(self, service, capsys):
        from repro.cli import main

        call(service, "/recommend", {"activity": ["potatoes"], "k": 3})
        wait_for(
            lambda: call(service, "/debug/history"),
            lambda result: result[1].get("captures", 0) >= 2,
        )
        url = f"http://127.0.0.1:{service.port}"
        exit_code = main(["monitor", "--once", "--json", "--url", url])
        assert exit_code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert set(snapshot) >= {
            "url", "ts", "rps", "latency", "stages", "cache",
            "resilience", "drift", "slo", "history",
        }
        assert snapshot["history"]["captures"] >= 2
        assert snapshot["cache"]["hits"] + snapshot["cache"]["misses"] >= 1
        assert snapshot["drift"]["alerting"] is False
        assert "availability_burn_rate" in snapshot["slo"]

    def test_once_renders_a_frame(self, service, capsys):
        from repro.cli import main

        call(service, "/recommend", {"activity": ["potatoes"], "k": 3})
        url = f"http://127.0.0.1:{service.port}"
        exit_code = main(["monitor", "--once", "--url", url])
        assert exit_code == 0
        frame = capsys.readouterr().out
        assert "repro monitor" in frame
        assert "rps" in frame
        assert "drift" in frame
        assert "history" in frame

    def test_once_against_dead_server_fails(self, capsys):
        from repro.cli import main

        exit_code = main(
            ["monitor", "--once", "--url", "http://127.0.0.1:1"]
        )
        assert exit_code == 1
        assert "cannot poll" in capsys.readouterr().out

    def test_sparkline_helper(self):
        from repro.obs.console import sparkline

        assert sparkline([]) == ""
        assert sparkline([None, None]) == "··"
        line = sparkline([0.0, 1.0, 2.0, None, 4.0])
        assert len(line) == 5
        assert line[3] == "·"
        assert line[4] == "█"

    def test_parse_metrics_sums_families(self):
        from repro.obs.console import parse_metrics

        text = (
            "# HELP x help\n"
            "# TYPE x counter\n"
            'x_total{a="1"} 2\n'
            'x_total{a="2"} 3\n'
            "lat_seconds_bucket{le=\"1\"} 9\n"
            "lat_seconds_count 4\n"
        )
        totals = parse_metrics(text)
        assert totals["x_total"] == 5.0
        assert "lat_seconds_bucket" not in totals
        assert totals["lat_seconds_count"] == 4.0
