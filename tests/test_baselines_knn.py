"""Unit tests for the CF-KNN baseline and the Tanimoto coefficient."""

import pytest

from repro.baselines import CFKnnRecommender, tanimoto
from repro.exceptions import RecommendationError


class TestTanimoto:
    def test_identical_sets(self):
        assert tanimoto(frozenset({1, 2}), frozenset({1, 2})) == 1.0

    def test_disjoint_sets(self):
        assert tanimoto(frozenset({1}), frozenset({2})) == 0.0

    def test_partial_overlap(self):
        assert tanimoto(frozenset({1, 2, 3}), frozenset({2, 3, 4})) == pytest.approx(
            2 / 4
        )

    def test_empty_sets(self):
        assert tanimoto(frozenset(), frozenset()) == 0.0
        assert tanimoto(frozenset({1}), frozenset()) == 0.0

    def test_symmetry(self):
        a, b = frozenset({1, 2, 5}), frozenset({2, 9})
        assert tanimoto(a, b) == tanimoto(b, a)


class TestFit:
    def test_fit_before_recommend_required(self):
        with pytest.raises(RecommendationError, match="before fit"):
            CFKnnRecommender().recommend({"a"})

    def test_empty_corpus_rejected(self):
        with pytest.raises(RecommendationError, match="empty corpus"):
            CFKnnRecommender().fit([])

    def test_all_empty_activities_rejected(self):
        with pytest.raises(RecommendationError, match="empty"):
            CFKnnRecommender().fit([set(), set()])

    def test_invalid_neighbors_rejected(self):
        with pytest.raises(ValueError, match="num_neighbors"):
            CFKnnRecommender(num_neighbors=0)


class TestNeighbors:
    @pytest.fixture
    def recommender(self):
        corpus = [
            {"a", "b", "c"},
            {"a", "b"},
            {"x", "y"},
        ]
        return CFKnnRecommender(num_neighbors=2).fit(corpus)

    def test_only_overlapping_users_are_neighbors(self, recommender):
        query = recommender.items.encode({"a"})
        users = [u for u, _ in recommender.neighbors(query)]
        assert 2 not in users  # the {x, y} user shares nothing

    def test_neighbors_sorted_by_similarity(self, recommender):
        query = recommender.items.encode({"a", "b"})
        sims = [s for _, s in recommender.neighbors(query)]
        assert sims == sorted(sims, reverse=True)

    def test_neighborhood_size_respected(self):
        corpus = [{"a", str(i)} for i in range(10)]
        recommender = CFKnnRecommender(num_neighbors=3).fit(corpus)
        query = recommender.items.encode({"a"})
        assert len(recommender.neighbors(query)) == 3


class TestRecommend:
    def test_similar_users_items_recommended(self):
        corpus = [
            {"milk", "bread", "eggs"},
            {"milk", "bread", "butter"},
            {"nails", "hammer"},
        ]
        recommender = CFKnnRecommender().fit(corpus)
        result = recommender.recommend({"milk", "bread"}, k=2)
        assert set(result.actions()) == {"eggs", "butter"}

    def test_query_items_never_recommended(self):
        corpus = [{"a", "b"}, {"a", "c"}]
        result = CFKnnRecommender().fit(corpus).recommend({"a"}, k=5)
        assert "a" not in result.actions()

    def test_unknown_query_items_ignored(self):
        corpus = [{"a", "b"}]
        recommender = CFKnnRecommender().fit(corpus)
        result = recommender.recommend({"a", "martian"}, k=5)
        assert result.actions() == ["b"]

    def test_disjoint_query_gets_empty_list(self):
        corpus = [{"a", "b"}]
        recommender = CFKnnRecommender().fit(corpus)
        assert recommender.recommend({"z"}, k=5).actions() == []

    def test_k_zero_rejected(self):
        recommender = CFKnnRecommender().fit([{"a", "b"}])
        with pytest.raises(RecommendationError, match="positive"):
            recommender.recommend({"a"}, k=0)

    def test_deterministic(self):
        corpus = [{"a", "b", "c"}, {"a", "c", "d"}, {"b", "d", "e"}]
        r1 = CFKnnRecommender().fit(corpus).recommend({"a"}, k=5).actions()
        r2 = CFKnnRecommender().fit(corpus).recommend({"a"}, k=5).actions()
        assert r1 == r2
