"""Unit tests for the Markov next-action baseline."""

import pytest

from repro.baselines import MarkovRecommender
from repro.data import FortyThreeConfig, generate_fortythree
from repro.exceptions import RecommendationError


@pytest.fixture
def sequences():
    """'wake' is followed by 'coffee' far more often than by 'tea'."""
    return [
        ["wake", "coffee", "work"],
        ["wake", "coffee", "gym"],
        ["wake", "coffee", "work"],
        ["wake", "tea", "work"],
        ["gym", "shower", "work"],
    ]


class TestConfiguration:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MarkovRecommender(order=0)
        with pytest.raises(ValueError):
            MarkovRecommender(backoff=1.5)
        with pytest.raises(ValueError):
            MarkovRecommender(smoothing=0)

    def test_fit_required(self):
        with pytest.raises(RecommendationError, match="before fit"):
            MarkovRecommender().score(["a"])

    def test_empty_corpus_rejected(self):
        with pytest.raises(RecommendationError, match="empty corpus"):
            MarkovRecommender().fit([])

    def test_all_empty_sequences_rejected(self):
        with pytest.raises(RecommendationError, match="empty"):
            MarkovRecommender().fit([[], []])


class TestTransitionCounts:
    def test_first_order_probability(self, sequences):
        model = MarkovRecommender(order=1, smoothing=0.001).fit(sequences)
        coffee = model.transition_probability(["wake"], "coffee")
        tea = model.transition_probability(["wake"], "tea")
        assert coffee > tea
        assert coffee == pytest.approx(3 / 4, abs=0.01)

    def test_second_order_context(self, sequences):
        model = MarkovRecommender(order=2, smoothing=0.001).fit(sequences)
        work = model.transition_probability(["wake", "coffee"], "work")
        gym = model.transition_probability(["wake", "coffee"], "gym")
        assert work > gym

    def test_unknown_context_is_empty(self, sequences):
        model = MarkovRecommender(order=1).fit(sequences)
        assert model.transition_probability(["martian"], "work") == 0.0

    def test_smoothing_keeps_unseen_rankable(self, sequences):
        model = MarkovRecommender(order=1, smoothing=0.5).fit(sequences)
        # 'shower' never follows 'wake' but gets a smoothed probability.
        assert model.transition_probability(["wake"], "shower") > 0.0


class TestRecommend:
    def test_most_likely_next_action_first(self, sequences):
        model = MarkovRecommender(order=1).fit(sequences)
        result = model.recommend(["wake"], k=2)
        assert result.actions()[0] == "coffee"

    def test_longer_context_dominates(self, sequences):
        model = MarkovRecommender(order=2).fit(sequences)
        result = model.recommend(["wake", "coffee"], k=2)
        assert result.actions()[0] == "work"

    def test_history_actions_excluded(self, sequences):
        model = MarkovRecommender().fit(sequences)
        actions = model.recommend(["wake", "coffee"], k=10).actions()
        assert "wake" not in actions
        assert "coffee" not in actions

    def test_backoff_answers_unseen_context(self, sequences):
        model = MarkovRecommender(order=2).fit(sequences)
        # Context never observed: falls back to unigram popularity.
        result = model.recommend(["shower", "tea"], k=1)
        assert result.actions() == ["work"]  # most frequent overall

    def test_empty_history_uses_unigram(self, sequences):
        model = MarkovRecommender().fit(sequences)
        # 'wake' and 'work' both occur 4 times; the label tie-break puts
        # 'wake' first.
        assert model.recommend([], k=2).actions() == ["wake", "work"]

    def test_k_validated(self, sequences):
        model = MarkovRecommender().fit(sequences)
        with pytest.raises(RecommendationError, match="positive"):
            model.recommend(["wake"], k=0)

    def test_deterministic(self, sequences):
        a = MarkovRecommender().fit(sequences).recommend(["wake"], k=5).actions()
        b = MarkovRecommender().fit(sequences).recommend(["wake"], k=5).actions()
        assert a == b


class TestOnGeneratedSequences:
    def test_fortythree_sequences_available(self, fortythree_tiny):
        assert all(user.sequence for user in fortythree_tiny.users)
        for user in fortythree_tiny.users[:5]:
            assert frozenset(user.sequence) == user.full_activity

    def test_markov_on_generated_data(self):
        dataset = generate_fortythree(FortyThreeConfig.tiny(), seed=1)
        sequences = [user.sequence for user in dataset.users]
        model = MarkovRecommender(order=1).fit(sequences)
        prefix = sequences[0][:2]
        result = model.recommend(prefix, k=5)
        assert len(result) == 5
        assert not result.action_set() & set(prefix)


class TestMarkovProperties:
    """Property-style checks over generated corpora."""

    def test_distribution_sums_to_one(self, sequences):
        model = MarkovRecommender(order=1).fit(sequences)
        distribution = model._context_distribution(("wake",))
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_unigram_distribution_sums_to_one(self, sequences):
        model = MarkovRecommender().fit(sequences)
        assert sum(model._context_distribution(()).values()) == pytest.approx(1.0)

    def test_scores_nonnegative(self, sequences):
        model = MarkovRecommender(order=2).fit(sequences)
        for history in (["wake"], ["wake", "coffee"], ["gym", "shower"]):
            for value in model.score(history).values():
                assert value >= 0.0

    def test_backoff_weight_decreases_with_shorter_context(self, sequences):
        """A longer matching context must dominate the mixed score."""
        model = MarkovRecommender(order=2, backoff=0.1, smoothing=0.001).fit(
            sequences
        )
        scores = model.score(["wake", "coffee"])
        # 'work' follows (wake, coffee) 2/3 of the time; the second-order
        # term alone gives it more mass than any purely backed-off action.
        assert scores["work"] == max(scores.values())
