"""Integration tests for the HTTP recommendation service."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import RecommenderService


@pytest.fixture(scope="module")
def service(request):
    from repro.core import AssociationGoalModel

    model = AssociationGoalModel.from_pairs(
        [
            ("olivier salad", {"potatoes", "carrots", "pickles"}),
            ("mashed potatoes", {"potatoes", "nutmeg", "butter"}),
            ("pan-fried carrots", {"carrots", "nutmeg", "oil"}),
        ]
    )
    server = RecommenderService(model, port=0).start()
    request.addfinalizer(server.stop)
    return server


def call(service, path, payload=None, method=None):
    url = f"http://127.0.0.1:{service.port}{path}"
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data else "GET"),
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestHealth:
    def test_health_reports_model_stats(self, service):
        status, body = call(service, "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["implementations"] == 3
        assert "breadth" in body["strategies"]

    def test_unknown_get_path_404(self, service):
        status, body = call(service, "/nope")
        assert status == 404


class TestRecommend:
    def test_basic_recommendation(self, service):
        status, body = call(
            service,
            "/recommend",
            {"activity": ["potatoes", "carrots"], "k": 3},
        )
        assert status == 200
        actions = [row["action"] for row in body["recommendations"]]
        assert actions[0] == "pickles"
        assert body["strategy"] == "breadth"

    def test_strategy_selection(self, service):
        status, body = call(
            service,
            "/recommend",
            {"activity": ["potatoes"], "strategy": "focus_cl", "k": 2},
        )
        assert status == 200
        assert body["strategy"] == "focus_cl"

    def test_unknown_strategy_422(self, service):
        status, body = call(
            service,
            "/recommend",
            {"activity": ["potatoes"], "strategy": "nope"},
        )
        assert status == 422
        assert "unknown strategy" in body["error"]

    def test_non_positive_k_400(self, service):
        status, body = call(
            service, "/recommend", {"activity": ["potatoes"], "k": -1}
        )
        assert status == 400
        assert "positive" in body["error"]

    def test_boolean_k_400(self, service):
        status, body = call(
            service, "/recommend", {"activity": ["potatoes"], "k": True}
        )
        assert status == 400

    def test_non_integer_k_400(self, service):
        status, body = call(
            service, "/recommend", {"activity": ["potatoes"], "k": "ten"}
        )
        assert status == 400

    def test_missing_activity_400(self, service):
        status, body = call(service, "/recommend", {"k": 3})
        assert status == 400
        assert "activity" in body["error"]

    def test_invalid_json_400(self, service):
        url = f"http://127.0.0.1:{service.port}/recommend"
        request = urllib.request.Request(
            url, data=b"{broken", method="POST"
        )
        try:
            urllib.request.urlopen(request, timeout=5)
            raise AssertionError("expected HTTPError")
        except urllib.error.HTTPError as error:
            assert error.code == 400


class TestSpaces:
    def test_spaces_match_model(self, service):
        status, body = call(service, "/spaces", {"activity": ["potatoes"]})
        assert status == 200
        assert body["goal_space"] == ["mashed potatoes", "olivier salad"]
        assert "pickles" in body["action_space"]

    def test_unknown_actions_yield_empty_spaces(self, service):
        status, body = call(service, "/spaces", {"activity": ["martian"]})
        assert status == 200
        assert body["goal_space"] == []


class TestExplain:
    def test_evidence_returned(self, service):
        status, body = call(
            service,
            "/explain",
            {"activity": ["potatoes", "carrots"], "action": "nutmeg"},
        )
        assert status == 200
        assert set(body["evidence"]) == {"mashed potatoes", "pan-fried carrots"}

    def test_unknown_action_422(self, service):
        status, body = call(
            service, "/explain", {"activity": ["potatoes"], "action": "zzz"}
        )
        assert status == 422

    def test_missing_action_400(self, service):
        status, body = call(service, "/explain", {"activity": ["potatoes"]})
        assert status == 400

    def test_unknown_post_path_404(self, service):
        status, body = call(service, "/elsewhere", {"activity": []})
        assert status == 404


class TestLifecycle:
    def test_double_start_rejected(self, service):
        with pytest.raises(RuntimeError, match="already started"):
            service.start()

    def test_context_manager(self):
        from repro.core import AssociationGoalModel

        model = AssociationGoalModel.from_pairs([("g", {"a", "b"})])
        with RecommenderService(model, port=0) as server:
            status, body = call(server, "/health")
            assert status == 200
        # After stop, a new connection must fail.
        with pytest.raises(urllib.error.URLError):
            call(server, "/health")

    def test_stop_idempotent(self):
        from repro.core import AssociationGoalModel

        model = AssociationGoalModel.from_pairs([("g", {"a", "b"})])
        server = RecommenderService(model, port=0).start()
        server.stop()
        server.stop()  # no-op


class TestGoalsEndpoint:
    def test_goals_inferred(self, service):
        status, body = call(
            service, "/goals",
            {"activity": ["potatoes", "carrots"], "top": 2},
        )
        assert status == 200
        goals = [row["goal"] for row in body["goals"]]
        assert "olivier salad" in goals

    def test_scorer_selectable(self, service):
        status, body = call(
            service, "/goals",
            {"activity": ["potatoes"], "scorer": "evidence"},
        )
        assert status == 200
        assert body["scorer"] == "evidence"

    def test_unknown_scorer_400(self, service):
        status, body = call(
            service, "/goals", {"activity": ["potatoes"], "scorer": "vibes"}
        )
        assert status == 400

    def test_invalid_top_400(self, service):
        status, body = call(
            service, "/goals", {"activity": ["potatoes"], "top": 0}
        )
        assert status == 400


class TestRelatedEndpoint:
    def test_related_returned(self, service):
        status, body = call(service, "/related", {"action": "nutmeg", "k": 3})
        assert status == 200
        related = {row["action"] for row in body["related"]}
        assert {"butter", "oil"} & related

    def test_unknown_action_422(self, service):
        status, body = call(service, "/related", {"action": "martian"})
        assert status == 422

    def test_missing_action_400(self, service):
        status, body = call(service, "/related", {"k": 3})
        assert status == 400

    def test_invalid_k_400(self, service):
        status, body = call(service, "/related", {"action": "nutmeg", "k": -1})
        assert status == 400


class TestConcurrency:
    def test_parallel_requests_consistent(self, service):
        """ThreadingHTTPServer: concurrent identical requests must agree."""
        import threading

        payload = {"activity": ["potatoes", "carrots"], "k": 3}
        results = []
        errors = []

        def worker():
            try:
                status, body = call(service, "/recommend", payload)
                results.append((status, tuple(
                    row["action"] for row in body["recommendations"]
                )))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(set(results)) == 1
        assert results[0][0] == 200


class TestServingTiers:
    def test_default_tier_is_exact(self, service):
        status, body = call(
            service, "/recommend", {"activity": ["potatoes"], "k": 3}
        )
        assert status == 200
        assert body["tier"] == "exact"
        assert body["strategy"] == "breadth"

    def test_approx_tier_via_body(self, service):
        status, body = call(
            service,
            "/recommend",
            {"activity": ["potatoes"], "k": 3, "tier": "approx"},
        )
        assert status == 200
        assert body["tier"] == "approx"
        assert body["strategy"] == "breadth_pruned"
        assert body["recommendations"]

    def test_approx_tier_via_query_param_wins(self, service):
        status, body = call(
            service,
            "/recommend?tier=approx",
            {"activity": ["potatoes"], "k": 3, "tier": "exact"},
        )
        assert status == 200
        assert body["tier"] == "approx"
        assert body["strategy"] == "breadth_pruned"

    def test_approx_matches_exact_at_toy_scale(self, service):
        """Connectivity here is far below the default budget, so the pruned
        tier returns the exact Breadth ranking."""
        payload = {"activity": ["potatoes", "carrots"], "k": 5}
        _, exact = call(service, "/recommend", payload)
        _, approx = call(
            service, "/recommend", {**payload, "tier": "approx"}
        )
        assert approx["recommendations"] == exact["recommendations"]

    def test_invalid_tier_400(self, service):
        status, body = call(
            service,
            "/recommend",
            {"activity": ["potatoes"], "k": 3, "tier": "turbo"},
        )
        assert status == 400
        assert "tier" in body["error"]

    def test_approx_requires_breadth(self, service):
        status, body = call(
            service,
            "/recommend",
            {
                "activity": ["potatoes"],
                "k": 3,
                "tier": "approx",
                "strategy": "focus_cl",
            },
        )
        assert status == 400
        assert body["error"] == "tier 'approx' requires strategy 'breadth'"
