"""Property/parity suite: the cached and batched paths must be bit-identical
to the reference recommender.

Three serving-path variants are checked against ``GoalRecommender`` on
randomized libraries and on an adversarially tie-heavy library (many equal
scores, so any tie-breaking divergence surfaces):

- ``BatchRecommender.recommend`` (per-activity vectorized path),
- ``BatchRecommender.recommend_many`` (chunked bulk path),
- ``CachingRecommender`` (LRU front, including the hit path),

and the parity must survive a cache-invalidating mutation (implementations
added and removed through ``IncrementalGoalModel``, model refrozen).
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    AssociationGoalModel,
    CachingRecommender,
    GoalRecommender,
    IncrementalGoalModel,
    LRUCache,
)
from repro.core.vectorized import BatchRecommender

STRATEGIES = ("breadth", "focus_cmp", "focus_cl", "best_match")


def random_pairs(rng: random.Random, implementations: int = 40):
    """A random library over 10 goals and 26 actions with heavy overlap."""
    goals = [f"g{i}" for i in range(10)]
    actions = [f"a{i:02d}" for i in range(26)]
    pairs = []
    for _ in range(implementations):
        size = rng.randint(2, 6)
        pairs.append((rng.choice(goals), set(rng.sample(actions, size))))
    return pairs


def tie_heavy_pairs():
    """A library built to produce score collisions everywhere.

    Every goal has several implementations of identical shape over disjoint
    action blocks, so distinct candidates tie on every strategy's score and
    only the deterministic tie-break (ascending action id) orders them.
    """
    pairs = []
    for block in range(6):
        base = [f"t{block}_{i}" for i in range(4)]
        for goal_index in range(3):
            pairs.append((f"goal{goal_index}", set(base)))
            pairs.append(
                (f"goal{goal_index}", set(base[:2]) | {f"x{block}_{goal_index}"})
            )
    # One shared action links the blocks so activities reach across them.
    pairs.append(("bridge", {"t0_0", "t1_0", "t2_0", "t3_0"}))
    return pairs


def sample_activities(rng: random.Random, model, count: int = 30):
    """Random activities over the model's actions, including edge shapes."""
    labels = [model.action_label(aid) for aid in range(model.num_actions)]
    activities = [set(), {labels[0]}, set(labels[:3])]
    for _ in range(count):
        size = rng.randint(1, 5)
        activities.append(set(rng.sample(labels, min(size, len(labels)))))
    # Deduplicate (stable order): the cache checks below assume the first
    # lookup of each activity is a miss.
    unique = []
    seen = set()
    for activity in activities:
        key = frozenset(activity)
        if key not in seen:
            seen.add(key)
            unique.append(activity)
    return unique


def assert_identical(expected, actual, context):
    """Compare a serving-path result against the reference result.

    Actions and scores must be bit-identical for *every* strategy.
    Breadth and the focus variants work on small integer counts and their
    ratios, exact in float64 on both paths.  ``best_match`` is exact too
    because both paths accumulate integer-valued dot products and norms
    (exact in float64) and then evaluate the same
    ``1 - dot / sqrt(norm_u * norm_v)`` expression — one sqrt of the
    product, never ``sqrt(norm_u) * sqrt(norm_v)``, which differs in the
    last ulp and would let tied candidates permute.
    """
    assert actual.actions() == expected.actions(), context
    for exp_item, act_item in zip(expected, actual):
        assert act_item.score == exp_item.score, (
            f"{context}: score diverged on {act_item.action}"
        )
    # The recorded activity must agree too: both paths decode the *encoded*
    # activity, dropping labels the model has never seen (regression for
    # the batch path echoing raw ids in the ``activity`` field).
    assert actual.activity == expected.activity, (
        f"{context}: activity field diverged"
    )


def check_parity(model, activities, k=10):
    reference = GoalRecommender(model)
    batch = BatchRecommender(model)
    caching = CachingRecommender(reference, LRUCache(256, name="parity"))
    for strategy in STRATEGIES:
        expected = [
            reference.recommend(activity, k=k, strategy=strategy)
            for activity in activities
        ]
        for activity, want in zip(activities, expected):
            got = batch.recommend(activity, k=k, strategy=strategy)
            assert_identical(
                want, got, f"batch/{strategy}/{sorted(activity)}"
            )
            # Twice through the cache: miss path, then hit path.  The cache
            # wraps the reference recommender, so scores are bit-identical
            # for every strategy here.
            first, hit1 = caching.recommend(activity, k=k, strategy=strategy)
            second, hit2 = caching.recommend(activity, k=k, strategy=strategy)
            assert (hit1, hit2) == (False, True)
            assert_identical(want, first, f"cache/{strategy}/{sorted(activity)}")
            assert second is first
        # Bulk path, with a chunk size that forces several chunks.
        many = batch.recommend_many(
            [frozenset(activity) for activity in activities],
            k=k, strategy=strategy, chunk_size=7,
        )
        for activity, want, got in zip(activities, expected, many):
            assert_identical(
                want, got, f"many/{strategy}/{sorted(activity)}"
            )


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_libraries(self, seed):
        rng = random.Random(seed)
        model = AssociationGoalModel.from_pairs(random_pairs(rng))
        check_parity(model, sample_activities(rng, model))

    def test_tie_heavy_library(self):
        rng = random.Random(99)
        model = AssociationGoalModel.from_pairs(tie_heavy_pairs())
        check_parity(model, sample_activities(rng, model))

    def test_best_match_cosine_ties_order_identically(self):
        """Regression for the ``sqrt(a)*sqrt(b)`` vs ``sqrt(a*b)`` 1-ulp bug.

        Candidates engineered to carry the *same* cosine distance to the
        profile must come back in the same (ascending-id) order from the
        scalar and the vectorized path.  Before the fix the vectorized
        ``best_match`` normalized with two square roots, which lands one
        ulp away from the scalar's single square root for some integer
        norm products — enough to split a tie group and permute the
        ranking.
        """
        # Four goals with symmetric profiles: every yN action ends up at
        # the same distance from an activity inside the shared core.
        pairs = []
        for i in range(4):
            pairs.append((f"goal{i}", {"core0", "core1", "core2", f"y{i}"}))
        pairs.append(("hub", {"core0", "core1", "core2"}))
        model = AssociationGoalModel.from_pairs(pairs)
        reference = GoalRecommender(model)
        batch = BatchRecommender(model)
        for activity in ({"core0"}, {"core0", "core1"},
                         {"core0", "core1", "core2"}):
            want = reference.recommend(activity, k=10, strategy="best_match")
            got = batch.recommend(activity, k=10, strategy="best_match")
            assert_identical(want, got, f"best_match-ties/{sorted(activity)}")


class TestActivityFieldParity:
    """The ``activity`` echoed on results is label-level and OOV-free."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_unknown_labels_dropped_identically(self, strategy):
        rng = random.Random(3)
        model = AssociationGoalModel.from_pairs(random_pairs(rng))
        reference = GoalRecommender(model)
        batch = BatchRecommender(model)
        known = {model.action_label(0), model.action_label(1)}
        activity = known | {"never-seen", "also-unknown"}
        want = reference.recommend(activity, k=10, strategy=strategy)
        got = batch.recommend(activity, k=10, strategy=strategy)
        assert want.activity == known
        assert_identical(want, got, f"oov/{strategy}")
        # The bulk path echoes per-row activities, not the last chunk's.
        many = batch.recommend_many(
            [frozenset(activity), frozenset(known)],
            k=10, strategy=strategy, chunk_size=1,
        )
        assert [r.activity for r in many] == [known, known]

    def test_activity_is_labels_not_ids(self, figure1_model):
        batch = BatchRecommender(figure1_model)
        result = batch.recommend({"a1"}, k=5)
        assert result.activity == frozenset({"a1"})


class TestParityAcrossMutation:
    def test_parity_survives_add_and_remove(self):
        """The serving paths agree before and after a hot mutation."""
        rng = random.Random(7)
        incremental = IncrementalGoalModel()
        pids = [
            incremental.add_implementation(goal, actions)
            for goal, actions in random_pairs(rng, implementations=30)
        ]
        frozen = incremental.freeze()
        activities = sample_activities(rng, frozen, count=15)
        check_parity(frozen, activities)
        # The cache-invalidating mutation: drop a third, add fresh ones.
        for pid in pids[::3]:
            incremental.remove_implementation(pid)
        for goal, actions in random_pairs(rng, implementations=10):
            incremental.add_implementation(goal, actions)
        mutated = incremental.freeze()
        activities = [
            {a for a in activity if mutated.has_action(a)}
            for activity in activities
        ]
        check_parity(mutated, activities)

    def test_stale_cache_would_be_wrong(self):
        """The invalidation is load-bearing: pre- and post-mutation results
        differ, so serving a stale entry would be observable."""
        incremental = IncrementalGoalModel()
        incremental.add_implementation("salad", {"potatoes", "carrots", "pickles"})
        incremental.add_implementation("mash", {"potatoes", "butter"})
        before = GoalRecommender(incremental.freeze()).recommend(
            {"potatoes"}, k=5
        )
        incremental.remove_implementation(0)
        after = GoalRecommender(incremental.freeze()).recommend(
            {"potatoes"}, k=5
        )
        assert before.actions() != after.actions()
