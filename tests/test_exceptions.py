"""Tests for the exception hierarchy and its catchability contract."""

import pytest

from repro.exceptions import (
    DataError,
    EvaluationError,
    ModelError,
    RecommendationError,
    ReproError,
    StorageError,
    StrategyNotFoundError,
    UnknownActionError,
    UnknownGoalError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            ModelError,
            RecommendationError,
            DataError,
            StorageError,
            EvaluationError,
        ],
    )
    def test_subsystem_errors_are_repro_errors(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_unknown_action_is_model_error(self):
        assert issubclass(UnknownActionError, ModelError)

    def test_unknown_goal_is_model_error(self):
        assert issubclass(UnknownGoalError, ModelError)

    def test_strategy_not_found_is_recommendation_error(self):
        assert issubclass(StrategyNotFoundError, RecommendationError)


class TestMessages:
    def test_unknown_action_carries_action(self):
        error = UnknownActionError("nutmeg")
        assert error.action == "nutmeg"
        assert "nutmeg" in str(error)

    def test_unknown_goal_carries_goal(self):
        error = UnknownGoalError("cake")
        assert error.goal == "cake"

    def test_strategy_not_found_lists_available(self):
        error = StrategyNotFoundError("nope", ("breadth", "focus_cmp"))
        assert error.name == "nope"
        assert "breadth" in str(error)
        assert error.available == ("breadth", "focus_cmp")


class TestOneCatchToRuleThemAll:
    """Every library failure mode is catchable as ReproError."""

    def test_model_layer(self, figure1_model):
        with pytest.raises(ReproError):
            figure1_model.action_id("martian")

    def test_recommendation_layer(self, figure1_recommender):
        with pytest.raises(ReproError):
            figure1_recommender.recommend({"a1"}, k=-1)

    def test_storage_layer(self, tmp_path):
        from repro.storage import JsonLibraryStore

        with pytest.raises(ReproError):
            JsonLibraryStore(tmp_path / "missing.json").load()

    def test_data_layer(self, tmp_path):
        from repro.data import load_dataset

        with pytest.raises(ReproError):
            load_dataset(tmp_path / "missing.json")

    def test_evaluation_layer(self):
        from repro.eval.metrics import pearson

        with pytest.raises(ReproError):
            pearson([1.0], [1.0])
