"""Unit tests for the leaderboard assembly."""

import pytest

from repro.eval import ExperimentHarness
from repro.eval.leaderboard import (
    LeaderboardRow,
    build_leaderboard,
    method_lists,
)
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def harness(fortythree_tiny):
    return ExperimentHarness(fortythree_tiny, k=5, max_users=25, seed=0)


class TestMethodLists:
    def test_goal_strategy_resolved(self, harness):
        lists = method_lists(harness, "breadth")
        assert len(lists) == len(harness.split)

    def test_baseline_resolved(self, harness):
        lists = method_lists(harness, "popularity")
        assert len(lists) == len(harness.split)

    def test_markov_uses_sequences(self, harness):
        lists = method_lists(harness, "markov")
        assert len(lists) == len(harness.split)
        # cached on second call
        assert method_lists(harness, "markov") is lists

    def test_markov_without_sequences_rejected(self, foodmart_tiny):
        harness = ExperimentHarness(foodmart_tiny, k=5, max_users=10, seed=0)
        with pytest.raises(EvaluationError, match="sequences"):
            method_lists(harness, "markov")

    def test_unknown_method_rejected(self, harness):
        with pytest.raises(EvaluationError, match="unknown baseline"):
            method_lists(harness, "astrology")


class TestBuildLeaderboard:
    def test_rows_in_order(self, harness):
        rows = build_leaderboard(harness, ["breadth", "cf_knn"])
        assert [row.method for row in rows] == ["breadth", "cf_knn"]

    def test_metrics_bounded(self, harness):
        (row,) = build_leaderboard(harness, ["breadth"])
        assert 0.0 <= row.avg_tpr <= 1.0
        assert 0.0 <= row.ndcg <= 1.0
        assert 0.0 <= row.mrr <= 1.0
        assert 0.0 <= row.completeness <= 1.0
        assert -1.0 <= row.popularity_corr <= 1.0

    def test_as_list_matches_headers(self, harness):
        (row,) = build_leaderboard(harness, ["breadth"])
        assert len(row.as_list()) == len(LeaderboardRow.headers())
        assert row.as_list()[0] == "breadth"

    def test_empty_methods_rejected(self, harness):
        with pytest.raises(EvaluationError, match="methods"):
            build_leaderboard(harness, [])

    def test_goal_methods_lead_on_tiny_dataset(self, harness):
        rows = build_leaderboard(harness, ["breadth", "cf_knn"])
        by_method = {row.method: row for row in rows}
        assert by_method["breadth"].avg_tpr > by_method["cf_knn"].avg_tpr
