"""Unit tests for the online-learning scenario generator."""

import pytest

from repro.core import AssociationGoalModel, GoalRecommender
from repro.data.schema import validate_dataset
from repro.data.synthetic.learning import LearningConfig, generate_learning


@pytest.fixture(scope="module")
def dataset():
    return generate_learning(LearningConfig.tiny(), seed=2)


class TestGeneration:
    def test_counts(self, dataset):
        config = LearningConfig.tiny()
        stats = dataset.library.stats()
        assert stats.num_goals == config.num_specializations
        assert len(dataset.users) == config.num_students

    def test_validates(self, dataset):
        validate_dataset(dataset)

    def test_deterministic(self):
        a = generate_learning(LearningConfig.tiny(), seed=7)
        b = generate_learning(LearningConfig.tiny(), seed=7)
        assert a.activities() == b.activities()

    def test_track_lengths_bounded(self, dataset):
        config = LearningConfig.tiny()
        for impl in dataset.library:
            assert len(impl) <= config.track_length_max

    def test_core_courses_are_staples(self, dataset):
        """Service courses appear in far more tracks than electives."""
        model = AssociationGoalModel.from_library(dataset.library)
        freqs = model.action_frequencies()
        core = [
            freqs[model.action_id(f"course_{i:04d}")]
            for i in range(LearningConfig.tiny().core_courses)
            if model.has_action(f"course_{i:04d}")
        ]
        electives = [
            value
            for aid, value in freqs.items()
            if model.action_label(aid) not in {
                f"course_{i:04d}"
                for i in range(LearningConfig.tiny().core_courses)
            }
        ]
        assert sum(core) / len(core) > 3 * sum(electives) / len(electives)

    def test_students_have_goals_and_sequences(self, dataset):
        for user in dataset.users[:10]:
            assert user.goals
            assert user.sequence
            assert frozenset(user.sequence) == user.full_activity

    def test_features_cover_courses(self, dataset):
        assert dataset.library.actions() <= set(dataset.item_features)
        for features in dataset.item_features.values():
            assert any(f.startswith("subject_") for f in features)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError, match="subjects"):
            LearningConfig(num_courses=5, num_subjects=10)
        with pytest.raises(ValueError, match="core_courses"):
            LearningConfig(num_courses=10, num_subjects=2, core_courses=10)
        with pytest.raises(ValueError, match="progress"):
            LearningConfig(progress_min=0.9, progress_max=0.2)


class TestRecommendationQuality:
    def test_next_course_advances_specialization(self, dataset):
        """Focus should recommend courses of the student's own tracks."""
        model = AssociationGoalModel.from_library(dataset.library)
        recommender = GoalRecommender(model)
        hits = 0
        for user in dataset.users[:20]:
            result = recommender.recommend(
                user.full_activity, k=3, strategy="focus_cmp"
            )
            goal_space = model.goal_space_labels(user.full_activity)
            if set(user.goals) & goal_space and len(result) > 0:
                hits += 1
        assert hits >= 18  # recommendations exist and goals are reachable

    def test_harness_runs_on_learning_dataset(self, dataset):
        from repro.eval import ExperimentHarness

        harness = ExperimentHarness(dataset, k=5, max_users=15, seed=0)
        lists = harness.run_goal_methods()
        assert all(len(v) == len(harness.split) for v in lists.values())
        assert "content" in harness.baseline_names()
