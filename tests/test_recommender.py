"""Unit tests for the GoalRecommender facade and the strategy registry."""

import pytest

from repro.core import GoalRecommender, PAPER_STRATEGIES
from repro.core.strategies import STRATEGY_REGISTRY, create_strategy
from repro.exceptions import RecommendationError, StrategyNotFoundError


class TestRegistry:
    def test_paper_strategies_registered(self):
        for name in PAPER_STRATEGIES:
            assert name in STRATEGY_REGISTRY

    def test_unknown_strategy_raises_with_choices(self):
        with pytest.raises(StrategyNotFoundError) as excinfo:
            create_strategy("nope")
        assert "breadth" in str(excinfo.value)

    def test_options_forwarded(self):
        strategy = create_strategy("best_match", distance="manhattan")
        assert strategy.distance_name == "manhattan"


class TestRecommend:
    def test_default_strategy_used(self, figure1_recommender):
        result = figure1_recommender.recommend({"a1"}, k=3)
        assert result.strategy == "breadth"

    def test_explicit_strategy(self, figure1_recommender):
        result = figure1_recommender.recommend({"a1"}, k=3, strategy="focus_cl")
        assert result.strategy == "focus_cl"

    def test_k_must_be_positive(self, figure1_recommender):
        with pytest.raises(RecommendationError, match="positive"):
            figure1_recommender.recommend({"a1"}, k=0)

    def test_unknown_actions_ignored(self, figure1_recommender):
        with_noise = figure1_recommender.recommend({"a1", "martian"}, k=3)
        clean = figure1_recommender.recommend({"a1"}, k=3)
        assert with_noise.actions() == clean.actions()

    def test_fully_unknown_activity_yields_empty_list(self, figure1_recommender):
        result = figure1_recommender.recommend({"martian"}, k=3)
        assert len(result) == 0

    def test_result_never_contains_activity(self, figure1_recommender):
        result = figure1_recommender.recommend({"a1", "a2"}, k=10)
        assert not result.action_set() & {"a1", "a2"}

    def test_result_activity_recorded(self, figure1_recommender):
        result = figure1_recommender.recommend({"a1"}, k=2)
        assert result.activity == frozenset({"a1"})

    def test_strategy_options_bypass_cache(self, figure1_recommender):
        default = figure1_recommender.strategy("breadth")
        variant = figure1_recommender.strategy("breadth", variant="count")
        assert default is not variant
        assert figure1_recommender.strategy("breadth") is default


class TestRecommendAll:
    def test_runs_all_paper_strategies(self, figure1_recommender):
        results = figure1_recommender.recommend_all({"a1"}, k=3)
        assert set(results) == set(PAPER_STRATEGIES)
        for name, result in results.items():
            assert result.strategy == name

    def test_subset_of_strategies(self, figure1_recommender):
        results = figure1_recommender.recommend_all(
            {"a1"}, k=3, strategies=("breadth",)
        )
        assert list(results) == ["breadth"]


class TestExplain:
    def test_evidence_for_candidate(self, recipe_model):
        recommender = GoalRecommender(recipe_model)
        evidence = recommender.explain({"potatoes", "carrots"}, "pickles")
        assert list(evidence) == ["olivier salad"]
        assert evidence["olivier salad"] == [
            frozenset({"potatoes", "carrots", "pickles"})
        ]

    def test_multi_goal_evidence(self, recipe_model):
        recommender = GoalRecommender(recipe_model)
        evidence = recommender.explain({"potatoes", "carrots"}, "nutmeg")
        assert set(evidence) == {"mashed potatoes", "pan-fried carrots"}

    def test_unreachable_action_has_no_evidence(self, recipe_model):
        recommender = GoalRecommender(recipe_model)
        # flour is only in carrot cake, reachable through carrots - so pick
        # an activity that cannot reach it.
        evidence = recommender.explain({"pickles"}, "flour")
        assert evidence == {}


class TestCsrRouting:
    """The ``use_csr`` policy: routing is a performance choice, never a
    results choice."""

    @pytest.mark.parametrize("strategy", PAPER_STRATEGIES)
    def test_csr_and_scalar_agree(self, figure1_model, strategy):
        scalar = GoalRecommender(figure1_model, use_csr=False)
        csr = GoalRecommender(figure1_model, use_csr=True)
        for activity in ({"a1"}, {"a1", "a2"}, {"a2", "a6"}, set()):
            assert csr.recommend(activity, k=10, strategy=strategy) == (
                scalar.recommend(activity, k=10, strategy=strategy)
            )

    def test_use_csr_false_never_builds_engine(self, figure1_model):
        recommender = GoalRecommender(figure1_model, use_csr=False)
        assert recommender.csr_engine() is None

    def test_bare_model_defaults_to_scalar(self, figure1_model):
        # Auto mode only routes when the model exposes a generation-keyed
        # engine; a bare AssociationGoalModel does not.
        recommender = GoalRecommender(figure1_model)
        assert recommender.csr_engine() is None

    def test_use_csr_true_builds_private_engine_once(self, figure1_model):
        recommender = GoalRecommender(figure1_model, use_csr=True)
        engine = recommender.csr_engine()
        assert engine is not None
        assert recommender.csr_engine() is engine

    def test_cached_view_auto_routes(self, figure1_model):
        from repro.core.caching import CachedModelView

        view = CachedModelView(figure1_model)
        recommender = GoalRecommender(view)
        engine = recommender.csr_engine()
        assert engine is not None
        # The engine belongs to the view (generation-keyed), not to the
        # facade: a second facade over the same view shares it.
        assert GoalRecommender(view).csr_engine() is engine

    def test_options_bypass_csr(self, figure1_model):
        csr = GoalRecommender(figure1_model, use_csr=True)
        chosen = csr.strategy("breadth")
        assert csr._runner("breadth", chosen, {"x": 1}) is chosen
        assert csr._runner("breadth", chosen, {}) is not chosen

    def test_with_model_copies_policy(self, figure1_model, recipe_model):
        recommender = GoalRecommender(figure1_model, use_csr=True)
        rebound = recommender.with_model(recipe_model)
        assert rebound.use_csr is True
        assert rebound.csr_engine() is not None

    def test_recommend_all_parity(self, figure1_model):
        scalar = GoalRecommender(figure1_model, use_csr=False)
        csr = GoalRecommender(figure1_model, use_csr=True)
        assert csr.recommend_all({"a1"}, k=5) == scalar.recommend_all(
            {"a1"}, k=5
        )


class TestDeadlineSpaceMemo:
    """A deadline-carrying request over an uncached model runs each space
    query once (S3): the pipeline memo is handed to the strategy."""

    class _CountingModel:
        def __init__(self, model):
            self._model = model
            self.implementation_space_calls = 0

        def __getattr__(self, name):
            return getattr(self._model, name)

        def implementation_space(self, activity):
            self.implementation_space_calls += 1
            return self._model.implementation_space(activity)

    def test_space_queried_once_under_deadline(self, figure1_model):
        from repro.resilience.deadlines import Deadline, deadline_scope

        spy = self._CountingModel(figure1_model)
        recommender = GoalRecommender(spy, use_csr=False)
        with deadline_scope(Deadline.after_ms(10_000)):
            result = recommender.recommend({"a1"}, k=5, strategy="breadth")
        assert result.actions()
        assert spy.implementation_space_calls == 1

    def test_no_deadline_no_extra_queries(self, figure1_model):
        spy = self._CountingModel(figure1_model)
        recommender = GoalRecommender(spy, use_csr=False)
        recommender.recommend({"a1"}, k=5, strategy="breadth")
        # Without a deadline the facade never drives the pipeline itself.
        assert spy.implementation_space_calls <= 1
