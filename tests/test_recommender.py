"""Unit tests for the GoalRecommender facade and the strategy registry."""

import pytest

from repro.core import GoalRecommender, PAPER_STRATEGIES
from repro.core.strategies import STRATEGY_REGISTRY, create_strategy
from repro.exceptions import RecommendationError, StrategyNotFoundError


class TestRegistry:
    def test_paper_strategies_registered(self):
        for name in PAPER_STRATEGIES:
            assert name in STRATEGY_REGISTRY

    def test_unknown_strategy_raises_with_choices(self):
        with pytest.raises(StrategyNotFoundError) as excinfo:
            create_strategy("nope")
        assert "breadth" in str(excinfo.value)

    def test_options_forwarded(self):
        strategy = create_strategy("best_match", distance="manhattan")
        assert strategy.distance_name == "manhattan"


class TestRecommend:
    def test_default_strategy_used(self, figure1_recommender):
        result = figure1_recommender.recommend({"a1"}, k=3)
        assert result.strategy == "breadth"

    def test_explicit_strategy(self, figure1_recommender):
        result = figure1_recommender.recommend({"a1"}, k=3, strategy="focus_cl")
        assert result.strategy == "focus_cl"

    def test_k_must_be_positive(self, figure1_recommender):
        with pytest.raises(RecommendationError, match="positive"):
            figure1_recommender.recommend({"a1"}, k=0)

    def test_unknown_actions_ignored(self, figure1_recommender):
        with_noise = figure1_recommender.recommend({"a1", "martian"}, k=3)
        clean = figure1_recommender.recommend({"a1"}, k=3)
        assert with_noise.actions() == clean.actions()

    def test_fully_unknown_activity_yields_empty_list(self, figure1_recommender):
        result = figure1_recommender.recommend({"martian"}, k=3)
        assert len(result) == 0

    def test_result_never_contains_activity(self, figure1_recommender):
        result = figure1_recommender.recommend({"a1", "a2"}, k=10)
        assert not result.action_set() & {"a1", "a2"}

    def test_result_activity_recorded(self, figure1_recommender):
        result = figure1_recommender.recommend({"a1"}, k=2)
        assert result.activity == frozenset({"a1"})

    def test_strategy_options_bypass_cache(self, figure1_recommender):
        default = figure1_recommender.strategy("breadth")
        variant = figure1_recommender.strategy("breadth", variant="count")
        assert default is not variant
        assert figure1_recommender.strategy("breadth") is default


class TestRecommendAll:
    def test_runs_all_paper_strategies(self, figure1_recommender):
        results = figure1_recommender.recommend_all({"a1"}, k=3)
        assert set(results) == set(PAPER_STRATEGIES)
        for name, result in results.items():
            assert result.strategy == name

    def test_subset_of_strategies(self, figure1_recommender):
        results = figure1_recommender.recommend_all(
            {"a1"}, k=3, strategies=("breadth",)
        )
        assert list(results) == ["breadth"]


class TestExplain:
    def test_evidence_for_candidate(self, recipe_model):
        recommender = GoalRecommender(recipe_model)
        evidence = recommender.explain({"potatoes", "carrots"}, "pickles")
        assert list(evidence) == ["olivier salad"]
        assert evidence["olivier salad"] == [
            frozenset({"potatoes", "carrots", "pickles"})
        ]

    def test_multi_goal_evidence(self, recipe_model):
        recommender = GoalRecommender(recipe_model)
        evidence = recommender.explain({"potatoes", "carrots"}, "nutmeg")
        assert set(evidence) == {"mashed potatoes", "pan-fried carrots"}

    def test_unreachable_action_has_no_evidence(self, recipe_model):
        recommender = GoalRecommender(recipe_model)
        # flour is only in carrot cake, reachable through carrots - so pick
        # an activity that cannot reach it.
        evidence = recommender.explain({"pickles"}, "flour")
        assert evidence == {}
