"""Integration tests: the full pipeline on both scenarios.

These tests exercise generation -> indexing -> split -> all recommenders ->
metrics in one flow and assert the *qualitative* findings the paper reports,
at tiny scale (the benchmarks re-run them at larger scale and print the
actual tables).
"""

import pytest

from repro.core import AssociationGoalModel, GoalRecommender, PAPER_STRATEGIES
from repro.data import (
    FoodMartConfig,
    FortyThreeConfig,
    generate_foodmart,
    generate_fortythree,
)
from repro.eval import (
    ExperimentHarness,
    average_list_overlap,
    average_true_positive_rate,
    goal_completeness_after,
    popularity_correlation,
    usefulness_summary,
)
from repro.eval.timing import ScalePoint, run_scaling_study
from repro.storage import SqliteLibraryStore
from repro.text import GoalStory, extract_implementations


@pytest.fixture(scope="module")
def harness_43t():
    dataset = generate_fortythree(FortyThreeConfig.tiny(), seed=1)
    harness = ExperimentHarness(dataset, k=10, max_users=40, seed=0)
    harness.run_goal_methods()
    harness.run_baselines(["cf_knn", "popularity"])
    return harness


class TestPipeline43T:
    def test_every_method_answers_every_user(self, harness_43t):
        for method in harness_43t.result.methods():
            assert len(harness_43t.result.lists(method)) == len(harness_43t.split)

    def test_goal_methods_differ_from_cf(self, harness_43t):
        """Direction of Table 2: goal-based lists != CF lists."""
        breadth = harness_43t.result.lists("breadth")
        cf = harness_43t.result.lists("cf_knn")
        assert average_list_overlap(breadth, cf) < 0.9

    def test_cf_more_popularity_correlated_than_goal_methods(self, harness_43t):
        """Direction of Table 3."""
        activities = harness_43t.observed_activities()
        cf_corr = popularity_correlation(
            activities, harness_43t.result.lists("cf_knn")
        )
        breadth_corr = popularity_correlation(
            activities, harness_43t.result.lists("breadth")
        )
        assert cf_corr > breadth_corr

    def test_goal_methods_improve_goal_completeness(self, harness_43t):
        """Direction of Table 4: goal-based beats CF on usefulness."""
        model = harness_43t.model
        rows = {}
        for method in ("breadth", "cf_knn"):
            summaries = [
                goal_completeness_after(
                    model, user.observed, rec, goals=user.user.goals
                )
                for user, rec in zip(
                    harness_43t.split, harness_43t.result.lists(method)
                )
            ]
            rows[method] = usefulness_summary(summaries)
        assert rows["breadth"].avg_avg > rows["cf_knn"].avg_avg

    def test_goal_methods_recover_hidden_actions(self, harness_43t):
        """Direction of Figure 4: goal-based TPR is meaningfully positive."""
        tpr = average_true_positive_rate(
            harness_43t.result.lists("breadth"), harness_43t.hidden_sets()
        )
        assert tpr > 0.1


class TestPipelineFoodmart:
    @pytest.fixture(scope="class")
    def harness(self):
        dataset = generate_foodmart(FoodMartConfig.tiny(), seed=0)
        harness = ExperimentHarness(dataset, k=10, max_users=30, seed=0)
        harness.run_goal_methods()
        harness.run_baselines(["content", "cf_knn"])
        return harness

    def test_content_lists_most_self_similar(self, harness):
        """Direction of Table 5: content-based lists are most homogeneous."""
        from repro.eval import average_pairwise_similarity

        similarity = harness.content_similarity()
        content = average_pairwise_similarity(
            harness.result.lists("content"), similarity
        )
        breadth = average_pairwise_similarity(
            harness.result.lists("breadth"), similarity
        )
        assert content.average > breadth.average

    def test_goal_based_overlap_among_themselves(self, harness):
        """Direction of Table 6: Breadth and Best Match overlap heavily."""
        breadth = harness.result.lists("breadth")
        best_match = harness.result.lists("best_match")
        focus = harness.result.lists("focus_cmp")
        assert average_list_overlap(breadth, best_match) > average_list_overlap(
            focus, harness.result.lists("cf_knn")
        )


class TestScalingStudy:
    def test_rows_cover_all_pairs(self):
        scales = (
            ScalePoint("S", num_products=60, num_recipes=100, num_carts=10),
            ScalePoint("M", num_products=60, num_recipes=300, num_carts=10),
        )
        rows = run_scaling_study(scales=scales, k=5, seed=0)
        assert len(rows) == 2 * len(PAPER_STRATEGIES)
        assert all(row.mean_seconds > 0 for row in rows)

    def test_connectivity_grows_with_density(self):
        scales = (
            ScalePoint("S", num_products=60, num_recipes=100, num_carts=5),
            ScalePoint("M", num_products=60, num_recipes=400, num_carts=5),
        )
        rows = run_scaling_study(scales=scales, k=5, seed=0)
        by_scale = {row.scale: row.connectivity for row in rows}
        assert by_scale["M"] > by_scale["S"]


class TestTextToRecommendation:
    def test_extracted_library_drives_recommendations(self):
        """End-to-end: plain text -> library -> model -> recommendation."""
        stories = [
            GoalStory("get fit", "Join a gym. Run every morning. Drink water."),
            GoalStory("lose weight", "I drank more water and stopped eating sugar."),
            GoalStory("save money", "Stop eating out; cook at home."),
        ]
        library = extract_implementations(stories)
        model = AssociationGoalModel.from_library(library)
        recommender = GoalRecommender(model)
        result = recommender.recommend({"drink water"}, k=5, strategy="breadth")
        assert len(result) > 0
        goals = model.goal_space_labels({"drink water"})
        assert "get fit" in goals


class TestStorageInPipeline:
    def test_sqlite_roundtrip_preserves_recommendations(self, tmp_path):
        dataset = generate_fortythree(FortyThreeConfig.tiny(), seed=1)
        original_model = AssociationGoalModel.from_library(dataset.library)
        with SqliteLibraryStore(tmp_path / "lib.db") as store:
            store.save(dataset.library)
            restored_model = AssociationGoalModel.from_library(store.load())
        activity = dataset.users[0].full_activity
        original = GoalRecommender(original_model).recommend(activity, k=10)
        restored = GoalRecommender(restored_model).recommend(activity, k=10)
        assert original.actions() == restored.actions()
