"""Unit tests for the parameter-sweep helpers."""

import pytest

from repro.eval import ExperimentHarness
from repro.eval.sweeps import SweepRow, sweep_k, sweep_observed_fraction
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def harness(fortythree_tiny):
    return ExperimentHarness(fortythree_tiny, k=10, max_users=25, seed=0)


class TestSweepK:
    def test_rows_cover_grid(self, harness):
        rows = sweep_k(harness, k_values=(1, 5), methods=("breadth",))
        assert len(rows) == 2
        assert {row.value for row in rows} == {1.0, 5.0}

    def test_completeness_monotone_in_k(self, harness):
        """More recommendations can only complete goals further."""
        rows = sweep_k(harness, k_values=(1, 5, 10), methods=("breadth",))
        values = [row.avg_completeness for row in rows]
        assert values == sorted(values)

    def test_k_beyond_harness_rejected(self, harness):
        with pytest.raises(EvaluationError, match="top-10"):
            sweep_k(harness, k_values=(50,))

    def test_empty_grid_rejected(self, harness):
        with pytest.raises(EvaluationError):
            sweep_k(harness, k_values=())

    def test_baseline_methods_allowed(self, harness):
        rows = sweep_k(harness, k_values=(5,), methods=("cf_knn",))
        assert rows[0].method == "cf_knn"


class TestSweepObservedFraction:
    def test_rows_cover_grid(self, fortythree_tiny):
        rows = sweep_observed_fraction(
            fortythree_tiny,
            fractions=(0.3, 0.5),
            methods=("breadth",),
            max_users=20,
        )
        assert len(rows) == 2
        assert all(isinstance(row, SweepRow) for row in rows)

    def test_more_evidence_helps_completeness(self, fortythree_tiny):
        """Seeing more of the activity should not hurt goal completeness."""
        rows = sweep_observed_fraction(
            fortythree_tiny,
            fractions=(0.1, 0.7),
            methods=("focus_cmp",),
            max_users=30,
        )
        low, high = rows[0], rows[1]
        assert high.avg_completeness >= low.avg_completeness

    def test_empty_grid_rejected(self, fortythree_tiny):
        with pytest.raises(EvaluationError):
            sweep_observed_fraction(fortythree_tiny, fractions=())
