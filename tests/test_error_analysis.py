"""Unit tests for the bucketed error analysis."""

import pytest

from repro.core.entities import RecommendationList, ScoredAction
from repro.data.schema import GeneratedUser
from repro.eval.error_analysis import (
    Bucket,
    bucketed_metric,
    compare_methods_bucketed,
    goal_count,
    make_implementation_space_size,
    observed_size,
)
from repro.eval.protocol import UserSplit
from repro.exceptions import EvaluationError


def split_user(num_observed, num_goals=1):
    observed = frozenset(f"o{i}" for i in range(num_observed))
    hidden = frozenset({"hidden"})
    return UserSplit(
        user=GeneratedUser(
            user_id=f"u{num_observed}",
            full_activity=observed | hidden,
            goals=tuple(f"g{i}" for i in range(num_goals)),
        ),
        observed=observed,
        hidden=hidden,
    )


def rec(*actions):
    return RecommendationList(
        "t", tuple(ScoredAction(a, 1.0) for a in actions)
    )


def hit_metric(user, recommendation):
    return 1.0 if recommendation.action_set() & user.hidden else 0.0


class TestProperties:
    def test_observed_size(self):
        assert observed_size(split_user(4)) == 4.0

    def test_goal_count(self):
        assert goal_count(split_user(2, num_goals=3)) == 3.0

    def test_implementation_space_size(self, figure1_model):
        property_fn = make_implementation_space_size(figure1_model)
        user = UserSplit(
            user=GeneratedUser(
                user_id="u", full_activity=frozenset({"a1", "zz"})
            ),
            observed=frozenset({"a1"}),
            hidden=frozenset({"zz"}),
        )
        assert property_fn(user) == 4.0  # a1 is in 4 implementations


class TestBucketedMetric:
    def test_buckets_partition_users(self):
        users = [split_user(n) for n in (1, 2, 5, 9)]
        lists = [rec("hidden"), rec("x"), rec("hidden"), rec("x")]
        buckets = bucketed_metric(
            users, lists, hit_metric, observed_size, bin_edges=(2, 10)
        )
        assert sum(bucket.num_users for bucket in buckets) == 4

    def test_bucket_means(self):
        users = [split_user(1), split_user(2), split_user(8)]
        lists = [rec("hidden"), rec("x"), rec("hidden")]
        buckets = bucketed_metric(
            users, lists, hit_metric, observed_size, bin_edges=(2, 10)
        )
        small, large = buckets
        assert small.mean_metric == pytest.approx(0.5)  # users 1 and 2
        assert large.mean_metric == 1.0

    def test_values_above_last_edge_in_last_bucket(self):
        users = [split_user(100)]
        buckets = bucketed_metric(
            users, [rec("hidden")], hit_metric, observed_size, bin_edges=(2, 10)
        )
        assert buckets[-1].num_users == 1

    def test_empty_buckets_omitted(self):
        users = [split_user(1)]
        buckets = bucketed_metric(
            users, [rec("x")], hit_metric, observed_size, bin_edges=(2, 10, 50)
        )
        assert len(buckets) == 1

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(EvaluationError, match="mismatched"):
            bucketed_metric([split_user(1)], [], hit_metric, observed_size, (1,))

    def test_no_users_rejected(self):
        with pytest.raises(EvaluationError, match="no users"):
            bucketed_metric([], [], hit_metric, observed_size, (1,))

    def test_no_edges_rejected(self):
        with pytest.raises(EvaluationError, match="bin_edges"):
            bucketed_metric([split_user(1)], [rec()], hit_metric, observed_size, ())

    def test_bucket_label(self):
        assert Bucket(lower=2, upper=10, num_users=3, mean_metric=0.5).label() == "2-10"
        assert Bucket(lower=3, upper=3, num_users=1, mean_metric=0.0).label() == "3"


class TestCompareMethods:
    def test_rows_shape(self):
        users = [split_user(1), split_user(5)]
        method_lists = {
            "good": [rec("hidden"), rec("hidden")],
            "bad": [rec("x"), rec("x")],
        }
        rows = compare_methods_bucketed(
            users, method_lists, hit_metric, observed_size, bin_edges=(2, 10)
        )
        # Columns: label, n, bad, good (sorted method names).
        for row in rows:
            assert len(row) == 4
            assert row[3] == 1.0  # 'good' always hits
            assert row[2] == 0.0

    def test_empty_methods_rejected(self):
        with pytest.raises(EvaluationError, match="no methods"):
            compare_methods_bucketed([], {}, hit_metric, observed_size, (1,))

    def test_on_harness_outputs(self, fortythree_tiny):
        from repro.eval import ExperimentHarness
        from repro.eval.repeated import tpr_metric

        harness = ExperimentHarness(fortythree_tiny, k=5, max_users=30, seed=0)
        method_lists = {
            "breadth": harness.run_goal_method("breadth"),
            "cf_knn": harness.run_baseline("cf_knn"),
        }
        rows = compare_methods_bucketed(
            list(harness.split),
            method_lists,
            tpr_metric,
            goal_count,
            bin_edges=(1, 2, 6),
        )
        assert rows
        assert all(isinstance(row[1], int) for row in rows)
