"""Unit tests for the cold-goal evaluation protocol."""

import pytest

from repro.core import AssociationGoalModel, GoalRecommender, ImplementationLibrary
from repro.data.schema import Dataset, GeneratedUser
from repro.eval.cold_goal import (
    ColdGoalCase,
    build_cold_goal_cases,
    evaluate_cold_goal,
)
from repro.exceptions import EvaluationError


@pytest.fixture
def bridged_dataset():
    """Two goals per user sharing the bridge action 'shared'."""
    library = ImplementationLibrary()
    library.add_pair("goal_a", {"shared", "a1", "a2"})
    library.add_pair("goal_b", {"shared", "b1", "b2"})
    library.add_pair("goal_c", {"c1", "c2"})
    users = [
        GeneratedUser(
            user_id="u_two_goals",
            full_activity=frozenset({"shared", "a1", "a2", "b1", "b2"}),
            goals=("goal_a", "goal_b"),
        ),
        GeneratedUser(
            user_id="u_single_goal",
            full_activity=frozenset({"c1", "c2"}),
            goals=("goal_c",),
        ),
    ]
    return Dataset(name="bridged", library=library, users=users)


class TestCaseConstruction:
    def test_single_goal_users_skipped(self, bridged_dataset):
        model = AssociationGoalModel.from_library(bridged_dataset.library)
        cases = build_cold_goal_cases(bridged_dataset, model, seed=0)
        assert [case.user_id for case in cases] == ["u_two_goals"]

    def test_cold_actions_exclusive_to_cold_goal(self, bridged_dataset):
        model = AssociationGoalModel.from_library(bridged_dataset.library)
        (case,) = build_cold_goal_cases(bridged_dataset, model, seed=0)
        # 'shared' serves both goals, so it can never be a cold action.
        assert "shared" not in case.cold_actions
        assert case.cold_actions <= {"a1", "a2", "b1", "b2"}

    def test_visible_plus_cold_partition_activity(self, bridged_dataset):
        model = AssociationGoalModel.from_library(bridged_dataset.library)
        (case,) = build_cold_goal_cases(bridged_dataset, model, seed=0)
        user = bridged_dataset.users[0]
        assert case.visible | case.cold_actions == user.full_activity
        assert not case.visible & case.cold_actions

    def test_deterministic_given_seed(self, bridged_dataset):
        model = AssociationGoalModel.from_library(bridged_dataset.library)
        a = build_cold_goal_cases(bridged_dataset, model, seed=5)
        b = build_cold_goal_cases(bridged_dataset, model, seed=5)
        assert a == b

    def test_no_eligible_user_raises(self):
        library = ImplementationLibrary()
        library.add_pair("g", {"x", "y"})
        dataset = Dataset(
            name="solo",
            library=library,
            users=[
                GeneratedUser(
                    user_id="u", full_activity=frozenset({"x"}), goals=("g",)
                )
            ],
        )
        model = AssociationGoalModel.from_library(library)
        with pytest.raises(EvaluationError, match="no eligible"):
            build_cold_goal_cases(dataset, model)

    def test_max_users_cap(self, fortythree_tiny):
        model = AssociationGoalModel.from_library(fortythree_tiny.library)
        cases = build_cold_goal_cases(fortythree_tiny, model, seed=0, max_users=3)
        assert len(cases) == 3


class TestEvaluation:
    def test_goal_recommender_bridges_to_cold_goal(self, bridged_dataset):
        """The bridge action makes the cold goal reachable for goal-based
        methods even with all its exclusive actions hidden."""
        model = AssociationGoalModel.from_library(bridged_dataset.library)
        (case,) = build_cold_goal_cases(bridged_dataset, model, seed=0)
        recommender = GoalRecommender(model)
        lists = [recommender.recommend(case.visible, k=4, strategy="breadth")]
        result = evaluate_cold_goal("breadth", lists, [case])
        assert result.reach_rate == 1.0
        assert result.mean_recovered == 1.0

    def test_mismatched_lengths_raise(self, bridged_dataset):
        with pytest.raises(EvaluationError, match="lists"):
            evaluate_cold_goal("m", [], [
                ColdGoalCase(
                    user_id="u",
                    visible=frozenset({"x"}),
                    cold_goal="g",
                    cold_actions=frozenset({"y"}),
                )
            ])

    def test_empty_cases_raise(self):
        with pytest.raises(EvaluationError, match="no cold-goal"):
            evaluate_cold_goal("m", [], [])

    def test_on_generated_dataset(self, fortythree_tiny):
        """Goal-based methods reach cold goals far more often than chance."""
        model = AssociationGoalModel.from_library(fortythree_tiny.library)
        cases = build_cold_goal_cases(fortythree_tiny, model, seed=0, max_users=25)
        recommender = GoalRecommender(model)
        lists = [
            recommender.recommend(case.visible, k=10, strategy="breadth")
            for case in cases
        ]
        result = evaluate_cold_goal("breadth", lists, cases)
        assert 0.0 <= result.mean_recovered <= 1.0
        assert result.reach_rate >= 0.0  # smoke: protocol runs end to end
