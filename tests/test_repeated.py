"""Unit tests for the repeated-split evaluation."""

import pytest

from repro.eval.repeated import (
    RepeatedResult,
    repeated_evaluation,
    tpr_metric,
)
from repro.exceptions import EvaluationError


class TestRepeatedEvaluation:
    @pytest.fixture(scope="class")
    def results(self, request):
        fortythree_tiny = request.getfixturevalue("fortythree_tiny")
        return repeated_evaluation(
            fortythree_tiny,
            methods=("breadth", "cf_knn"),
            seeds=(0, 1),
            k=5,
            max_users=25,
        )

    def test_one_result_per_method_in_order(self, results):
        assert [r.method for r in results] == ["breadth", "cf_knn"]

    def test_per_split_means_recorded(self, results):
        for result in results:
            assert len(result.per_split_means) == 2

    def test_interval_brackets_mean(self, results):
        for result in results:
            assert result.interval.lower <= result.mean <= result.interval.upper

    def test_goal_method_beats_cf_across_splits(self, results):
        by_method = {r.method: r for r in results}
        assert by_method["breadth"].mean > by_method["cf_knn"].mean

    def test_custom_metric(self, fortythree_tiny):
        def list_length(user, rec):
            return float(len(rec))

        results = repeated_evaluation(
            fortythree_tiny,
            methods=("breadth",),
            metric=list_length,
            seeds=(0,),
            k=5,
            max_users=10,
        )
        assert 0.0 < results[0].mean <= 5.0

    def test_empty_seeds_rejected(self, fortythree_tiny):
        with pytest.raises(EvaluationError, match="seeds"):
            repeated_evaluation(fortythree_tiny, seeds=())

    def test_empty_methods_rejected(self, fortythree_tiny):
        with pytest.raises(EvaluationError, match="methods"):
            repeated_evaluation(fortythree_tiny, methods=(), seeds=(0,))

    def test_tpr_metric_definition(self, fortythree_tiny):
        from repro.core.entities import RecommendationList, ScoredAction
        from repro.data.schema import GeneratedUser
        from repro.eval.protocol import UserSplit

        user = UserSplit(
            user=GeneratedUser(
                user_id="u", full_activity=frozenset({"a", "b", "c"})
            ),
            observed=frozenset({"a"}),
            hidden=frozenset({"b", "c"}),
        )
        rec = RecommendationList(
            "t", (ScoredAction("b", 1.0), ScoredAction("z", 0.5))
        )
        assert tpr_metric(user, rec) == 0.5

    def test_result_dataclass(self, results):
        assert all(isinstance(r, RepeatedResult) for r in results)
