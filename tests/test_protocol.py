"""Unit tests for the 30%-observed evaluation split."""

import pytest

from repro.data.schema import Dataset, GeneratedUser
from repro.core import ImplementationLibrary
from repro.eval import make_split
from repro.exceptions import EvaluationError


def tiny_dataset(activity_sizes):
    library = ImplementationLibrary()
    library.add_pair("g", {"a0", "a1"})
    users = [
        GeneratedUser(
            user_id=f"u{i}",
            full_activity=frozenset(f"a{j}" for j in range(size)),
        )
        for i, size in enumerate(activity_sizes)
    ]
    return Dataset(name="tiny", library=library, users=users)


class TestSplitShape:
    def test_partition_is_exact(self, fortythree_tiny):
        split = make_split(fortythree_tiny, seed=0)
        for user in split:
            assert user.observed | user.hidden == user.user.full_activity
            assert not user.observed & user.hidden

    def test_both_sides_nonempty(self, fortythree_tiny):
        split = make_split(fortythree_tiny, seed=0)
        for user in split:
            assert user.observed
            assert user.hidden

    def test_observed_fraction_respected(self):
        dataset = tiny_dataset([10] * 50)
        split = make_split(dataset, observed_fraction=0.3, seed=0)
        for user in split:
            assert len(user.observed) == 3

    def test_small_activities_keep_one_each(self):
        dataset = tiny_dataset([2, 3])
        split = make_split(dataset, observed_fraction=0.3, seed=0)
        for user in split:
            assert len(user.observed) >= 1
            assert len(user.hidden) >= 1

    def test_singleton_users_skipped(self):
        dataset = tiny_dataset([1, 5])
        split = make_split(dataset, seed=0)
        assert len(split) == 1

    def test_max_users_cap(self, fortythree_tiny):
        split = make_split(fortythree_tiny, seed=0, max_users=5)
        assert len(split) == 5


class TestDeterminism:
    def test_same_seed_same_split(self, fortythree_tiny):
        a = make_split(fortythree_tiny, seed=3)
        b = make_split(fortythree_tiny, seed=3)
        assert [u.observed for u in a] == [u.observed for u in b]

    def test_different_seed_different_split(self, fortythree_tiny):
        a = make_split(fortythree_tiny, seed=3)
        b = make_split(fortythree_tiny, seed=4)
        assert [u.observed for u in a] != [u.observed for u in b]


class TestValidation:
    def test_degenerate_fraction_rejected(self, fortythree_tiny):
        with pytest.raises(EvaluationError, match="strictly between"):
            make_split(fortythree_tiny, observed_fraction=0.0)
        with pytest.raises(EvaluationError, match="strictly between"):
            make_split(fortythree_tiny, observed_fraction=1.0)

    def test_out_of_range_fraction_rejected(self, fortythree_tiny):
        with pytest.raises(ValueError):
            make_split(fortythree_tiny, observed_fraction=1.5)

    def test_min_activity_below_two_rejected(self, fortythree_tiny):
        with pytest.raises(EvaluationError, match="at least 2"):
            make_split(fortythree_tiny, min_activity=1)

    def test_no_eligible_user_raises(self):
        dataset = tiny_dataset([1, 1])
        with pytest.raises(EvaluationError, match="no user"):
            make_split(dataset)

    def test_observed_activities_ordering(self, fortythree_tiny):
        split = make_split(fortythree_tiny, seed=0)
        assert split.observed_activities() == [u.observed for u in split]
