"""Extraction quality on synthetic labelled stories."""

import pytest

from repro.data.synthetic.stories import (
    ExtractionQuality,
    canonical_action,
    evaluate_extractor,
    generate_labelled_stories,
)
from repro.text.extraction import ActionExtractor


class TestGenerator:
    def test_count_and_labels(self):
        stories = generate_labelled_stories(count=10, seed=0)
        assert len(stories) == 10
        for labelled in stories:
            assert labelled.true_actions
            assert labelled.story.text

    def test_deterministic(self):
        a = generate_labelled_stories(count=5, seed=3)
        b = generate_labelled_stories(count=5, seed=3)
        assert [s.story.text for s in a] == [s.story.text for s in b]

    def test_gold_labels_are_canonical(self):
        assert canonical_action("join", "a gym") == "join gym"
        assert canonical_action("drink", "more water") == "drink water"

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            generate_labelled_stories(count=0)
        with pytest.raises(ValueError):
            generate_labelled_stories(distractors_per_story=-1)

    def test_actions_per_story_respected(self):
        stories = generate_labelled_stories(
            count=5, actions_per_story=4, seed=1
        )
        for labelled in stories:
            assert len(labelled.true_actions) == 4


class TestEvaluation:
    def test_extractor_quality_high_on_clean_corpus(self):
        stories = generate_labelled_stories(count=40, seed=0)
        quality = evaluate_extractor(stories)
        assert quality.recall > 0.8
        assert quality.precision > 0.8
        assert quality.f1 > 0.8

    def test_counts_consistent(self):
        stories = generate_labelled_stories(count=20, seed=2)
        quality = evaluate_extractor(stories)
        total_gold = sum(len(s.true_actions) for s in stories)
        assert quality.true_positives + quality.false_negatives == total_gold

    def test_degenerate_extractor_scores_zero(self):
        """An extractor with an empty lexicon finds nothing."""

        class NullExtractor(ActionExtractor):
            def extract_from_step(self, step):
                return None

        stories = generate_labelled_stories(count=5, seed=0)
        quality = evaluate_extractor(stories, extractor=NullExtractor())
        assert quality.recall == 0.0
        assert quality.f1 == 0.0

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            evaluate_extractor([])

    def test_quality_is_dataclass(self):
        stories = generate_labelled_stories(count=3, seed=0)
        quality = evaluate_extractor(stories)
        assert isinstance(quality, ExtractionQuality)
        assert 0.0 <= quality.precision <= 1.0
        assert 0.0 <= quality.recall <= 1.0
