"""Unit tests: the ``repro-bench`` regression harness.

Covers the report schema validator, the baseline comparator's three gating
kinds (exact / relative / info), and the runner's exit codes — including
the acceptance scenario: a degraded report exits non-zero against the
committed baseline while the true run exits 0.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro import obs
from repro.bench import (
    SCHEMA_VERSION,
    Metric,
    build_report,
    compare_reports,
    get_suite,
    suite_names,
    validate_report,
)
from repro.bench.runner import main

BASELINE_PATH = Path(__file__).resolve().parents[1] / "benchmarks" / "baseline.json"


@pytest.fixture(autouse=True)
def _obs_reset():
    """Suite benchmarks toggle observability; leave nothing behind."""
    obs.disable()
    yield
    obs.disable()


@pytest.fixture(scope="module")
def report():
    """One full smoke-suite run, shared across this module's tests."""
    built = build_report("smoke")
    obs.disable()
    return built


@pytest.fixture(scope="module")
def baseline():
    return json.loads(BASELINE_PATH.read_text(encoding="utf-8"))


class TestSuiteDeclaration:
    def test_smoke_suite_is_declared(self):
        assert "smoke" in suite_names()
        specs = get_suite("smoke")
        assert {spec.name for spec in specs} >= {
            "recommend_strategies", "association_spaces",
            "evaluation_protocol", "space_cache", "obs_overhead",
        }

    def test_unknown_suite_raises(self):
        with pytest.raises(KeyError):
            get_suite("nope")

    def test_metric_dataclass_serializes(self):
        metric = Metric(value=3.0, kind="relative", tolerance=0.1)
        assert metric.to_dict() == {
            "value": 3.0, "kind": "relative", "tolerance": 0.1,
        }


class TestReportSchema:
    def test_fresh_report_is_schema_valid(self, report):
        assert validate_report(report) == []
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["suite"] == "smoke"
        assert set(report["environment"]) == {
            "python", "platform", "implementation",
        }

    def test_committed_baseline_is_schema_valid(self, baseline):
        assert validate_report(baseline) == []

    def test_non_object_rejected(self):
        assert validate_report([]) != []
        assert validate_report(None) != []

    def test_missing_fields_reported(self):
        problems = validate_report({"schema_version": SCHEMA_VERSION})
        assert any("suite" in p for p in problems)
        assert any("benchmarks" in p for p in problems)

    def test_bool_is_not_a_metric_value(self, report):
        degraded = copy.deepcopy(report)
        degraded["benchmarks"][0]["metrics"]["wall_seconds"]["value"] = True
        assert any("value" in p for p in validate_report(degraded))

    def test_bad_kind_and_negative_tolerance_reported(self, report):
        degraded = copy.deepcopy(report)
        metrics = degraded["benchmarks"][0]["metrics"]
        name = next(iter(metrics))
        metrics[name]["kind"] = "fuzzy"
        problems = validate_report(degraded)
        assert any("kind" in p for p in problems)
        degraded = copy.deepcopy(report)
        metrics = degraded["benchmarks"][0]["metrics"]
        metrics[next(iter(metrics))]["tolerance"] = -0.5
        assert any("tolerance" in p for p in validate_report(degraded))

    def test_duplicate_benchmark_names_reported(self, report):
        degraded = copy.deepcopy(report)
        degraded["benchmarks"].append(degraded["benchmarks"][0])
        assert any("duplicate" in p for p in validate_report(degraded))


class TestComparator:
    def test_true_run_gates_clean_against_committed_baseline(
        self, report, baseline
    ):
        assert compare_reports(report, baseline) == []

    def test_exact_drift_is_a_regression(self, report, baseline):
        degraded = copy.deepcopy(report)
        metrics = {
            bench["name"]: bench["metrics"]
            for bench in degraded["benchmarks"]
        }
        metrics["recommend_strategies"]["breadth_checksum"]["value"] += 1
        regressions = compare_reports(degraded, baseline)
        assert len(regressions) == 1
        assert "breadth_checksum" in regressions[0]
        assert "expected exactly" in regressions[0]

    def test_relative_drift_outside_tolerance_is_a_regression(
        self, report, baseline
    ):
        degraded = copy.deepcopy(report)
        metrics = {
            bench["name"]: bench["metrics"]
            for bench in degraded["benchmarks"]
        }
        entry = metrics["evaluation_protocol"]["breadth_avg_tpr"]
        entry["value"] = entry["value"] * 2  # far beyond the 1e-6 band
        regressions = compare_reports(degraded, baseline)
        assert len(regressions) == 1
        assert "drifted" in regressions[0]

    def test_info_metrics_are_never_gated(self, report, baseline):
        degraded = copy.deepcopy(report)
        for bench in degraded["benchmarks"]:
            for metric in bench["metrics"].values():
                if metric["kind"] == "info":
                    metric["value"] = 1e9
        assert compare_reports(degraded, baseline) == []

    def test_missing_benchmark_and_metric_are_regressions(
        self, report, baseline
    ):
        degraded = copy.deepcopy(report)
        degraded["benchmarks"] = [
            bench for bench in degraded["benchmarks"]
            if bench["name"] != "space_cache"
        ]
        del degraded["benchmarks"][0]["metrics"][
            next(iter(degraded["benchmarks"][0]["metrics"]))
        ]
        regressions = compare_reports(degraded, baseline)
        assert any("benchmark missing" in r for r in regressions)
        assert any("metric missing" in r for r in regressions)

    def test_extra_benchmarks_in_report_are_not_gated(self, report, baseline):
        extended = copy.deepcopy(report)
        extended["benchmarks"].append(
            {"name": "new_bench", "description": "added after baseline",
             "metrics": {"x": {"value": 1.0, "kind": "exact",
                               "tolerance": 0.0}}}
        )
        assert compare_reports(extended, baseline) == []

    def test_suite_mismatch_short_circuits(self, report, baseline):
        other = copy.deepcopy(report)
        other["suite"] = "nightly"
        regressions = compare_reports(other, baseline)
        assert regressions == [
            "suite mismatch: report ran 'nightly', baseline is 'smoke'"
        ]


class TestRunnerExitCodes:
    def test_check_true_report_exits_zero(self, report, tmp_path, capsys):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report), encoding="utf-8")
        code = main(
            ["--check", str(path), "--baseline", str(BASELINE_PATH)]
        )
        assert code == 0
        assert "baseline gate passed" in capsys.readouterr().out

    def test_check_degraded_report_exits_one(self, report, tmp_path, capsys):
        degraded = copy.deepcopy(report)
        for bench in degraded["benchmarks"]:
            if bench["name"] == "association_spaces":
                bench["metrics"]["is_size_total"]["value"] += 7
        path = tmp_path / "degraded.json"
        path.write_text(json.dumps(degraded), encoding="utf-8")
        code = main(
            ["--check", str(path), "--baseline", str(BASELINE_PATH)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "is_size_total" in out

    def test_check_invalid_report_exits_one(self, tmp_path):
        path = tmp_path / "invalid.json"
        path.write_text(json.dumps({"schema_version": 99}), encoding="utf-8")
        assert main(["--check", str(path)]) == 1

    def test_check_unreadable_report_exits_two(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        assert main(["--check", str(path)]) == 2

    def test_missing_baseline_skips_the_gate(self, report, tmp_path, capsys):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report), encoding="utf-8")
        code = main(
            ["--check", str(path), "--baseline", str(tmp_path / "none.json")]
        )
        assert code == 0
        assert "no baseline" in capsys.readouterr().err

    def test_list_prints_the_catalogue(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "smoke:" in out
        assert "obs_overhead" in out

    def test_full_run_writes_report_and_passes_gate(self, tmp_path, capsys):
        output = tmp_path / "BENCH_PERF.json"
        code = main(
            [
                "--suite", "smoke",
                "--output", str(output),
                "--baseline", str(BASELINE_PATH),
            ]
        )
        assert code == 0
        written = json.loads(output.read_text(encoding="utf-8"))
        assert validate_report(written) == []
        assert "baseline gate passed" in capsys.readouterr().out

    def test_update_baseline_writes_the_fresh_report(self, tmp_path):
        target = tmp_path / "baseline.json"
        code = main(
            ["--suite", "smoke", "--update-baseline",
             "--baseline", str(target)]
        )
        assert code == 0
        assert validate_report(
            json.loads(target.read_text(encoding="utf-8"))
        ) == []


class TestDeterminism:
    def test_exact_metrics_are_identical_across_runs(self, report):
        again = build_report("smoke")
        obs.disable()

        def exact_metrics(built):
            return {
                (bench["name"], name): metric["value"]
                for bench in built["benchmarks"]
                for name, metric in bench["metrics"].items()
                if metric["kind"] == "exact"
            }

        first = exact_metrics(report)
        assert first  # the suite must actually gate something exactly
        assert exact_metrics(again) == first
