"""Unit tests for the utility modules (rng, validation, timing, report)."""

import time

import numpy as np
import pytest

from repro.eval.report import format_cell, format_table
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    require_in,
    require_non_empty,
    require_non_negative,
    require_positive,
    require_probability,
)


class TestRng:
    def test_int_seed_reproducible(self):
        assert make_rng(5).integers(1000) == make_rng(5).integers(1000)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_spawn_independent_streams(self):
        children = spawn_rngs(0, 3)
        draws = [child.integers(10**9) for child in children]
        assert len(set(draws)) == 3

    def test_spawn_reproducible(self):
        a = [r.integers(10**9) for r in spawn_rngs(7, 2)]
        b = [r.integers(10**9) for r in spawn_rngs(7, 2)]
        assert a == b

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_require_positive(self):
        require_positive(1, "x")
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive(0, "x")

    def test_require_non_negative(self):
        require_non_negative(0, "x")
        with pytest.raises(ValueError):
            require_non_negative(-1, "x")

    def test_require_probability(self):
        require_probability(0.0, "p")
        require_probability(1.0, "p")
        with pytest.raises(ValueError):
            require_probability(1.01, "p")

    def test_require_non_empty(self):
        require_non_empty([1], "items")
        with pytest.raises(ValueError, match="not be empty"):
            require_non_empty([], "items")

    def test_require_in(self):
        require_in("a", ("a", "b"), "mode")
        with pytest.raises(ValueError, match="mode must be one of"):
            require_in("c", ("a", "b"), "mode")


class TestStopwatch:
    def test_measure_records_positive_samples(self):
        watch = Stopwatch()
        with watch.measure("op"):
            time.sleep(0.001)
        summary = watch.summary("op")
        assert summary.count == 1
        assert summary.mean > 0

    def test_multiple_samples_aggregate(self):
        watch = Stopwatch()
        for value in (0.1, 0.2, 0.3):
            watch.record("op", value)
        summary = watch.summary("op")
        assert summary.mean == pytest.approx(0.2)
        assert summary.median == pytest.approx(0.2)
        assert summary.minimum == pytest.approx(0.1)
        assert summary.maximum == pytest.approx(0.3)
        assert summary.total == pytest.approx(0.6)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            Stopwatch().summary("missing")

    def test_names_sorted(self):
        watch = Stopwatch()
        watch.record("b", 1.0)
        watch.record("a", 1.0)
        assert watch.names() == ["a", "b"]

    def test_summaries_cover_all_names(self):
        watch = Stopwatch()
        watch.record("a", 1.0)
        watch.record("b", 2.0)
        assert [s.name for s in watch.summaries()] == ["a", "b"]

    def test_str_formats_milliseconds(self):
        watch = Stopwatch()
        watch.record("op", 0.5)
        assert "500.000ms" in str(watch.summary("op"))

    def test_timed_returns_result_and_elapsed(self):
        result, elapsed = timed(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0


class TestReport:
    def test_format_cell_float_precision(self):
        assert format_cell(0.123456, precision=2) == "0.12"

    def test_format_cell_non_float(self):
        assert format_cell("abc") == "abc"
        assert format_cell(7) == "7"

    def test_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) == {"-"}
        assert len(lines) == 4

    def test_table_title(self):
        table = format_table(["h"], [["x"]], title="Table 1")
        assert table.splitlines()[0] == "Table 1"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])


class TestAsciiBarChart:
    def test_bars_scale_to_width(self):
        from repro.eval.report import ascii_bar_chart

        chart = ascii_bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].startswith("a  |#####")
        assert lines[1].startswith("bb |##########")

    def test_title_line(self):
        from repro.eval.report import ascii_bar_chart

        chart = ascii_bar_chart(["x"], [1.0], title="Figure")
        assert chart.splitlines()[0] == "Figure"

    def test_zero_values_render_empty_bars(self):
        from repro.eval.report import ascii_bar_chart

        chart = ascii_bar_chart(["x", "y"], [0.0, 0.0])
        assert "|" in chart

    def test_mismatched_inputs_rejected(self):
        from repro.eval.report import ascii_bar_chart

        with pytest.raises(ValueError, match="align"):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_negative_values_rejected(self):
        from repro.eval.report import ascii_bar_chart

        with pytest.raises(ValueError, match="non-negative"):
            ascii_bar_chart(["a", "b"], [1.0, -0.5])

    def test_empty_rejected(self):
        from repro.eval.report import ascii_bar_chart

        with pytest.raises(ValueError, match="nothing"):
            ascii_bar_chart([], [])


class TestStopwatchPercentiles:
    def test_percentile_interpolates(self):
        watch = Stopwatch()
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            watch.record("op", value)
        assert watch.percentile("op", 0.0) == 1.0
        assert watch.percentile("op", 1.0) == 5.0
        assert watch.percentile("op", 0.5) == 3.0
        assert watch.percentile("op", 0.25) == 2.0

    def test_single_sample(self):
        watch = Stopwatch()
        watch.record("op", 7.0)
        assert watch.percentile("op", 0.95) == 7.0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            Stopwatch().percentile("missing", 0.5)

    def test_invalid_quantile_raises(self):
        watch = Stopwatch()
        watch.record("op", 1.0)
        with pytest.raises(ValueError):
            watch.percentile("op", 1.5)


class TestMarkdownTable:
    def test_markdown_layout(self):
        table = format_table(
            ["m", "v"], [["a", 1.0]], title="T", style="markdown"
        )
        lines = table.splitlines()
        assert lines[0] == "**T**"
        assert lines[2] == "| m | v |"
        assert lines[3] == "|---|---|"
        assert lines[4] == "| a | 1.000 |"

    def test_markdown_without_title(self):
        table = format_table(["m"], [["a"]], style="markdown")
        assert table.splitlines()[0] == "| m |"

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError, match="style"):
            format_table(["m"], [["a"]], style="latex")
