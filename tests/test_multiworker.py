"""Multi-worker serving (``repro serve --workers N``), subprocess-driven.

Four contracts, each against real forked pools started through the CLI
(fork inside a threaded test process is not safe, so every server here
is its own process tree):

- **bit-parity** — a pool's response bodies are byte-identical to the
  single-process server's, pinned with the same CRC32 technique as the
  bench suite;
- **hot reload under load** — mutations land on every worker in the
  same order while request traffic keeps flowing, and the pool converges
  to one (generation, implementations) pair;
- **SIGTERM drains all workers** — the parent fans the drain out and the
  whole tree exits cleanly;
- **crash restarts** — a SIGKILLed worker is respawned under the restart
  budget and the pool keeps serving.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
import zlib
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")

START_TIMEOUT = 45.0


@pytest.fixture(scope="module")
def library_path(tmp_path_factory):
    from repro.data import FoodMartConfig, generate_foodmart
    from repro.storage import JsonLibraryStore

    dataset = generate_foodmart(FoodMartConfig.tiny(), seed=0)
    path = tmp_path_factory.mktemp("multiworker") / "lib.json"
    JsonLibraryStore(path).save(dataset.library)
    return path


@pytest.fixture(scope="module")
def action_labels(library_path):
    payload = json.loads(library_path.read_text())
    labels = sorted(
        {a for impl in payload["implementations"] for a in impl["actions"]}
    )
    assert len(labels) >= 10
    return labels


class ServerProcess:
    """One ``repro serve`` subprocess plus its parsed base URL."""

    def __init__(self, library: Path, workers: int, *extra: str) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--library", str(library), "--port", "0",
                "--workers", str(workers), "--history-window", "0",
                "--no-tracing", *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        self.port = self._await_banner()
        self.url = f"http://127.0.0.1:{self.port}"

    def _await_banner(self) -> int:
        banner: list[str] = []

        def read() -> None:
            assert self.proc.stdout is not None
            banner.append(self.proc.stdout.readline())

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(START_TIMEOUT)
        if reader.is_alive() or not banner or " on http://" not in banner[0]:
            self.stop()
            raise AssertionError(
                f"server did not start: {banner!r}\n{self.stderr_tail()}"
            )
        match = re.search(r" on http://[\d.]+:(\d+)", banner[0])
        if match is None:
            self.stop()
            raise AssertionError(f"no port in banner: {banner[0]!r}")
        return int(match.group(1))

    def stderr_tail(self) -> str:
        try:
            self.proc.kill()
            _out, err = self.proc.communicate(timeout=10)
            return err or ""
        except Exception:
            return ""

    def request(
        self, path: str, payload: dict | None = None, method: str | None = None
    ) -> tuple[int, bytes]:
        data = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.url + path, data=data, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    def worker_pids(self) -> list[int]:
        """Direct worker children of the serve process, via /proc.

        Skips multiprocessing's ``resource_tracker`` helper, which is
        also forked off the parent but is not a serving worker.
        """
        children = []
        for entry in os.listdir("/proc"):
            if not entry.isdigit():
                continue
            try:
                stat = Path(f"/proc/{entry}/stat").read_text()
                cmdline = Path(f"/proc/{entry}/cmdline").read_bytes()
            except OSError:
                continue
            # field 4 (after the parenthesized comm) is ppid
            ppid = int(stat.rsplit(")", 1)[1].split()[1])
            if ppid == self.proc.pid and b"resource_tracker" not in cmdline:
                children.append(int(entry))
        return sorted(children)

    def stop(self, timeout: float = 30.0) -> int:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(10)
        if self.proc.stdout is not None:
            self.proc.stdout.close()
        if self.proc.stderr is not None:
            self.proc.stderr.close()
        return self.proc.returncode


def _unique_requests(labels: list[str]) -> list[dict]:
    """Distinct recommend payloads (unique activity sets → never cached)."""
    pairs = [
        sorted({labels[i % len(labels)], labels[(i + 1) % len(labels)]})
        for i in range(min(48, len(labels) - 1))
    ]
    assert len({tuple(p) for p in pairs}) == len(pairs)
    return [{"activity": pair, "k": 5} for pair in pairs]


def _crc_responses(server: ServerProcess, payloads: list[dict]) -> int:
    digest = 0
    for payload in payloads:
        status, body = server.request("/recommend", payload)
        assert status == 200, body
        assert json.loads(body)["cached"] is False
        digest = zlib.crc32(body, digest)
    return digest


class TestBitParity:
    def test_pool_responses_match_single_process_bytes(
        self, library_path, action_labels
    ):
        payloads = _unique_requests(action_labels)
        single = ServerProcess(library_path, 1)
        try:
            reference = _crc_responses(single, payloads)
        finally:
            single.stop()
        pool = ServerProcess(library_path, 2)
        try:
            # The requests spread across both workers: every response must
            # still be byte-identical to the single process, whoever answers.
            assert _crc_responses(pool, payloads) == reference
        finally:
            assert pool.stop() == 0


class TestHotReloadUnderLoad:
    def test_mutations_converge_across_workers_under_traffic(
        self, library_path, action_labels
    ):
        pool = ServerProcess(library_path, 2)
        errors: list[str] = []
        stop = threading.Event()

        def hammer(offset: int) -> None:
            i = 0
            while not stop.is_set():
                payload = {
                    "activity": [action_labels[(i + offset) % len(action_labels)]],
                    "k": 3,
                }
                status, body = pool.request("/recommend", payload)
                if status >= 500:
                    errors.append(f"{status}: {body!r}")
                i += 1

        threads = [
            threading.Thread(target=hammer, args=(i * 11,), daemon=True)
            for i in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            added: list[int] = []
            for i in range(5):
                status, body = pool.request(
                    "/model/implementations",
                    {
                        "implementations": [
                            {
                                "goal": f"hot_goal_{i}",
                                "actions": [action_labels[0], f"hot_act_{i}"],
                            }
                        ]
                    },
                    method="PUT",
                )
                assert status == 200, body
                added.extend(json.loads(body)["added"])
            status, body = pool.request(
                f"/model/implementations/{added[0]}", method="DELETE"
            )
            assert status == 200, body
            stop.set()
            for thread in threads:
                thread.join(10)
            assert not errors, errors[:5]

            # Every worker applies the same mutation sequence, but the ack
            # only covers the origin worker — siblings catch up over their
            # control pipes.  Poll until the whole pool reports the final
            # (generation, implementations) pair: 5 adds + 1 remove.
            expected = (6, 120 + 5 - 1)
            deadline = time.monotonic() + 15
            states: set[tuple[int, int]] = set()
            while time.monotonic() < deadline:
                states = set()
                for _ in range(8):
                    status, body = pool.request("/health")
                    assert status == 200
                    health = json.loads(body)
                    states.add(
                        (health["generation"], health["implementations"])
                    )
                if states == {expected}:
                    break
                time.sleep(0.2)
            assert states == {expected}

            # The surviving hot adds are recommendable on any worker.
            for _ in range(4):
                status, body = pool.request(
                    "/recommend", {"activity": ["hot_act_4"], "k": 5}
                )
                assert status == 200
                actions = [
                    row["action"]
                    for row in json.loads(body)["recommendations"]
                ]
                assert action_labels[0] in actions
        finally:
            stop.set()
            code = pool.stop()
        assert code == 0


class TestSigtermDrain:
    def test_sigterm_drains_every_worker(self, library_path):
        pool = ServerProcess(library_path, 2)
        workers = pool.worker_pids()
        assert len(workers) == 2
        pool.proc.send_signal(signal.SIGTERM)
        pool.proc.wait(30)
        _out, err = pool.proc.communicate(timeout=10)
        assert pool.proc.returncode == 0
        assert "draining 2 workers" in err
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            alive = [pid for pid in workers if _pid_alive(pid)]
            if not alive:
                break
            time.sleep(0.1)
        assert not alive, f"workers survived the drain: {alive}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class TestCrashRestart:
    def test_killed_worker_is_respawned_and_pool_keeps_serving(
        self, library_path
    ):
        pool = ServerProcess(library_path, 2)
        try:
            before = pool.worker_pids()
            assert len(before) == 2
            os.kill(before[0], signal.SIGKILL)
            deadline = time.monotonic() + 15
            respawned: list[int] = []
            while time.monotonic() < deadline:
                respawned = pool.worker_pids()
                if len(respawned) == 2 and respawned != before:
                    break
                time.sleep(0.2)
            assert len(respawned) == 2 and respawned != before
            # The replacement serves the same model state.
            deadline = time.monotonic() + 10
            seen_ok = 0
            while time.monotonic() < deadline and seen_ok < 6:
                status, body = pool.request("/health")
                if status == 200:
                    assert json.loads(body)["implementations"] == 120
                    seen_ok += 1
            assert seen_ok == 6
        finally:
            code = pool.stop()
        assert code == 0
