"""Integration tests: the service's observability surface.

Covers ``GET /metrics`` reflecting traffic against the JSON endpoints
(including error counts on bad bodies), the ``X-Request-Id`` echo, the
uniform ``{"error", "detail"}`` envelope, 405 handling on known routes, and
the enriched ``/health`` payload.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro import obs
from repro.core import AssociationGoalModel
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.service import RecommenderService


@pytest.fixture
def service(request):
    """A service writing into a fresh process-wide registry and tracer."""
    registry = MetricsRegistry()
    tracer = Tracer()
    previous_registry = obs.set_registry(registry)
    previous_tracer = obs.set_tracer(tracer)
    model = AssociationGoalModel.from_pairs(
        [
            ("olivier salad", {"potatoes", "carrots", "pickles"}),
            ("mashed potatoes", {"potatoes", "nutmeg", "butter"}),
            ("pan-fried carrots", {"carrots", "nutmeg", "oil"}),
        ]
    )
    server = RecommenderService(model, port=0).start()

    def teardown():
        server.stop()
        obs.disable()
        obs.set_registry(previous_registry)
        obs.set_tracer(previous_tracer)

    request.addfinalizer(teardown)
    return server


def call(service, path, payload=None, method=None, headers=None):
    """Return ``(status, body, response_headers)`` for one request."""
    url = f"http://127.0.0.1:{service.port}{path}"
    data = json.dumps(payload).encode() if payload is not None else None
    request_headers = dict(headers or {})
    if data is not None:
        request_headers.setdefault("Content-Type", "application/json")
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data else "GET"),
        headers=request_headers,
    )
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            raw = response.read()
            parsed = (
                json.loads(raw)
                if response.headers.get("Content-Type", "").startswith(
                    "application/json"
                )
                else raw.decode("utf-8")
            )
            return response.status, parsed, dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def scrape_until(service, needle, timeout=5.0):
    """Poll ``/metrics`` until ``needle`` appears; return the final text.

    Request accounting deliberately runs *after* the response is written
    (the recorded status must cover write failures), so a scrape issued
    right after a request returns can land before that request's counters
    do.  Polling absorbs the handoff without weakening the assertions —
    the settled exposition is still checked exactly.
    """
    deadline = time.monotonic() + timeout
    while True:
        status, text, headers = call(service, "/metrics")
        assert status == 200
        if needle in text or time.monotonic() >= deadline:
            assert needle in text
            return text, headers


class TestMetricsEndpoint:
    def test_metrics_reflect_recommend_traffic(self, service):
        for _ in range(3):
            status, _, _ = call(
                service, "/recommend",
                {"activity": ["potatoes", "carrots"], "k": 3},
            )
            assert status == 200
        text, headers = scrape_until(
            service,
            'repro_http_requests_total{endpoint="/recommend",'
            'method="POST",status="200"} 3',
        )
        assert headers["Content-Type"].startswith("text/plain")
        # The three identical requests collapse onto one core ranking pass:
        # the first misses the recommendation LRU, the other two hit it.
        assert (
            'repro_recommend_latency_seconds_count{strategy="breadth"} 1'
            in text
        )
        assert 'repro_recommend_latency_seconds_bucket{strategy="breadth"' in text
        assert 'repro_recommend_requests_total{strategy="breadth"} 1' in text
        assert 'repro_cache_misses_total{cache="recommendations"} 1' in text
        assert 'repro_cache_hits_total{cache="recommendations"} 2' in text
        assert 'repro_cache_lookup_seconds_count{cache="recommendations"} 3' in text

    def test_metrics_count_errors_on_bad_bodies(self, service):
        url = f"http://127.0.0.1:{service.port}/recommend"
        request = urllib.request.Request(url, data=b"{broken", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400
        excinfo.value.read()
        status, _, _ = call(service, "/recommend", {"k": 3})  # no activity
        assert status == 400
        scrape_until(
            service,
            'repro_http_errors_total{endpoint="/recommend",status="400"} 2',
        )

    def test_unknown_paths_grouped_under_unknown(self, service):
        call(service, "/nope")
        scrape_until(
            service,
            'repro_http_errors_total{endpoint="<unknown>",status="404"} 1',
        )

    def test_metrics_scrape_counts_itself(self, service):
        call(service, "/metrics")
        scrape_until(
            service,
            'repro_http_requests_total{endpoint="/metrics",'
            'method="GET",status="200"}',
        )


class TestRequestId:
    def test_client_request_id_echoed(self, service):
        _, _, headers = call(
            service, "/health", headers={"X-Request-Id": "trace-me-42"}
        )
        assert headers["X-Request-Id"] == "trace-me-42"

    def test_request_id_minted_when_absent(self, service):
        _, _, first = call(service, "/health")
        _, _, second = call(service, "/health")
        assert first["X-Request-Id"]
        assert first["X-Request-Id"] != second["X-Request-Id"]

    def test_error_responses_carry_request_id(self, service):
        status, _, headers = call(
            service, "/nope", headers={"X-Request-Id": "err-1"}
        )
        assert status == 404
        assert headers["X-Request-Id"] == "err-1"


class TestErrorShape:
    def test_404_has_error_and_detail(self, service):
        status, body, _ = call(service, "/nope")
        assert status == 404
        assert set(body) == {"error", "detail"}
        assert "/recommend" in body["detail"]["post"]

    def test_422_detail_names_the_exception(self, service):
        status, body, _ = call(
            service, "/recommend",
            {"activity": ["potatoes"], "strategy": "nope"},
        )
        assert status == 422
        assert "unknown strategy" in body["error"]
        assert body["detail"] == "StrategyNotFoundError"

    def test_400_validation_has_detail(self, service):
        status, body, _ = call(service, "/recommend", {"k": 3})
        assert status == 400
        assert "'activity'" in body["error"]
        assert body["detail"] is not None


class TestMethodNotAllowed:
    def test_get_on_post_route_is_405_with_allow(self, service):
        status, body, headers = call(service, "/recommend", method="GET")
        assert status == 405
        assert headers["Allow"] == "POST"
        assert body["error"] == "method not allowed"

    def test_post_on_get_route_is_405_with_allow(self, service):
        status, body, headers = call(
            service, "/health", payload={}, method="POST"
        )
        assert status == 405
        assert headers["Allow"] == "GET, HEAD"

    def test_put_on_known_route_is_405(self, service):
        status, _, headers = call(
            service, "/recommend",
            payload={"activity": []}, method="PUT",
        )
        assert status == 405
        assert headers["Allow"] == "POST"

    def test_405_counted_as_error(self, service):
        call(service, "/recommend", method="GET")
        _, text, _ = call(service, "/metrics")
        assert (
            'repro_http_errors_total{endpoint="/recommend",status="405"} 1'
            in text
        )


class TestHealth:
    def test_health_reports_version_and_library_stats(self, service):
        status, body, _ = call(service, "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["version"] == repro.__version__
        assert body["implementations"] == 3
        library = body["library"]
        assert library["num_implementations"] == 3
        assert library["num_goals"] == 3
        assert library["num_actions"] == 6
        assert library["connectivity"] > 0
        assert "max_implementation_length" in library


def _find_spans(trees, name):
    """Depth-first search for every span called ``name`` in the trees."""
    found = []
    for span in trees:
        if span["name"] == name:
            found.append(span)
        found.extend(_find_spans(span["children"], name))
    return found


class TestTracedService:
    def test_traced_recommend_yields_span_tree_with_space_sizes(self, service):
        obs.enable(tracing=True, trace_detail=True)
        status, _, _ = call(
            service, "/recommend", {"activity": ["potatoes"], "k": 3}
        )
        obs.disable(metrics=False, tracing=True)
        assert status == 200
        # The request root is the http.request span; recommend nests inside.
        # The root closes *after* the response bytes reach the client, so
        # poll briefly instead of racing the handler thread.
        deadline = time.monotonic() + 2.0
        roots = []
        while not roots and time.monotonic() < deadline:
            roots = [
                s for s in obs.get_tracer().spans()
                if s["name"] == "http.request"
                and s["attributes"]["endpoint"] == "/recommend"
            ]
            if not roots:
                time.sleep(0.01)
        assert roots, "no http.request root span recorded"
        recommend = _find_spans(roots, "recommend")[-1]
        attrs = recommend["attributes"]
        assert attrs["strategy"] == "breadth"
        assert attrs["is_size"] == 2  # potatoes -> salad + mash
        assert attrs["gs_size"] == 2
        assert attrs["as_size"] == 5  # salad ∪ mash actions
        child_names = {child["name"] for child in recommend["children"]}
        assert "rank" in child_names
        # All four pipeline stages appear somewhere under the request root.
        for stage in (
            "implementation_space", "goal_space", "action_space", "rank"
        ):
            assert _find_spans([recommend], stage), f"missing stage {stage}"
        # The tree is valid JSON end to end.
        json.loads(obs.get_tracer().export_json())
