"""Property-based tests for the text pipeline: never crash, stay canonical."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import ActionExtractor, GoalStory, normalize_phrase, sentences, words
from repro.text.tokenizer import STOPWORDS, lemma_lite

arbitrary_text = st.text(max_size=300)
wordlike = st.from_regex(r"[a-zA-Z][a-zA-Z'-]{0,14}", fullmatch=True)


@given(arbitrary_text)
@settings(max_examples=100)
def test_sentences_never_crash_and_never_empty_fragments(text):
    for fragment in sentences(text):
        assert fragment.strip() == fragment
        assert fragment


@given(arbitrary_text)
@settings(max_examples=100)
def test_words_are_lowercase_tokens(text):
    for token in words(text):
        assert token == token.lower()
        assert token[0].isalpha()


@given(arbitrary_text)
@settings(max_examples=100)
def test_normalize_idempotent(text):
    once = normalize_phrase(text)
    assert normalize_phrase(once) == once


@given(arbitrary_text)
@settings(max_examples=100)
def test_normalize_has_no_stopwords_after_position_zero(text):
    normalized = normalize_phrase(text)
    if normalized:
        for token in normalized.split()[1:]:
            assert token not in STOPWORDS


@given(wordlike)
@settings(max_examples=150)
def test_lemma_lite_never_empties(token):
    lemma = lemma_lite(token.lower())
    assert lemma
    assert len(lemma) <= len(token) + 1  # at most one synthesized 'e'/'y'


@given(st.text(max_size=500))
@settings(max_examples=80, deadline=None)
def test_extractor_never_crashes(text):
    extractor = ActionExtractor()
    actions = extractor.extract(GoalStory(goal="g", text=text))
    # Extracted actions are already canonical and unique.
    assert len(actions) == len(set(actions))
    for action in actions:
        assert normalize_phrase(action) == action


@given(st.lists(st.tuples(st.text(min_size=1, max_size=20),
                          st.text(max_size=200)), max_size=10))
@settings(max_examples=50, deadline=None)
def test_extract_implementations_never_crashes(pairs):
    from repro.text import extract_implementations

    stories = [GoalStory(goal=goal, text=text) for goal, text in pairs]
    library = extract_implementations(stories)
    for impl in library:
        assert impl.actions
