"""Unit tests for the programmatic experiment suite and its CLI command."""

import pytest

from repro.cli import main
from repro.data import save_dataset
from repro.experiments import ExperimentSuite, SuiteConfig
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def suite(foodmart_tiny, fortythree_tiny):
    return ExperimentSuite(
        foodmart_tiny,
        fortythree_tiny,
        SuiteConfig(k=5, max_users=20, run_scaling=False),
    )


class TestConfig:
    def test_invalid_k_rejected(self, foodmart_tiny, fortythree_tiny):
        with pytest.raises(EvaluationError):
            ExperimentSuite(
                foodmart_tiny, fortythree_tiny, SuiteConfig(k=0)
            )


class TestIndividualExperiments:
    def test_table2_has_both_datasets(self, suite):
        text = suite.table2_overlap()
        assert "Table 2 (foodmart)" in text
        assert "Table 2 (43things)" in text

    def test_table3_lists_all_methods(self, suite):
        text = suite.table3_popularity()
        for method in ("cf_knn", "breadth", "best_match"):
            assert method in text

    def test_table4_columns(self, suite):
        text = suite.table4_usefulness()
        assert "AvgAvg" in text and "MaxAvg" in text

    def test_table5_grocery_only(self, suite):
        text = suite.table5_similarity()
        assert "Table 5 (foodmart)" in text
        assert "43things" not in text

    def test_figure4_cutoffs(self, suite):
        text = suite.figure4_tpr()
        assert "tpr@5" in text and "tpr@10" in text

    def test_figures5_6(self, suite):
        text = suite.figures5_6_frequency()
        assert "Figure 5" in text and "Figure 6" in text

    def test_table6_square_matrix(self, suite):
        text = suite.table6_goal_overlap()
        assert text.count("focus_cmp") >= 4  # header + row, both datasets


class TestOrchestration:
    def test_run_all_ids(self, suite):
        results = suite.run_all()
        assert set(results) == {
            "table2", "table3", "table4", "table5",
            "figure4", "figures5_6", "table6",
        }

    def test_only_filter(self, suite):
        results = suite.run_all(only=["table2"])
        assert list(results) == ["table2"]

    def test_unknown_id_rejected(self, suite):
        with pytest.raises(EvaluationError, match="unknown experiment"):
            suite.run_all(only=["table99"])

    def test_render_report_header(self, suite):
        report = suite.render_report(only=["table2"])
        assert report.startswith("Experiment report")
        assert "Table 2" in report

    def test_scaling_included_when_enabled(
        self, foodmart_tiny, fortythree_tiny
    ):
        from repro.eval import timing

        suite = ExperimentSuite(
            foodmart_tiny,
            fortythree_tiny,
            SuiteConfig(k=5, max_users=10, run_scaling=True),
        )
        # Shrink the sweep so the test stays fast.
        small_scales = (
            timing.ScalePoint("S", num_products=40, num_recipes=60, num_carts=5),
            timing.ScalePoint("M", num_products=40, num_recipes=120, num_carts=5),
        )
        original = timing.DEFAULT_SCALES
        try:
            timing.DEFAULT_SCALES = small_scales
            from repro.experiments import runner

            runner.DEFAULT_SCALES = small_scales
            results = suite.run_all(only=["figure7"])
        finally:
            timing.DEFAULT_SCALES = original
            runner.DEFAULT_SCALES = original
        assert "Figure 7" in results["figure7"]


class TestCliReport:
    def test_report_command(self, tmp_path, foodmart_tiny, fortythree_tiny, capsys):
        grocery = save_dataset(foodmart_tiny, tmp_path / "g.json")
        life = save_dataset(fortythree_tiny, tmp_path / "l.json")
        out = tmp_path / "report.txt"
        code = main(
            [
                "report", "--grocery", str(grocery), "--life-goals", str(life),
                "-k", "5", "--max-users", "10", "--skip-scaling",
                "--out", str(out),
            ]
        )
        assert code == 0
        text = out.read_text()
        assert "Table 2" in text and "Table 6" in text
        assert "wrote report" in capsys.readouterr().out
