"""Unit tests for the weighted goal model extension."""

import pytest

from repro.core.weighted import (
    WeightedImplementation,
    WeightedLibrary,
    WeightedRecommender,
)
from repro.exceptions import ModelError


@pytest.fixture
def cake():
    return WeightedImplementation(
        goal="cake",
        weights={"flour": 3.0, "eggs": 2.0, "sprinkles": 0.5},
    )


class TestWeightedImplementation:
    def test_actions_property(self, cake):
        assert cake.actions == frozenset({"flour", "eggs", "sprinkles"})

    def test_total_weight(self, cake):
        assert cake.total_weight() == pytest.approx(5.5)

    def test_overlap_and_remaining(self, cake):
        assert cake.overlap_weight({"flour"}) == pytest.approx(3.0)
        assert cake.remaining_weight({"flour"}) == pytest.approx(2.5)

    def test_weighted_completeness(self, cake):
        assert cake.completeness({"flour"}) == pytest.approx(3.0 / 5.5)
        # Unweighted completeness would be 1/3; the heavy ingredient
        # dominates the weighted view.
        assert cake.completeness({"flour"}) > 1 / 3

    def test_weighted_closeness(self, cake):
        assert cake.closeness({"flour", "eggs"}) == pytest.approx(2.0)

    def test_closeness_of_complete_impl_raises(self, cake):
        with pytest.raises(ModelError, match="undefined"):
            cake.closeness({"flour", "eggs", "sprinkles"})

    def test_empty_weights_rejected(self):
        with pytest.raises(ModelError, match="no actions"):
            WeightedImplementation(goal="g", weights={})

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ModelError, match="non-positive"):
            WeightedImplementation(goal="g", weights={"a": 0.0})

    def test_uniform_weights_match_unweighted_definitions(self):
        impl = WeightedImplementation(
            goal="g", weights={"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0}
        )
        assert impl.completeness({"a", "b"}) == pytest.approx(0.5)
        assert impl.closeness({"a", "b"}) == pytest.approx(0.5)


class TestWeightedLibrary:
    def test_ids_dense(self):
        library = WeightedLibrary()
        assert library.add_weighted("g1", {"a": 1.0}) == 0
        assert library.add_weighted("g2", {"b": 1.0}) == 1
        assert library[1].goal == "g2"

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            WeightedLibrary()[0]

    def test_unweighted_lowering(self):
        library = WeightedLibrary()
        library.add_weighted("g", {"a": 2.0, "b": 1.0})
        plain = library.unweighted()
        assert len(plain) == 1
        assert plain[0].actions == frozenset({"a", "b"})


class TestWeightedRecommender:
    @pytest.fixture
    def recommender(self):
        library = WeightedLibrary()
        # 'core' is heavy in goal A; 'garnish' is light.
        library.add_weighted("A", {"h": 1.0, "core": 5.0, "garnish": 0.5})
        library.add_weighted("B", {"h": 1.0, "other": 1.0})
        return WeightedRecommender(library)

    def test_empty_library_rejected(self):
        with pytest.raises(ModelError, match="empty"):
            WeightedRecommender(WeightedLibrary())

    def test_implementation_space(self, recommender):
        impls = recommender.implementation_space({"h"})
        assert [impl.goal for impl in impls] == ["A", "B"]
        assert recommender.implementation_space({"nope"}) == []

    def test_focus_closeness_prefers_light_remainder(self, recommender):
        """Goal B misses weight 1.0; goal A misses 5.5 -> B first."""
        ranked = recommender.rank_focus({"h"}, k=1, measure="closeness")
        assert ranked[0][0] == "other"

    def test_focus_completeness_weighted(self, recommender):
        # A: 1/6.5 done; B: 1/2 done -> B's missing action leads.
        ranked = recommender.rank_focus({"h"}, k=1, measure="completeness")
        assert ranked[0][0] == "other"

    def test_focus_emits_heaviest_missing_first(self, recommender):
        ranked = recommender.rank_focus({"h", "other"}, k=2)
        assert [action for action, _ in ranked] == ["core", "garnish"]

    def test_focus_unknown_measure_rejected(self, recommender):
        with pytest.raises(ValueError, match="measure"):
            recommender.rank_focus({"h"}, k=1, measure="nope")

    def test_breadth_scales_with_candidate_weight(self, recommender):
        ranked = dict(recommender.rank_breadth({"h"}, k=10))
        # Same per-implementation overlap (1.0); 'core' weighs 5x 'other'.
        assert ranked["core"] == pytest.approx(5.0)
        assert ranked["other"] == pytest.approx(1.0)
        assert ranked["garnish"] == pytest.approx(0.5)

    def test_breadth_excludes_activity(self, recommender):
        ranked = recommender.rank_breadth({"h", "core"}, k=10)
        assert all(action not in {"h", "core"} for action, _ in ranked)

    def test_k_validated(self, recommender):
        with pytest.raises(ValueError):
            recommender.rank_breadth({"h"}, k=0)

    def test_uniform_weights_reduce_to_plain_breadth(self):
        """With all weights 1, scores equal the paper's |A ∩ H| sums."""
        from repro.core import AssociationGoalModel
        from repro.core.strategies.breadth import BreadthStrategy

        pairs = [("g1", {"h1", "h2", "x"}), ("g2", {"h1", "x"}), ("g3", {"h2", "y"})]
        weighted = WeightedLibrary()
        for goal, actions in pairs:
            weighted.add_weighted(goal, {action: 1.0 for action in actions})
        recommender = WeightedRecommender(weighted)
        weighted_scores = dict(recommender.rank_breadth({"h1", "h2"}, k=10))

        model = AssociationGoalModel.from_pairs(pairs)
        plain = BreadthStrategy().scores(
            model, model.encode_activity({"h1", "h2"})
        )
        plain_by_label = {
            model.action_label(aid): score for aid, score in plain.items()
        }
        assert weighted_scores == pytest.approx(plain_by_label)
