"""Tests for the bundled sample datasets."""

import pytest

from repro.core import AssociationGoalModel, GoalRecommender
from repro.data.samples import (
    life_goal_stories,
    life_goals_library,
    recipes_dataset,
    recipes_library,
)
from repro.data.samples.recipes import CARTS, RECIPES
from repro.data.schema import validate_dataset


class TestRecipes:
    def test_library_size(self):
        library = recipes_library()
        assert len(library) == len(RECIPES) == 40

    def test_every_ingredient_featured(self):
        dataset = recipes_dataset()
        assert set(dataset.item_features) == dataset.library.actions()

    def test_dataset_validates(self):
        validate_dataset(recipes_dataset())

    def test_staples_have_high_connectivity(self):
        model = AssociationGoalModel.from_library(recipes_library())
        freqs = model.action_frequencies()
        onion = freqs[model.action_id("onion")]
        saffron = freqs[model.action_id("saffron")]
        assert onion > 5 * saffron

    def test_olivier_cart_recommends_missing_ingredients(self):
        model = AssociationGoalModel.from_library(recipes_library())
        recommender = GoalRecommender(model)
        result = recommender.recommend(
            CARTS["cart_olivier"], k=3, strategy="focus_cmp"
        )
        # Olivier salad needs pickles and mayonnaise beyond the cart.
        assert {"pickles", "mayonnaise"} & result.action_set()

    def test_staples_cart_reaches_many_goals(self):
        model = AssociationGoalModel.from_library(recipes_library())
        goals = model.goal_space_labels(CARTS["cart_staples"])
        assert len(goals) > 25

    def test_carts_use_known_ingredients(self):
        actions = recipes_library().actions()
        for cart in CARTS.values():
            assert cart <= actions

    def test_deterministic_construction(self):
        a = [(i.goal, i.actions) for i in recipes_library()]
        b = [(i.goal, i.actions) for i in recipes_library()]
        assert a == b


class TestLifeGoals:
    def test_stories_present(self):
        assert len(life_goal_stories()) == 30

    def test_extraction_yields_connected_library(self):
        library = life_goals_library()
        assert len(library) >= 25  # nearly every story yields actions
        model = AssociationGoalModel.from_library(library)
        # Shared actions connect goals across stories.
        goals = model.goal_space_labels({"join gym"})
        assert len(goals) >= 2

    def test_cross_goal_recommendation(self):
        model = AssociationGoalModel.from_library(life_goals_library())
        recommender = GoalRecommender(model)
        result = recommender.recommend({"drink water"}, k=5)
        assert len(result) > 0

    def test_recurring_actions_normalized_identically(self):
        library = life_goals_library()
        actions = library.actions()
        assert "track spending in notebook" in actions
        assert "cook at home" in actions

    @pytest.mark.parametrize("action", ["join gym", "drink water", "walk to work"])
    def test_staple_actions_exist(self, action):
        assert action in life_goals_library().actions()
