"""Property-based bounds for the ranking metrics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entities import RecommendationList, ScoredAction
from repro.eval.ranking_metrics import (
    average_precision,
    ndcg_at,
    precision_at,
    recall_at,
    reciprocal_rank,
)

labels = st.integers(0, 30).map(lambda i: f"a{i}")
rankings = st.lists(labels, unique=True, max_size=15)
hidden_sets = st.frozensets(labels, min_size=1, max_size=10)


def as_list(actions):
    return RecommendationList(
        "t",
        tuple(
            ScoredAction(a, float(len(actions) - i))
            for i, a in enumerate(actions)
        ),
    )


@given(rankings, hidden_sets, st.integers(1, 20))
@settings(max_examples=120)
def test_all_metrics_bounded(actions, hidden, k):
    rec = as_list(actions)
    for metric in (
        precision_at(k),
        recall_at(k),
        ndcg_at(k),
        average_precision,
        reciprocal_rank,
    ):
        value = metric(rec, hidden)
        assert 0.0 <= value <= 1.0 + 1e-12


@given(rankings, hidden_sets)
@settings(max_examples=100)
def test_recall_monotone_in_k(actions, hidden):
    rec = as_list(actions)
    previous = 0.0
    for k in (1, 3, 5, 10, 15):
        value = recall_at(k)(rec, hidden)
        assert value >= previous - 1e-12
        previous = value


@given(rankings, hidden_sets)
@settings(max_examples=100)
def test_perfect_prefix_maximizes_metrics(actions, hidden):
    """Putting every relevant item first gives NDCG = RR = 1 (if any hit)."""
    relevant_first = sorted(hidden) + [a for a in actions if a not in hidden]
    rec = as_list(relevant_first)
    assert ndcg_at(len(relevant_first))(rec, hidden) == 1.0
    assert reciprocal_rank(rec, hidden) == 1.0
    assert average_precision(rec, hidden) == 1.0


@given(rankings, hidden_sets, st.integers(1, 15))
@settings(max_examples=100)
def test_precision_counts_hits(actions, hidden, k):
    rec = as_list(actions)
    hits = sum(1 for a in actions[:k] if a in hidden)
    assert precision_at(k)(rec, hidden) * k == hits


@given(rankings, hidden_sets)
@settings(max_examples=100)
def test_rr_zero_iff_no_hit(actions, hidden):
    rec = as_list(actions)
    has_hit = bool(set(actions) & hidden)
    assert (reciprocal_rank(rec, hidden) > 0) == has_hit
