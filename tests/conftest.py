"""Shared fixtures: paper-derived toy models and small generated datasets."""

from __future__ import annotations

import pytest

from repro.core import AssociationGoalModel, GoalRecommender, ImplementationLibrary
from repro.data import (
    FoodMartConfig,
    FortyThreeConfig,
    generate_foodmart,
    generate_fortythree,
)


@pytest.fixture
def figure1_pairs() -> list[tuple[str, set[str]]]:
    """An implementation set consistent with the paper's Example 4.3.

    Action ``a1`` participates in the activities of ``p1, p2, p3, p5``, so
    its goal space is ``{g1, g2, g3, g5}`` and its action space is
    ``{a2, ..., a6}`` — the invariants the paper states for Figure 1.
    """
    return [
        ("g1", {"a1", "a2", "a3"}),
        ("g2", {"a1", "a4"}),
        ("g3", {"a1", "a5"}),
        ("g4", {"a2", "a6"}),
        ("g5", {"a1", "a6"}),
    ]


@pytest.fixture
def figure1_model(figure1_pairs) -> AssociationGoalModel:
    return AssociationGoalModel.from_pairs(figure1_pairs)


@pytest.fixture
def figure1_recommender(figure1_model) -> GoalRecommender:
    return GoalRecommender(figure1_model)


@pytest.fixture
def recipe_pairs() -> list[tuple[str, set[str]]]:
    """The paper's introduction scenario: russian salad, mashed potatoes..."""
    return [
        ("olivier salad", {"potatoes", "carrots", "pickles"}),
        ("mashed potatoes", {"potatoes", "nutmeg", "butter"}),
        ("pan-fried carrots", {"carrots", "nutmeg", "oil"}),
        ("carrot cake", {"carrots", "flour", "eggs", "sugar"}),
    ]


@pytest.fixture
def recipe_model(recipe_pairs) -> AssociationGoalModel:
    return AssociationGoalModel.from_pairs(recipe_pairs)


@pytest.fixture
def recipe_library(recipe_pairs) -> ImplementationLibrary:
    library = ImplementationLibrary()
    for goal, actions in recipe_pairs:
        library.add_pair(goal, actions)
    return library


@pytest.fixture(scope="session")
def foodmart_tiny():
    return generate_foodmart(FoodMartConfig.tiny(), seed=0)


@pytest.fixture(scope="session")
def fortythree_tiny():
    return generate_fortythree(FortyThreeConfig.tiny(), seed=1)
