"""Unit tests for the core value objects."""

import pytest

from repro.core.entities import (
    GoalImplementation,
    RecommendationList,
    ScoredAction,
    UserActivity,
)


class TestGoalImplementation:
    def test_actions_coerced_to_frozenset(self):
        impl = GoalImplementation(goal="g", actions={"a", "b"})
        assert isinstance(impl.actions, frozenset)
        assert impl.actions == frozenset({"a", "b"})

    def test_empty_action_set_rejected(self):
        with pytest.raises(ValueError, match="empty action set"):
            GoalImplementation(goal="g", actions=frozenset())

    def test_len_counts_actions(self):
        impl = GoalImplementation(goal="g", actions={"a", "b", "c"})
        assert len(impl) == 3

    def test_remaining(self):
        impl = GoalImplementation(goal="g", actions={"a", "b", "c"})
        assert impl.remaining({"a"}) == frozenset({"b", "c"})
        assert impl.remaining({"a", "b", "c"}) == frozenset()

    def test_overlap(self):
        impl = GoalImplementation(goal="g", actions={"a", "b", "c"})
        assert impl.overlap({"a", "x"}) == frozenset({"a"})

    def test_is_fulfilled_by(self):
        impl = GoalImplementation(goal="g", actions={"a", "b"})
        assert impl.is_fulfilled_by({"a", "b", "c"})
        assert not impl.is_fulfilled_by({"a"})

    def test_equality_and_hash(self):
        a = GoalImplementation(goal="g", actions={"a", "b"})
        b = GoalImplementation(goal="g", actions={"b", "a"})
        assert a == b
        assert hash(a) == hash(b)

    def test_different_goal_not_equal(self):
        a = GoalImplementation(goal="g1", actions={"a"})
        b = GoalImplementation(goal="g2", actions={"a"})
        assert a != b


class TestUserActivity:
    def test_coercion_and_contains(self):
        activity = UserActivity(actions={"x", "y"})
        assert "x" in activity
        assert "z" not in activity
        assert len(activity) == 2

    def test_iteration(self):
        activity = UserActivity(actions={"x", "y"})
        assert sorted(activity) == ["x", "y"]

    def test_empty_activity_allowed(self):
        # A brand-new user has no actions yet; that is a valid state.
        assert len(UserActivity(actions=frozenset())) == 0


class TestScoredAction:
    def test_nan_score_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            ScoredAction(action="a", score=float("nan"))

    def test_regular_score_kept(self):
        assert ScoredAction(action="a", score=-1.5).score == -1.5


class TestRecommendationList:
    @pytest.fixture
    def rec_list(self):
        return RecommendationList(
            strategy="breadth",
            items=(
                ScoredAction("a", 3.0),
                ScoredAction("b", 2.0),
                ScoredAction("c", 1.0),
            ),
            activity=frozenset({"x"}),
        )

    def test_actions_preserve_order(self, rec_list):
        assert rec_list.actions() == ["a", "b", "c"]

    def test_action_set(self, rec_list):
        assert rec_list.action_set() == frozenset({"a", "b", "c"})

    def test_top_truncates(self, rec_list):
        top = rec_list.top(2)
        assert top.actions() == ["a", "b"]
        assert top.strategy == "breadth"
        assert top.activity == rec_list.activity

    def test_top_beyond_length_is_noop(self, rec_list):
        assert rec_list.top(10).actions() == ["a", "b", "c"]

    def test_len_and_iter(self, rec_list):
        assert len(rec_list) == 3
        assert [item.score for item in rec_list] == [3.0, 2.0, 1.0]
