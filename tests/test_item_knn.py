"""Unit tests for the item-based KNN baseline."""

import pytest

from repro.baselines.item_knn import ItemKnnRecommender
from repro.exceptions import RecommendationError


@pytest.fixture
def corpus():
    """bread and butter co-occur heavily; hammer lives in another world."""
    return [
        {"bread", "butter"},
        {"bread", "butter", "jam"},
        {"bread", "butter", "milk"},
        {"milk", "eggs"},
        {"hammer", "nails"},
    ]


class TestConfiguration:
    def test_invalid_neighbors_rejected(self):
        with pytest.raises(ValueError, match="num_neighbors"):
            ItemKnnRecommender(num_neighbors=0)

    def test_fit_required(self):
        with pytest.raises(RecommendationError, match="before fit"):
            ItemKnnRecommender().recommend({"a"})


class TestNeighborLists:
    def test_cooccurring_items_are_neighbors(self, corpus):
        model = ItemKnnRecommender().fit(corpus)
        bread = model.items.get("bread")
        butter = model.items.get("butter")
        neighbor_ids = [n for n, _ in model.item_neighbors(bread)]
        assert butter in neighbor_ids

    def test_disjoint_items_not_neighbors(self, corpus):
        model = ItemKnnRecommender().fit(corpus)
        bread = model.items.get("bread")
        hammer = model.items.get("hammer")
        neighbor_ids = [n for n, _ in model.item_neighbors(bread)]
        assert hammer not in neighbor_ids

    def test_similarity_values(self, corpus):
        model = ItemKnnRecommender().fit(corpus)
        bread = model.items.get("bread")
        neighbors = dict(model.item_neighbors(bread))
        butter = model.items.get("butter")
        # bread users {0,1,2}, butter users {0,1,2} -> tanimoto 1.
        assert neighbors[butter] == pytest.approx(1.0)

    def test_neighborhood_truncated(self):
        corpus = [{"hub", f"spoke{i}"} for i in range(10)]
        model = ItemKnnRecommender(num_neighbors=3).fit(corpus)
        hub = model.items.get("hub")
        assert len(model.item_neighbors(hub)) == 3

    def test_unknown_item_empty_neighbors(self, corpus):
        model = ItemKnnRecommender().fit(corpus)
        assert model.item_neighbors(9999) == []


class TestRecommend:
    def test_companion_item_recommended(self, corpus):
        model = ItemKnnRecommender().fit(corpus)
        assert model.recommend({"bread"}, k=1).actions() == ["butter"]

    def test_scores_accumulate_over_query_items(self, corpus):
        model = ItemKnnRecommender().fit(corpus)
        result = model.recommend({"bread", "milk"}, k=5)
        scores = {item.action: item.score for item in result}
        # jam is a neighbour of bread only; butter of both bread and milk.
        assert scores["butter"] > scores["jam"]

    def test_query_items_excluded(self, corpus):
        model = ItemKnnRecommender().fit(corpus)
        actions = model.recommend({"bread", "butter"}, k=10).actions()
        assert "bread" not in actions and "butter" not in actions

    def test_isolated_query_gets_empty_list(self, corpus):
        model = ItemKnnRecommender().fit(corpus)
        # 'nails' only co-occurs with 'hammer'.
        assert model.recommend({"nails"}, k=5).actions() == ["hammer"]
        assert model.recommend({"unknown"}, k=5).actions() == []

    def test_deterministic(self, corpus):
        a = ItemKnnRecommender().fit(corpus).recommend({"bread"}, k=5).actions()
        b = ItemKnnRecommender().fit(corpus).recommend({"bread"}, k=5).actions()
        assert a == b
