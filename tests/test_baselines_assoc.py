"""Unit tests for the association-rule and popularity baselines."""

import pytest

from repro.baselines import AssociationRuleRecommender, PopularityRecommender


@pytest.fixture
def corpus():
    """bread+butter co-occur 3/5; cherry is a one-off."""
    return [
        {"bread", "butter", "jam"},
        {"bread", "butter"},
        {"bread", "butter", "milk"},
        {"milk", "eggs"},
        {"cherry"},
    ]


class TestMining:
    def test_pair_rules_mined(self, corpus):
        recommender = AssociationRuleRecommender(
            min_support=0.4, min_confidence=0.5
        ).fit(corpus)
        rules = {
            (
                tuple(recommender.items.label(a) for a in rule.antecedent),
                recommender.items.label(rule.consequent),
            )
            for rule in recommender.rules
        }
        assert (("bread",), "butter") in rules
        assert (("butter",), "bread") in rules

    def test_support_threshold_filters(self, corpus):
        recommender = AssociationRuleRecommender(
            min_support=0.9, min_confidence=0.0
        ).fit(corpus)
        assert recommender.rules == []

    def test_confidence_computed_correctly(self, corpus):
        recommender = AssociationRuleRecommender(
            min_support=0.2, min_confidence=0.0
        ).fit(corpus)
        rule = next(
            r
            for r in recommender.rules
            if recommender.items.label(r.consequent) == "butter"
            and {recommender.items.label(a) for a in r.antecedent} == {"bread"}
        )
        assert rule.support == pytest.approx(3 / 5)
        assert rule.confidence == pytest.approx(1.0)  # butter in all bread carts

    def test_triples_when_requested(self, corpus):
        recommender = AssociationRuleRecommender(
            min_support=0.2, min_confidence=0.0, max_itemset_size=3
        ).fit(corpus)
        assert any(len(rule.antecedent) == 2 for rule in recommender.rules)

    def test_max_itemset_below_two_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            AssociationRuleRecommender(max_itemset_size=1)

    def test_invalid_support_rejected(self):
        with pytest.raises(ValueError, match="min_support"):
            AssociationRuleRecommender(min_support=1.5)


class TestRuleRecommend:
    def test_consequent_recommended(self, corpus):
        recommender = AssociationRuleRecommender(
            min_support=0.4, min_confidence=0.5
        ).fit(corpus)
        assert recommender.recommend({"bread"}, k=1).actions() == ["butter"]

    def test_rare_combination_not_recommended(self, corpus):
        """The paper's point: unpopular but goal-valid pairs get no rule."""
        recommender = AssociationRuleRecommender(
            min_support=0.4, min_confidence=0.5
        ).fit(corpus)
        assert recommender.recommend({"cherry"}, k=5).actions() == []

    def test_activity_items_excluded(self, corpus):
        recommender = AssociationRuleRecommender(
            min_support=0.2, min_confidence=0.0
        ).fit(corpus)
        actions = recommender.recommend({"bread", "butter"}, k=10).actions()
        assert "bread" not in actions
        assert "butter" not in actions


class TestPopularity:
    def test_ranks_by_count(self, corpus):
        recommender = PopularityRecommender().fit(corpus)
        actions = recommender.recommend(set(), k=3).actions()
        assert actions[0] in {"bread", "butter"}  # both appear 3 times

    def test_query_items_excluded(self, corpus):
        recommender = PopularityRecommender().fit(corpus)
        actions = recommender.recommend({"bread", "butter"}, k=10).actions()
        assert "bread" not in actions

    def test_item_count(self, corpus):
        recommender = PopularityRecommender().fit(corpus)
        bread = recommender.items.get("bread")
        assert recommender.item_count(bread) == 3
        assert recommender.item_count(999) == 0

    def test_deterministic_tie_break(self, corpus):
        recommender = PopularityRecommender().fit(corpus)
        first = recommender.recommend(set(), k=10).actions()
        second = recommender.recommend(set(), k=10).actions()
        assert first == second
