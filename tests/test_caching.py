"""Unit tests for the serving-layer caches (repro.core.caching)."""

import threading

import pytest

from repro import obs
from repro.core import (
    AssociationGoalModel,
    CachedModelView,
    CachingRecommender,
    GoalRecommender,
    LRUCache,
)
from repro.obs.metrics import MetricsRegistry


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        hit, value = cache.lookup("a")
        assert (hit, value) == (False, None)
        cache.store("a", 1)
        hit, value = cache.lookup("a")
        assert (hit, value) == (True, 1)

    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.store("a", 1)
        cache.store("b", 2)
        cache.lookup("a")  # refresh "a"; "b" becomes the LRU entry
        cache.store("c", 3)
        assert cache.lookup("a")[0] is True
        assert cache.lookup("b")[0] is False
        assert cache.lookup("c")[0] is True

    def test_store_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.store("a", 1)
        cache.store("a", 99)
        assert len(cache) == 1
        assert cache.lookup("a") == (True, 99)

    def test_zero_maxsize_disables_caching(self):
        cache = LRUCache(0)
        cache.store("a", 1)
        assert cache.lookup("a") == (False, None)
        assert len(cache) == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            LRUCache(-1)

    def test_get_or_compute(self):
        cache = LRUCache(4)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1

    def test_clear_counts_invalidation(self):
        cache = LRUCache(4)
        cache.store("a", 1)
        cache.clear()
        stats = cache.stats()
        assert stats.size == 0
        assert stats.invalidations == 1
        assert cache.lookup("a")[0] is False

    def test_stats_snapshot(self):
        cache = LRUCache(1, name="unit")
        cache.lookup("a")          # miss
        cache.store("a", 1)
        cache.lookup("a")          # hit
        cache.store("b", 2)        # evicts "a"
        stats = cache.stats()
        assert stats.name == "unit"
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.size == 1
        assert stats.maxsize == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_defined_before_first_lookup(self):
        assert LRUCache(4).stats().hit_rate == 0.0

    def test_concurrent_mixed_operations_stay_consistent(self):
        cache = LRUCache(64)
        errors = []

        def worker(base):
            try:
                for i in range(500):
                    key = (base + i) % 100
                    cache.store(key, key)
                    hit, value = cache.lookup(key)
                    if hit:
                        assert value == key
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n * 17,)) for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
        stats = cache.stats()
        assert stats.hits + stats.misses == 8 * 500

    def test_metrics_recorded_when_enabled(self):
        registry = MetricsRegistry()
        previous = obs.set_registry(registry)
        obs.enable(metrics=True, tracing=False)
        try:
            cache = LRUCache(1, name="metered")
            cache.lookup("a")      # miss
            cache.store("a", 1)
            cache.lookup("a")      # hit
            cache.store("b", 2)    # eviction
            cache.clear()          # invalidation
            text = registry.render()
        finally:
            obs.disable()
            obs.set_registry(previous)
        assert 'repro_cache_misses_total{cache="metered"} 1' in text
        assert 'repro_cache_hits_total{cache="metered"} 1' in text
        assert 'repro_cache_evictions_total{cache="metered"} 1' in text
        assert 'repro_cache_invalidations_total{cache="metered"} 1' in text
        assert 'repro_cache_size{cache="metered"} 0' in text
        assert 'repro_cache_lookup_seconds_count{cache="metered"} 2' in text


class TestCachedModelView:
    def test_space_queries_match_model(self, figure1_model):
        view = CachedModelView(figure1_model)
        for raw in ({"a1"}, {"a1", "a2"}, {"a6"}, set()):
            encoded = figure1_model.encode_activity(raw)
            assert view.implementation_space(encoded) == (
                figure1_model.implementation_space(encoded)
            )
            assert view.goal_space(encoded) == figure1_model.goal_space(encoded)
            assert view.action_space(encoded) == (
                figure1_model.action_space(encoded)
            )
            assert view.candidate_actions(encoded) == (
                figure1_model.candidate_actions(encoded)
            )
            assert view.goal_space_labels(raw) == (
                figure1_model.goal_space_labels(raw)
            )
            assert view.action_space_labels(raw) == (
                figure1_model.action_space_labels(raw)
            )

    def test_repeated_query_served_from_cache(self, figure1_model):
        view = CachedModelView(figure1_model)
        encoded = figure1_model.encode_activity({"a1", "a2"})
        first = view.implementation_space(encoded)
        second = view.implementation_space(encoded)
        assert first is second
        stats = view.space_cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1

    def test_delegates_rest_of_query_surface(self, figure1_model):
        view = CachedModelView(figure1_model)
        assert view.num_implementations == figure1_model.num_implementations
        assert view.action_id("a1") == figure1_model.action_id("a1")
        assert view.wrapped is figure1_model

    def test_strategies_run_identically_through_view(self, figure1_model):
        reference = GoalRecommender(figure1_model)
        cached = GoalRecommender(CachedModelView(figure1_model))
        for strategy in ("breadth", "focus_cmp", "focus_cl", "best_match"):
            for raw in ({"a1"}, {"a1", "a2"}, {"a6"}):
                expected = reference.recommend(raw, k=10, strategy=strategy)
                actual = cached.recommend(raw, k=10, strategy=strategy)
                assert actual == expected


class TestCachingRecommender:
    @pytest.fixture
    def cached(self, figure1_model):
        return CachingRecommender(
            GoalRecommender(figure1_model), LRUCache(16, name="test")
        )

    def test_hit_returns_identical_object(self, cached):
        first, hit1 = cached.recommend({"a1"}, k=5)
        second, hit2 = cached.recommend({"a1"}, k=5)
        assert (hit1, hit2) == (False, True)
        assert second is first

    def test_key_includes_strategy_and_k(self, cached):
        cached.recommend({"a1"}, k=5, strategy="breadth")
        _, hit_other_k = cached.recommend({"a1"}, k=3, strategy="breadth")
        _, hit_other_strategy = cached.recommend(
            {"a1"}, k=5, strategy="focus_cmp"
        )
        assert hit_other_k is False
        assert hit_other_strategy is False

    def test_activity_order_does_not_matter(self, cached):
        cached.recommend(["a1", "a2"], k=5)
        _, hit = cached.recommend(["a2", "a1"], k=5)
        assert hit is True

    def test_cached_result_matches_reference(self, figure1_model, cached):
        reference = GoalRecommender(figure1_model)
        expected = reference.recommend({"a1", "a2"}, k=10)
        cached.recommend({"a1", "a2"}, k=10)
        result, hit = cached.recommend({"a1", "a2"}, k=10)
        assert hit is True
        assert result == expected


class TestGenerationKeying:
    """The generation prefix keeps shared caches safe across model swaps.

    Serving shares one LRU across generations; a request still in flight on
    a retired snapshot may store *after* the swap's ``clear()``.  Its entry
    must be unreachable from the new generation (frozen ids are
    re-densified on every freeze, so a cross-generation hit would be
    wrong, not merely stale).
    """

    def test_caching_recommender_generations_do_not_collide(
        self, figure1_model
    ):
        cache = LRUCache(16, name="gen")
        old = CachingRecommender(
            GoalRecommender(figure1_model), cache, generation=0
        )
        new = CachingRecommender(
            GoalRecommender(figure1_model), cache, generation=1
        )
        old.recommend({"a1"}, k=5)  # late store under generation 0
        _, hit = new.recommend({"a1"}, k=5)
        assert hit is False
        _, hit_same_gen = new.recommend({"a1"}, k=5)
        assert hit_same_gen is True

    def test_cached_model_view_generations_do_not_collide(self, figure1_model):
        cache = LRUCache(16, name="gen-space")
        old = CachedModelView(figure1_model, cache=cache, generation=0)
        new = CachedModelView(figure1_model, cache=cache, generation=1)
        encoded = figure1_model.encode_activity({"a1"})
        old.implementation_space(encoded)
        new.implementation_space(encoded)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 2)


def test_exports_available_from_core():
    from repro.core import CacheStats  # noqa: F401

    model = AssociationGoalModel.from_pairs([("g", {"a", "b"})])
    view = CachedModelView(model)
    assert view.num_implementations == 1


class TestCachedViewCsrEngine:
    def test_engine_memoized(self, figure1_model):
        view = CachedModelView(figure1_model)
        engine = view.csr_engine()
        if engine is None:
            pytest.skip("SciPy unavailable")
        assert view.csr_engine() is engine

    def test_recommender_over_view_auto_routes_with_parity(
        self, figure1_model
    ):
        view = CachedModelView(figure1_model)
        routed = GoalRecommender(view)
        if routed.csr_engine() is None:
            pytest.skip("SciPy unavailable")
        scalar = GoalRecommender(figure1_model, use_csr=False)
        for strategy in ("breadth", "focus_cmp", "focus_cl", "best_match"):
            for raw in ({"a1"}, {"a1", "a2"}, {"a6"}, set()):
                assert routed.recommend(raw, k=10, strategy=strategy) == (
                    scalar.recommend(raw, k=10, strategy=strategy)
                )
