"""Unit tests for the text tokenizer and action extractor."""

import pytest

from repro.text import (
    ActionExtractor,
    GoalStory,
    extract_implementations,
    normalize_phrase,
    sentences,
    words,
)
from repro.text.tokenizer import lemma_lite, strip_leading_prefixes


class TestTokenizer:
    def test_sentences_split_on_punctuation(self):
        assert sentences("First step. Second step! Third?") == [
            "First step", "Second step", "Third",
        ]

    def test_sentences_split_on_enumeration(self):
        text = "1. buy a notebook 2) write daily - review weekly"
        parts = sentences(text)
        assert "buy a notebook" in parts
        assert "write daily" in parts
        assert "review weekly" in parts

    def test_sentences_split_on_newlines(self):
        assert sentences("drink water\neat less") == ["drink water", "eat less"]

    def test_empty_text(self):
        assert sentences("") == []

    def test_words_lowercase(self):
        assert words("Drink MORE Water!") == ["drink", "more", "water"]

    def test_words_keep_hyphens_and_apostrophes(self):
        assert words("don't over-think") == ["don't", "over-think"]


class TestNormalization:
    def test_strip_leading_prefixes(self):
        assert strip_leading_prefixes(["i", "have", "stopped", "smoking"]) == [
            "stopped", "smoking",
        ]

    def test_lemma_lite_doubled_consonant(self):
        assert lemma_lite("stopped") == "stop"

    def test_lemma_lite_regular_ed(self):
        assert lemma_lite("walked") == "walk"

    def test_lemma_lite_ied(self):
        assert lemma_lite("studied") == "study"

    def test_lemma_lite_ing(self):
        assert lemma_lite("running") == "run"

    def test_lemma_lite_plural(self):
        assert lemma_lite("walks") == "walk"

    def test_lemma_lite_short_words_untouched(self):
        assert lemma_lite("red") == "red"

    def test_normalize_collapses_variants(self):
        a = normalize_phrase("I stopped eating at restaurants!")
        b = normalize_phrase("stop eating at restaurants")
        assert a == b == "stop eating at restaurants"

    def test_normalize_drops_stopwords(self):
        assert normalize_phrase("drink a lot of water") == "drink water"

    def test_normalize_empty_when_only_fillers(self):
        assert normalize_phrase("really just the") == ""


class TestExtractor:
    def test_imperative_step(self):
        extractor = ActionExtractor()
        assert extractor.extract_from_step("Drink more water") == "drink water"

    def test_first_person_past(self):
        extractor = ActionExtractor()
        assert (
            extractor.extract_from_step("I joined a gym")
            == "join gym"
        )

    def test_irregular_past(self):
        extractor = ActionExtractor()
        assert extractor.extract_from_step("I drank less soda") == "drink less soda"

    def test_non_action_sentence_rejected(self):
        extractor = ActionExtractor()
        assert extractor.extract_from_step("It was a wonderful year") is None

    def test_extra_verbs_extend_lexicon(self):
        base = ActionExtractor()
        extended = ActionExtractor(extra_verbs=["deploy"])
        assert base.extract_from_step("Deploy the service") is None
        assert extended.extract_from_step("Deploy the service") == "deploy service"

    def test_max_tokens_truncates(self):
        extractor = ActionExtractor(max_tokens=2)
        action = extractor.extract_from_step(
            "run five kilometers every single morning before breakfast"
        )
        assert action == "run five"

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            ActionExtractor(min_tokens=0)
        with pytest.raises(ValueError):
            ActionExtractor(min_tokens=3, max_tokens=2)

    def test_story_extraction_dedupes(self):
        story = GoalStory(
            goal="lose weight",
            text="I stopped eating at restaurants. Stop eating at restaurants! "
                 "Drank more water.",
        )
        actions = ActionExtractor().extract(story)
        assert actions == ["stop eating at restaurants", "drink water"]


class TestCorpusExtraction:
    def test_builds_library(self):
        stories = [
            GoalStory("lose weight", "I joined a gym. Drank more water."),
            GoalStory("get fit", "Join a gym; run every morning."),
            GoalStory("noise", "It was nice outside."),
        ]
        library = extract_implementations(stories)
        assert len(library) == 2  # the noise story yields nothing
        assert "join gym" in library.actions()

    def test_shared_actions_connect_goals(self):
        stories = [
            GoalStory("lose weight", "Join a gym. Eat less sugar."),
            GoalStory("get fit", "I joined a gym and then ran daily."),
        ]
        library = extract_implementations(stories)
        from repro.core import AssociationGoalModel

        model = AssociationGoalModel.from_library(library)
        goals = model.goal_space_labels({"join gym"})
        assert goals == {"lose weight", "get fit"}


class TestTrailingFillers:
    def test_filler_stripped(self):
        assert (
            normalize_phrase("i track my spending every single time")
            == "track spending"
        )

    def test_nested_fillers_stripped(self):
        from repro.text.tokenizer import strip_trailing_fillers

        tokens = "run fast every time each time".split()
        assert strip_trailing_fillers(tokens) == ["run", "fast"]

    def test_content_time_expressions_kept(self):
        assert normalize_phrase("run every morning") == "run every morning"
        assert (
            normalize_phrase("swim twice per week") == "swim twice per week"
        )

    def test_phrase_never_emptied_by_filler(self):
        # The guard requires len(tokens) > len(filler): a phrase that IS a
        # filler survives rather than normalizing to nothing.
        from repro.text.tokenizer import strip_trailing_fillers

        assert strip_trailing_fillers("every single time".split()) == [
            "every", "single", "time",
        ]
