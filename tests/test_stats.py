"""Unit tests for the bootstrap statistics module."""

import pytest

from repro.eval.stats import (
    ConfidenceInterval,
    bootstrap_ci,
    paired_bootstrap_test,
)
from repro.exceptions import EvaluationError


class TestBootstrapCI:
    def test_interval_brackets_mean(self):
        values = [0.1, 0.2, 0.3, 0.4, 0.5] * 10
        ci = bootstrap_ci(values, seed=0)
        assert ci.lower <= ci.mean <= ci.upper
        assert ci.mean == pytest.approx(0.3)

    def test_tight_for_constant_data(self):
        ci = bootstrap_ci([0.5] * 30, seed=0)
        assert ci.lower == pytest.approx(0.5)
        assert ci.upper == pytest.approx(0.5)

    def test_wider_for_noisier_data(self):
        calm = bootstrap_ci([0.5, 0.51, 0.49] * 10, seed=0)
        noisy = bootstrap_ci([0.1, 0.9, 0.2, 0.8, 0.5] * 6, seed=0)
        assert (noisy.upper - noisy.lower) > (calm.upper - calm.lower)

    def test_deterministic_given_seed(self):
        values = [0.2, 0.4, 0.6, 0.8]
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values, seed=7)

    def test_too_few_values_raise(self):
        with pytest.raises(EvaluationError):
            bootstrap_ci([0.5])

    def test_str_format(self):
        ci = ConfidenceInterval(mean=0.5, lower=0.4, upper=0.6, confidence=0.95)
        assert "95%" in str(ci)


class TestPairedBootstrap:
    def test_clear_winner_is_significant(self):
        a = [0.8, 0.9, 0.85, 0.95, 0.9] * 6
        b = [0.2, 0.3, 0.25, 0.35, 0.3] * 6
        result = paired_bootstrap_test(a, b, seed=0)
        assert result.mean_difference > 0.5
        assert result.significant()

    def test_identical_methods_not_significant(self):
        a = [0.5, 0.6, 0.4, 0.55] * 8
        result = paired_bootstrap_test(a, a, seed=0)
        assert result.mean_difference == 0.0
        assert not result.significant()

    def test_noisy_tie_not_significant(self):
        a = [0.5, 0.7, 0.3, 0.6, 0.4] * 4
        b = [0.6, 0.4, 0.5, 0.5, 0.5] * 4
        result = paired_bootstrap_test(a, b, seed=0)
        assert not result.significant(alpha=0.01)

    def test_one_sided_direction(self):
        worse = [0.1] * 20
        better = [0.9] * 20
        result = paired_bootstrap_test(worse, better, seed=0)
        assert result.mean_difference < 0
        assert not result.significant()

    def test_mismatched_lengths_raise(self):
        with pytest.raises(EvaluationError, match="aligned"):
            paired_bootstrap_test([0.5, 0.6], [0.5])

    def test_too_few_users_raise(self):
        with pytest.raises(EvaluationError):
            paired_bootstrap_test([0.5], [0.4])

    def test_p_value_in_unit_interval(self):
        a = [0.6, 0.5, 0.7, 0.4]
        b = [0.5, 0.5, 0.6, 0.5]
        result = paired_bootstrap_test(a, b, seed=3)
        assert 0.0 < result.p_value <= 1.0
