"""Unit tests for :mod:`repro.resilience` (no HTTP server involved).

Deadlines and the admission controller are driven with fake clocks, the
retry helper with a recording sleep, and the fault injector with explicit
seeds — nothing here sleeps for real, so the whole file runs in
milliseconds while still exercising expiry, saturation, backoff and
deterministic fault sequences.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.exceptions import ReproError, StorageError
from repro.resilience import (
    AdmissionController,
    Deadline,
    DeadlineExceededError,
    FaultInjectedError,
    FaultInjector,
    FaultRule,
    RetryPolicy,
    active_deadline,
    active_injector,
    check_deadline,
    clear_faults,
    deadline_scope,
    inject,
    install_faults,
    parse_fault_spec,
    retry_call,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------


class TestDeadline:
    def test_after_ms_expires_on_schedule(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(250, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining_seconds() == pytest.approx(0.25)
        clock.advance(0.2)
        assert not deadline.expired()
        clock.advance(0.06)
        assert deadline.expired()
        assert deadline.remaining_seconds() < 0

    def test_check_raises_with_stage_and_budget(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(10, clock=clock)
        deadline.check("rank")  # not expired: no-op
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("rank")
        assert excinfo.value.stage == "rank"
        assert "rank" in str(excinfo.value)
        assert "10 ms" in str(excinfo.value)

    def test_deadline_error_is_a_repro_error(self):
        # The HTTP layer relies on catching it *before* the generic
        # ReproError → 422 arm; being a ReproError keeps library callers'
        # blanket handlers working.
        assert issubclass(DeadlineExceededError, ReproError)

    def test_scope_installs_and_restores(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(50, clock=clock)
        assert active_deadline() is None
        with deadline_scope(deadline):
            assert active_deadline() is deadline
            with deadline_scope(None):  # explicit clearing nests
                assert active_deadline() is None
            assert active_deadline() is deadline
        assert active_deadline() is None

    def test_check_deadline_is_noop_without_scope(self):
        check_deadline("rank")  # must not raise

    def test_check_deadline_raises_inside_scope(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(10, clock=clock)
        clock.advance(1.0)
        with deadline_scope(deadline):
            with pytest.raises(DeadlineExceededError):
                check_deadline("batch")


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


class TestAdmissionController:
    def test_admits_up_to_max_inflight(self):
        controller = AdmissionController(max_inflight=2, max_queue=0)
        assert controller.try_acquire() == (True, None)
        assert controller.try_acquire() == (True, None)
        assert controller.active() == 2

    def test_sheds_saturated_when_queue_full(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        assert controller.try_acquire() == (True, None)
        assert controller.try_acquire() == (False, "saturated")

    def test_sheds_queue_timeout_with_zero_budget(self):
        controller = AdmissionController(
            max_inflight=1, max_queue=4, queue_timeout_seconds=0.0
        )
        assert controller.try_acquire() == (True, None)
        assert controller.try_acquire() == (False, "queue_timeout")

    def test_expired_deadline_never_waits(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_inflight=1, max_queue=4, queue_timeout_seconds=30.0
        )
        assert controller.try_acquire() == (True, None)
        deadline = Deadline.after_ms(10, clock=clock)
        clock.advance(1.0)
        admitted, reason = controller.try_acquire(deadline)
        assert (admitted, reason) == (False, "queue_timeout")

    def test_release_wakes_a_waiter(self):
        controller = AdmissionController(
            max_inflight=1, max_queue=4, queue_timeout_seconds=5.0
        )
        assert controller.try_acquire() == (True, None)
        results = []
        entered = threading.Event()

        def waiter():
            entered.set()
            results.append(controller.try_acquire())

        thread = threading.Thread(target=waiter)
        thread.start()
        entered.wait(2.0)
        # Give the waiter time to reach the condition wait, then free
        # the slot; it must be admitted, not timed out.
        while controller.waiting() == 0:
            pass
        controller.release()
        thread.join(2.0)
        assert results == [(True, None)]
        assert controller.active() == 1
        assert controller.waiting() == 0

    def test_release_without_acquire_raises(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        with pytest.raises(RuntimeError):
            controller.release()

    def test_rejects_invalid_limits(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0, max_queue=0)
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=1, max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionController(
                max_inflight=1, max_queue=0, queue_timeout_seconds=-0.1
            )


# ----------------------------------------------------------------------
# Retry
# ----------------------------------------------------------------------


class TestRetry:
    def test_policy_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=5,
            base_delay_seconds=0.05,
            max_delay_seconds=0.15,
            multiplier=2.0,
        )
        assert [policy.delay_for(a) for a in (1, 2, 3, 4)] == [
            0.05, 0.1, 0.15, 0.15,
        ]

    def test_policy_validates(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_seconds=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_retries_then_succeeds(self):
        sleeps: list[float] = []
        retries: list[int] = []
        attempts = {"n": 0}

        def flaky() -> str:
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise StorageError("transient")
            return "ok"

        result = retry_call(
            flaky,
            RetryPolicy(max_attempts=3),
            retry_on=(StorageError,),
            sleep=sleeps.append,
            on_retry=lambda attempt, exc: retries.append(attempt),
        )
        assert result == "ok"
        assert attempts["n"] == 3
        assert sleeps == [0.05, 0.1]  # deterministic, no jitter
        assert retries == [1, 2]

    def test_final_exception_propagates_unwrapped(self):
        def always_fails() -> None:
            raise StorageError("permanent")

        with pytest.raises(StorageError, match="permanent"):
            retry_call(
                always_fails,
                RetryPolicy(max_attempts=3),
                retry_on=(StorageError,),
                sleep=lambda _s: None,
            )

    def test_non_matching_exception_is_not_retried(self):
        attempts = {"n": 0}

        def wrong_kind() -> None:
            attempts["n"] += 1
            raise KeyError("nope")

        with pytest.raises(KeyError):
            retry_call(
                wrong_kind,
                RetryPolicy(max_attempts=5),
                retry_on=(StorageError,),
                sleep=lambda _s: None,
            )
        assert attempts["n"] == 1


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    clear_faults()


class TestFaultSpecParsing:
    def test_full_spec(self):
        injector = parse_fault_spec(
            "seed=7,storage:exception:0.5,model:latency:1.0:25"
        )
        assert injector is not None
        assert injector._rules["storage"][0] == FaultRule(
            "storage", "exception", 0.5, 10.0
        )
        assert injector._rules["model"][0] == FaultRule(
            "model", "latency", 1.0, 25.0
        )

    def test_defaults(self):
        injector = parse_fault_spec("cache:slow_storage")
        (rule,) = injector._rules["cache"]
        assert rule.probability == 1.0
        assert rule.delay_ms == 10.0

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "seed=7",                   # no rules
            "seed=x,model:latency",     # malformed seed
            "model",                    # too few parts
            "model:latency:1:2:3",      # too many parts
            "nowhere:latency",          # unknown site
            "model:nothing",            # unknown kind
            "model:latency:1.5",        # probability out of range
            "model:latency:p",          # non-numeric probability
            "model:latency:1.0:-5",     # negative delay
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)


class TestFaultInjector:
    def test_exception_rule_raises_with_site(self):
        injector = FaultInjector([FaultRule("model", "exception")])
        with pytest.raises(FaultInjectedError) as excinfo:
            injector.fire("model")
        assert excinfo.value.site == "model"

    def test_latency_rule_sleeps_for_delay(self):
        sleeps: list[float] = []
        injector = FaultInjector(
            [FaultRule("cache", "latency", delay_ms=25.0)],
            sleep=sleeps.append,
        )
        injector.fire("cache")
        assert sleeps == [0.025]

    def test_unconfigured_site_is_noop(self):
        injector = FaultInjector([FaultRule("model", "exception")])
        injector.fire("storage")  # must not raise or sleep

    def test_probability_sequence_is_seed_deterministic(self):
        def run(seed: int) -> list[bool]:
            injector = FaultInjector(
                [FaultRule("storage", "exception", probability=0.5)],
                seed=seed,
            )
            fired = []
            for _ in range(32):
                try:
                    injector.fire("storage")
                except FaultInjectedError:
                    fired.append(True)
                else:
                    fired.append(False)
            return fired

        assert run(7) == run(7)
        assert run(7) != run(8)  # astronomically unlikely to collide
        # The decision sequence is exactly the seeded RNG's stream.
        rng = random.Random(7)
        assert run(7) == [rng.random() < 0.5 for _ in range(32)]

    def test_injected_counts(self):
        injector = FaultInjector(
            [FaultRule("model", "latency", delay_ms=0.0)],
        )
        injector.fire("model")
        injector.fire("model")
        assert injector.injected_counts() == {("model", "latency"): 2}

    def test_install_and_clear(self):
        assert active_injector() is None
        inject("model")  # inert without an injector
        injector = FaultInjector([FaultRule("model", "exception")])
        install_faults(injector)
        assert active_injector() is injector
        with pytest.raises(FaultInjectedError):
            inject("model")
        clear_faults()
        assert active_injector() is None
        inject("model")  # inert again


class TestRetryingStore:
    def test_load_retries_injected_storage_faults(self, tmp_path):
        from repro.core.library import ImplementationLibrary
        from repro.storage import JsonLibraryStore, RetryingLibraryStore

        library = ImplementationLibrary()
        library.add_pair("olivier salad", ["potatoes", "carrots"])
        path = tmp_path / "library.json"
        JsonLibraryStore(path).save(library)

        # Probability 0.5 with seed 7: replicate the decision stream to
        # confirm the first two attempts fault and the third passes.
        rng = random.Random(7)
        draws = [rng.random() < 0.5 for _ in range(3)]
        assert draws == [True, True, False], (
            "seed 7 must fault exactly twice first; pick another seed if "
            "the RNG stream ever changes"
        )
        install_faults(
            FaultInjector(
                [FaultRule("storage", "exception", probability=0.5)], seed=7
            )
        )
        sleeps: list[float] = []
        store = RetryingLibraryStore(
            JsonLibraryStore(path), sleep=sleeps.append
        )
        loaded = store.load()
        assert list(loaded)[0].goal == "olivier salad"
        assert sleeps == [0.05, 0.1]
        counts = active_injector().injected_counts()
        assert counts == {("storage", "exception"): 2}

    def test_load_gives_up_after_max_attempts(self, tmp_path):
        from repro.core.library import ImplementationLibrary
        from repro.storage import JsonLibraryStore, RetryingLibraryStore

        library = ImplementationLibrary()
        library.add_pair("olivier salad", ["potatoes"])
        path = tmp_path / "library.json"
        JsonLibraryStore(path).save(library)
        install_faults(
            FaultInjector([FaultRule("storage", "exception")])  # p = 1.0
        )
        store = RetryingLibraryStore(
            JsonLibraryStore(path), sleep=lambda _s: None
        )
        with pytest.raises(FaultInjectedError):
            store.load()
        counts = active_injector().injected_counts()
        assert counts == {("storage", "exception"): 3}

    def test_save_and_exists_pass_through(self, tmp_path):
        from repro.core.library import ImplementationLibrary
        from repro.storage import JsonLibraryStore, RetryingLibraryStore

        store = RetryingLibraryStore(JsonLibraryStore(tmp_path / "l.json"))
        assert not store.exists()
        library = ImplementationLibrary()
        library.add_pair("olivier salad", ["potatoes"])
        store.save(library)
        assert store.exists()
        assert len(list(store.load())) == 1
