"""Unit tests for the rank-fusion ensemble strategy."""

import pytest

from repro.core import AssociationGoalModel
from repro.core.strategies import create_strategy
from repro.core.strategies.ensemble import EnsembleStrategy
from repro.exceptions import RecommendationError


class TestConstruction:
    def test_requires_two_members(self):
        with pytest.raises(RecommendationError, match="two member"):
            EnsembleStrategy(members=("breadth",))

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            EnsembleStrategy(method="median")

    def test_invalid_pool_rejected(self):
        with pytest.raises(ValueError):
            EnsembleStrategy(pool_size=0)

    def test_unknown_member_rejected(self):
        from repro.exceptions import StrategyNotFoundError

        with pytest.raises(StrategyNotFoundError):
            EnsembleStrategy(members=("breadth", "nope"))

    def test_registry(self):
        strategy = create_strategy(
            "ensemble", members=("breadth", "focus_cmp")
        )
        assert isinstance(strategy, EnsembleStrategy)

    def test_name_encodes_members(self):
        strategy = EnsembleStrategy(members=("breadth", "focus_cl"))
        assert "breadth+focus_cl" in strategy.name


class TestFusion:
    @pytest.fixture
    def model(self, figure1_model):
        return figure1_model

    @pytest.fixture
    def activity(self, model):
        return model.encode_activity({"a1"})

    def test_consensus_candidate_wins_rrf(self, model, activity):
        """An action all members rank first must top the fused list."""
        ensemble = EnsembleStrategy(members=("breadth", "breadth"))
        member = create_strategy("breadth")
        assert (
            ensemble.rank(model, activity, 1)[0][0]
            == member.rank(model, activity, 1)[0][0]
        )

    def test_fused_candidates_subset_of_member_pools(self, model, activity):
        ensemble = EnsembleStrategy(
            members=("focus_cmp", "best_match"), pool_size=3
        )
        pool: set[int] = set()
        for name in ("focus_cmp", "best_match"):
            pool |= {
                aid
                for aid, _ in create_strategy(name).rank(model, activity, 3)
            }
        fused = {aid for aid, _ in ensemble.rank(model, activity, 10)}
        assert fused <= pool

    def test_borda_scores_positive_integers(self, model, activity):
        ensemble = EnsembleStrategy(
            members=("breadth", "focus_cmp"), method="borda", pool_size=10
        )
        for _, score in ensemble.rank(model, activity, 5):
            assert score > 0
            assert score == int(score)

    def test_rrf_scores_bounded(self, model, activity):
        ensemble = EnsembleStrategy(
            members=("breadth", "focus_cmp"), rrf_k=60
        )
        for _, score in ensemble.rank(model, activity, 5):
            assert 0 < score <= 2 / 61  # two members, best rank 1

    def test_never_recommends_activity(self, model, activity):
        ensemble = EnsembleStrategy(members=("breadth", "best_match"))
        ranked = ensemble.rank(model, activity, 10)
        assert not {aid for aid, _ in ranked} & activity

    def test_deterministic(self, model, activity):
        ensemble = EnsembleStrategy(members=("breadth", "focus_cl"))
        assert ensemble.rank(model, activity, 5) == ensemble.rank(
            model, activity, 5
        )

    def test_disagreeing_members_fuse(self):
        """A candidate ranked well by both members beats one-member stars."""
        model = AssociationGoalModel.from_pairs(
            [
                ("near", {"h1", "h2", "both"}),       # focus loves 'both'
                ("wide1", {"h1", "both"}),            # breadth loves 'both'
                ("wide2", {"h2", "both"}),
                ("far", {"h1", "x", "y", "z", "w"}),  # focus-only candidates
            ]
        )
        activity = model.encode_activity({"h1", "h2"})
        ensemble = EnsembleStrategy(members=("focus_cmp", "breadth"))
        top = ensemble.rank(model, activity, 1)[0][0]
        assert model.action_label(top) == "both"

    def test_via_facade(self, figure1_recommender):
        result = figure1_recommender.recommend(
            {"a1"}, k=3, strategy="ensemble",
            members=("breadth", "focus_cmp"),
        )
        assert len(result) == 3
