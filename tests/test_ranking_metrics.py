"""Unit tests for the standard ranking metrics."""

import pytest

from repro.core.entities import RecommendationList, ScoredAction
from repro.eval.ranking_metrics import (
    average_over_users,
    average_precision,
    ndcg_at,
    precision_at,
    recall_at,
    reciprocal_rank,
)
from repro.exceptions import EvaluationError


def rec(*actions):
    return RecommendationList(
        strategy="t",
        items=tuple(
            ScoredAction(a, float(len(actions) - i))
            for i, a in enumerate(actions)
        ),
    )


HIDDEN = frozenset({"x", "y"})


class TestPrecision:
    def test_all_relevant(self):
        assert precision_at(2)(rec("x", "y"), HIDDEN) == 1.0

    def test_half_relevant(self):
        assert precision_at(4)(rec("x", "a", "y", "b"), HIDDEN) == 0.5

    def test_short_list_penalized(self):
        assert precision_at(4)(rec("x"), HIDDEN) == 0.25

    def test_invalid_k(self):
        with pytest.raises(EvaluationError):
            precision_at(0)

    def test_empty_hidden_raises(self):
        with pytest.raises(EvaluationError):
            precision_at(2)(rec("x"), frozenset())


class TestRecall:
    def test_full_recall(self):
        assert recall_at(5)(rec("x", "y", "a"), HIDDEN) == 1.0

    def test_partial_recall(self):
        assert recall_at(5)(rec("x", "a"), HIDDEN) == 0.5

    def test_cutoff_limits(self):
        assert recall_at(1)(rec("a", "x", "y"), HIDDEN) == 0.0


class TestReciprocalRank:
    def test_first_position(self):
        assert reciprocal_rank(rec("x", "a"), HIDDEN) == 1.0

    def test_third_position(self):
        assert reciprocal_rank(rec("a", "b", "y"), HIDDEN) == pytest.approx(1 / 3)

    def test_no_hit(self):
        assert reciprocal_rank(rec("a", "b"), HIDDEN) == 0.0


class TestAveragePrecision:
    def test_perfect_prefix(self):
        assert average_precision(rec("x", "y", "a"), HIDDEN) == 1.0

    def test_interleaved(self):
        # hits at ranks 1 and 3: (1/1 + 2/3) / 2
        value = average_precision(rec("x", "a", "y"), HIDDEN)
        assert value == pytest.approx((1.0 + 2 / 3) / 2)

    def test_no_hits(self):
        assert average_precision(rec("a", "b"), HIDDEN) == 0.0

    def test_empty_list(self):
        assert average_precision(rec(), HIDDEN) == 0.0

    def test_short_list_normalization(self):
        # One-slot list holding a relevant item: AP = 1, not 1/2.
        assert average_precision(rec("x"), HIDDEN) == 1.0


class TestNdcg:
    def test_ideal_ordering(self):
        assert ndcg_at(3)(rec("x", "y", "a"), HIDDEN) == pytest.approx(1.0)

    def test_late_hits_discounted(self):
        early = ndcg_at(3)(rec("x", "a", "b"), HIDDEN)
        late = ndcg_at(3)(rec("a", "b", "x"), HIDDEN)
        assert early > late

    def test_no_hits_zero(self):
        assert ndcg_at(3)(rec("a", "b", "c"), HIDDEN) == 0.0

    def test_bounded(self):
        value = ndcg_at(5)(rec("a", "x", "b", "y"), HIDDEN)
        assert 0.0 < value < 1.0

    def test_invalid_k(self):
        with pytest.raises(EvaluationError):
            ndcg_at(-1)


class TestAverageOverUsers:
    def test_mean_computed(self):
        lists = [rec("x"), rec("a")]
        hidden = [{"x"}, {"z"}]
        value = average_over_users(precision_at(1), lists, hidden)
        assert value == pytest.approx(0.5)

    def test_empty_hidden_users_skipped(self):
        lists = [rec("x"), rec("a")]
        hidden = [{"x"}, set()]
        value = average_over_users(precision_at(1), lists, hidden)
        assert value == 1.0

    def test_all_empty_raises(self):
        with pytest.raises(EvaluationError, match="non-empty"):
            average_over_users(precision_at(1), [rec("x")], [set()])

    def test_mismatch_raises(self):
        with pytest.raises(EvaluationError, match="mismatched"):
            average_over_users(precision_at(1), [rec("x")], [])

    def test_with_harness_outputs(self, fortythree_tiny):
        from repro.eval import ExperimentHarness

        harness = ExperimentHarness(fortythree_tiny, k=10, max_users=15, seed=0)
        lists = harness.run_goal_method("breadth")
        value = average_over_users(
            ndcg_at(10), lists, harness.hidden_sets()
        )
        assert 0.0 <= value <= 1.0
