"""Integration tests for the cached, batched, hot-reloadable serving layer.

Covers ``POST /recommend/batch`` (parity with the single-request path),
``PUT /model/implementations`` / ``DELETE /model/implementations/<id>``
(hot reload with generation bumps and cache invalidation), ``GET /model``,
the hardened edge cases (malformed ``Content-Length``, invalid ``k``), the
empty-model lifecycle, and a concurrency hammer mixing reads with hot
mutations.
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.core import AssociationGoalModel
from repro.obs.metrics import MetricsRegistry
from repro.service import RecommenderService

PAIRS = [
    ("olivier salad", {"potatoes", "carrots", "pickles"}),
    ("mashed potatoes", {"potatoes", "nutmeg", "butter"}),
    ("pan-fried carrots", {"carrots", "nutmeg", "oil"}),
]


@pytest.fixture
def service(request):
    """A service writing into a fresh process-wide registry.

    Metric-count assertions need isolation from the rest of the suite —
    the default registry is process-global and accumulates.
    """
    previous_registry = obs.set_registry(MetricsRegistry())
    model = AssociationGoalModel.from_pairs(PAIRS)
    server = RecommenderService(model, port=0).start()

    def teardown():
        server.stop()
        obs.disable()
        obs.set_registry(previous_registry)

    request.addfinalizer(teardown)
    return server


def call(service, path, payload=None, method=None):
    url = f"http://127.0.0.1:{service.port}{path}"
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data else "GET"),
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            raw = response.read()
            parsed = (
                json.loads(raw)
                if response.headers.get("Content-Type", "").startswith(
                    "application/json"
                )
                else raw.decode("utf-8")
            )
            return response.status, parsed
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestBatchEndpoint:
    def test_batch_matches_single_requests(self, service):
        activities = [["potatoes", "carrots"], ["potatoes"], ["oil"], []]
        status, body = call(
            service, "/recommend/batch",
            {"activities": activities, "k": 5, "strategy": "breadth"},
        )
        assert status == 200
        assert body["count"] == len(activities)
        for activity, rows in zip(activities, body["results"]):
            single_status, single = call(
                service, "/recommend",
                {"activity": activity, "k": 5, "strategy": "breadth"},
            )
            assert single_status == 200
            assert rows == single["recommendations"]

    def test_batch_carries_generation(self, service):
        status, body = call(
            service, "/recommend/batch", {"activities": [["potatoes"]]}
        )
        assert status == 200
        assert body["generation"] == 0
        assert body["strategy"] == "breadth"

    def test_batch_validates_activities_shape(self, service):
        for bad in (None, "nope", [["ok"], "not-a-list"], [[1, 2]]):
            status, body = call(
                service, "/recommend/batch", {"activities": bad}
            )
            assert status == 400
            assert "activities" in body["error"]

    def test_batch_validates_k(self, service):
        status, body = call(
            service, "/recommend/batch",
            {"activities": [["potatoes"]], "k": 0},
        )
        assert status == 400
        assert "positive" in body["error"]

    def test_batch_rejects_unknown_strategy(self, service):
        status, body = call(
            service, "/recommend/batch",
            {"activities": [["potatoes"]], "strategy": "nope"},
        )
        assert status == 400

    def test_batch_counts_metrics(self, service):
        call(service, "/recommend/batch", {"activities": [["potatoes"], []]})
        _, text = call(service, "/metrics")
        assert 'repro_batch_requests_total{strategy="breadth"} 1' in text
        assert 'repro_batch_activities_total{strategy="breadth"} 2' in text


class TestHotReload:
    def test_put_adds_implementations_and_bumps_generation(self, service):
        status, body = call(
            service, "/model/implementations",
            {
                "implementations": [
                    {"goal": "soup", "actions": ["potatoes", "leek", "salt"]}
                ]
            },
            method="PUT",
        )
        assert status == 200
        assert body["generation"] == 1
        assert body["implementations"] == 4
        assert len(body["added"]) == 1
        # The new implementation is immediately recommendable.
        status, rec = call(
            service, "/recommend", {"activity": ["leek"], "k": 5}
        )
        assert status == 200
        actions = [row["action"] for row in rec["recommendations"]]
        assert "salt" in actions

    def test_delete_removes_implementation(self, service):
        status, body = call(
            service, "/model/implementations/0", method="DELETE"
        )
        assert status == 200
        assert body == {
            "removed": 0, "generation": 1, "implementations": 2
        }
        # "pickles" only appeared in implementation 0.
        status, rec = call(
            service, "/recommend",
            {"activity": ["potatoes", "carrots"], "k": 5},
        )
        actions = [row["action"] for row in rec["recommendations"]]
        assert "pickles" not in actions

    def test_delete_unknown_id_404(self, service):
        status, body = call(
            service, "/model/implementations/99", method="DELETE"
        )
        assert status == 404
        assert "99" in body["error"]

    def test_delete_non_integer_id_400(self, service):
        status, body = call(
            service, "/model/implementations/banana", method="DELETE"
        )
        assert status == 400

    def test_put_validates_shapes(self, service):
        for bad in (
            {},
            {"implementations": []},
            {"implementations": ["nope"]},
            {"implementations": [{"goal": "g"}]},
            {"implementations": [{"goal": "g", "actions": []}]},
            {"implementations": [{"goal": 3, "actions": ["a"]}]},
            {"implementations": [{"goal": "g", "actions": [1]}]},
        ):
            status, body = call(
                service, "/model/implementations", bad, method="PUT"
            )
            assert status == 400, bad

    def test_mutation_invalidates_recommendation_cache(self, service):
        payload = {"activity": ["potatoes", "carrots"], "k": 5}
        _, first = call(service, "/recommend", payload)
        _, second = call(service, "/recommend", payload)
        assert first["cached"] is False
        assert second["cached"] is True
        call(
            service, "/model/implementations",
            {"implementations": [{"goal": "soup", "actions": ["potatoes"]}]},
            method="PUT",
        )
        _, third = call(service, "/recommend", payload)
        assert third["cached"] is False
        assert third["generation"] == 1

    def test_reload_visible_in_metrics(self, service):
        call(
            service, "/model/implementations",
            {"implementations": [{"goal": "soup", "actions": ["potatoes"]}]},
            method="PUT",
        )
        call(service, "/model/implementations/0", method="DELETE")
        _, text = call(service, "/metrics")
        assert 'repro_model_reloads_total{op="add"} 1' in text
        assert 'repro_model_reloads_total{op="remove"} 1' in text
        assert "repro_model_generation 2" in text
        assert (
            'repro_cache_invalidations_total{cache="recommendations"} 2'
            in text
        )
        assert (
            'repro_cache_invalidations_total{cache="implementation_space"} 2'
            in text
        )

    def test_wrong_methods_on_reload_routes_405(self, service):
        status, _ = call(
            service, "/model/implementations", {"x": 1}, method="POST"
        )
        assert status == 405
        status, _ = call(
            service, "/model/implementations/0", {"x": 1}, method="POST"
        )
        assert status == 405


class TestEmptyModelLifecycle:
    def test_remove_all_then_add_again(self, service):
        for pid in range(3):
            status, _ = call(
                service, f"/model/implementations/{pid}", method="DELETE"
            )
            assert status == 200
        status, health = call(service, "/health")
        assert status == 200
        assert health["implementations"] == 0
        assert health["library"]["connectivity"] == 0.0
        assert health["library"]["avg_implementations_per_goal"] == 0.0
        # Read endpoints degrade to empty results, not 500s.
        status, body = call(
            service, "/recommend", {"activity": ["potatoes"], "k": 5}
        )
        assert status == 200
        assert body["recommendations"] == []
        status, body = call(
            service, "/recommend/batch", {"activities": [["potatoes"]]}
        )
        assert status == 200
        assert body["results"] == [[]]
        status, body = call(
            service, "/spaces", {"activity": ["potatoes"]}
        )
        assert status == 200
        assert body == {"goal_space": [], "action_space": []}
        status, _ = call(
            service, "/related", {"action": "potatoes", "k": 3}
        )
        assert status == 422
        # Adding again revives the service; ids keep growing.
        status, body = call(
            service, "/model/implementations",
            {
                "implementations": [
                    {"goal": "olivier salad",
                     "actions": ["potatoes", "carrots", "pickles"]}
                ]
            },
            method="PUT",
        )
        assert status == 200
        assert body["added"] == [3]
        assert body["generation"] == 4
        status, rec = call(
            service, "/recommend",
            {"activity": ["potatoes", "carrots"], "k": 5},
        )
        assert status == 200
        assert [row["action"] for row in rec["recommendations"]] == ["pickles"]

    def test_unknown_strategy_422_regardless_of_model_state(self, service):
        payload = {"activity": ["potatoes"], "strategy": "nope"}
        status, body = call(service, "/recommend", payload)
        assert status == 422
        assert "nope" in body["error"]
        for pid in range(3):
            call(service, f"/model/implementations/{pid}", method="DELETE")
        # The empty-model short-circuit must validate the same way.
        status, body = call(service, "/recommend", payload)
        assert status == 422
        assert "nope" in body["error"]
        status, body = call(
            service, "/recommend", {"activity": ["potatoes"]}
        )
        assert status == 200
        assert body["recommendations"] == []


class TestStaleSnapshotIsolation:
    def test_late_store_from_old_generation_cannot_poison_new(self, service):
        """An in-flight request of a retired snapshot must stay invisible.

        A reader resolves the snapshot, then a hot mutation swaps the
        generation and clears the caches, and only *then* does the reader
        finish and store into the shared LRUs.  Without the generation in
        the key those late entries would answer new-generation lookups
        with rankings over retired (and re-densified) implementation ids.
        """
        manager = service.manager
        activity = ["potatoes", "carrots"]
        old_snap = manager.snapshot()
        # The model mutates while the old-generation request is in flight:
        # implementation 0 (olivier salad, the only one with "pickles")
        # goes away and the swap clears both caches.
        status, _ = call(service, "/model/implementations/0", method="DELETE")
        assert status == 200
        # The old-generation request now finishes, storing its result (and
        # its IS(H) sub-query) into the shared caches *after* the clear.
        stale, hit = old_snap.caching_recommender.recommend(
            activity, k=5, strategy="breadth"
        )
        assert hit is False
        assert "pickles" in [str(item.action) for item in stale]
        old_view = old_snap.recommender.model
        old_view.implementation_space(old_view.encode_activity(activity))
        # A new-generation request must recompute, not hit the stale entry.
        result, hit, generation = manager.recommend(activity, 5, "breadth")
        assert hit is False
        assert generation == 1
        assert "pickles" not in [str(item.action) for item in result]
        # ... and the old generation's entries never come back: repeating
        # the request hits the cache and still excludes the retired
        # implementation.
        repeat, hit, _ = manager.recommend(activity, 5, "breadth")
        assert hit is True
        assert repeat == result


class TestAtomicAdds:
    def test_invalid_pair_leaves_state_untouched(self, service):
        """A bad pair anywhere in the batch must not half-apply the adds."""
        from repro.exceptions import ModelError

        manager = service.manager
        before = manager.stats()
        with pytest.raises(ModelError, match="no actions"):
            manager.add_implementations(
                [("soup", ["leek", "salt"]), ("broken", [])]
            )
        assert manager.stats() == before
        assert manager.generation == 0


class TestModelEndpoint:
    def test_reports_generation_and_cache_stats(self, service):
        call(service, "/recommend", {"activity": ["potatoes"], "k": 5})
        call(service, "/recommend", {"activity": ["potatoes"], "k": 5})
        status, body = call(service, "/model")
        assert status == 200
        assert body["generation"] == 0
        assert body["implementations"] == 3
        assert body["max_implementation_id"] == 2
        rec_stats = body["caches"]["recommendations"]
        assert rec_stats["hits"] == 1
        assert rec_stats["misses"] == 1
        assert rec_stats["hit_rate"] == pytest.approx(0.5)
        assert body["caches"]["implementation_space"]["maxsize"] == 4096


class TestHardenedEdgeCases:
    def _raw_request(self, service, request_bytes: bytes) -> bytes:
        with socket.create_connection(
            ("127.0.0.1", service.port), timeout=10
        ) as conn:
            conn.sendall(request_bytes)
            chunks = []
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    def test_malformed_content_length_400(self, service):
        response = self._raw_request(
            service,
            b"POST /recommend HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Length: banana\r\n"
            b"Connection: close\r\n\r\n",
        )
        status_line, _, rest = response.partition(b"\r\n")
        assert b"400" in status_line
        assert b"malformed Content-Length" in rest
        # ... and it lands in the error counters, not as a 500.
        _, text = call(service, "/metrics")
        assert (
            'repro_http_errors_total{endpoint="/recommend",status="400"} 1'
            in text
        )

    def test_malformed_content_length_on_related_400(self, service):
        response = self._raw_request(
            service,
            b"POST /related HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Length: 12banana\r\n"
            b"Connection: close\r\n\r\n",
        )
        assert b"400" in response.partition(b"\r\n")[0]

    def test_non_positive_k_on_related_400(self, service):
        status, body = call(
            service, "/related", {"action": "nutmeg", "k": 0}
        )
        assert status == 400
        assert "positive" in body["error"]

    def test_boolean_k_on_related_400(self, service):
        status, _ = call(
            service, "/related", {"action": "nutmeg", "k": True}
        )
        assert status == 400

    def test_client_disconnect_recorded_as_499(self, service, monkeypatch):
        """A dropped connection is accounted as 499, not re-raised."""
        from repro import service as service_module

        def drop(handler) -> None:
            raise BrokenPipeError("client went away")

        monkeypatch.setattr(service_module._Handler, "_handle_health", drop)
        with socket.create_connection(
            ("127.0.0.1", service.port), timeout=10
        ) as conn:
            conn.sendall(
                b"GET /health HTTP/1.1\r\n"
                b"Host: localhost\r\n"
                b"Connection: close\r\n\r\n"
            )
            chunks = []
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        # Nothing was written for the aborted request ...
        assert b"".join(chunks) == b""
        # ... and it is accounted under the 499 sentinel, not status 0.
        _, text = call(service, "/metrics")
        assert (
            'repro_http_requests_total'
            '{endpoint="/health",method="GET",status="499"} 1'
        ) in text

    def test_errors_counted_per_endpoint(self, service):
        call(service, "/recommend", {"activity": ["potatoes"], "k": -3})
        call(service, "/recommend", {"activity": ["potatoes"], "k": "x"})
        call(service, "/related", {"action": "nutmeg", "k": -1})
        _, text = call(service, "/metrics")
        assert (
            'repro_http_errors_total{endpoint="/recommend",status="400"} 2'
            in text
        )
        assert (
            'repro_http_errors_total{endpoint="/related",status="400"} 1'
            in text
        )


class TestConcurrentReloads:
    def test_reads_stay_consistent_while_model_mutates(self, service):
        """Hammer /recommend from several threads during add/remove cycles.

        Every response must be a well-formed 200 whose recommendations are
        one of the two valid worlds (pickles present or absent) — never a
        500, never a torn read mixing generations.
        """
        payload = json.dumps(
            {"activity": ["potatoes", "carrots"], "k": 5}
        ).encode()
        url = f"http://127.0.0.1:{service.port}/recommend"
        errors: list[str] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                request = urllib.request.Request(
                    url, data=payload,
                    headers={"Content-Type": "application/json"},
                )
                try:
                    with urllib.request.urlopen(request, timeout=10) as resp:
                        body = json.loads(resp.read())
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(f"{type(exc).__name__}: {exc}")
                    return
                actions = [
                    row["action"] for row in body["recommendations"]
                ]
                if actions and actions[0] not in ("pickles", "nutmeg"):
                    errors.append(f"unexpected head: {actions}")
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            impl = {
                "implementations": [
                    {"goal": "olivier salad",
                     "actions": ["potatoes", "carrots", "pickles"]}
                ]
            }
            pid = 0
            for _ in range(10):
                status, _ = call(
                    service, f"/model/implementations/{pid}", method="DELETE"
                )
                assert status == 200
                status, body = call(
                    service, "/model/implementations", impl, method="PUT"
                )
                assert status == 200
                pid = body["added"][0]
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []
        status, body = call(service, "/model")
        assert status == 200
        assert body["generation"] == 20
