"""Pragma corpus: the same RL001 violations as guarded_bad, suppressed.

The trailing form suppresses its own line; the standalone form suppresses
the next line.  ``tests/test_analysis.py`` re-lints this file with the
pragmas stripped to prove they are what keeps it clean.
"""

import threading

_GUARDED_BY = {"Tally._n": "_lock"}


class Tally:
    def __init__(self):
        self._lock = threading.Lock()
        self._n = 0

    def peek(self):
        return self._n  # repro-lint: disable=RL001

    def poke(self):
        # repro-lint: disable=RL001
        self._n += 1
