"""Known-good RL003 corpus: literal, conventional, registered once."""


def register(registry):
    registry.counter("repro_requests_total", "Requests served.").inc()
    registry.gauge("repro_queue_depth", "Requests in flight.").set(3)
    registry.histogram("repro_request_seconds", "Request latency.").observe(0.1)
    registry.histogram("repro_payload_bytes", "Payload size.").observe(512)


def register_with_exemplar(registry):
    # An exemplar-carrying histogram registers like any other family: the
    # exemplar is captured per observation (from the ambient request id),
    # not declared at the registration site, so the rule sees one literal,
    # conventional name — and accessor calls like exemplars() are not
    # registration sites at all.
    histogram = registry.histogram(
        "repro_exemplar_request_seconds",
        "Request latency with exemplar capture enabled.",
    )
    histogram.observe(0.05)
    return histogram.exemplars()
