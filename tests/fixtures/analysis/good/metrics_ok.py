"""Known-good RL003 corpus: literal, conventional, registered once."""


def register(registry):
    registry.counter("repro_requests_total", "Requests served.").inc()
    registry.gauge("repro_queue_depth", "Requests in flight.").set(3)
    registry.histogram("repro_request_seconds", "Request latency.").observe(0.1)
    registry.histogram("repro_payload_bytes", "Payload size.").observe(512)
