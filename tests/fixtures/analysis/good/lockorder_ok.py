"""Lock usage RL006/RL007 accept without any manifest entry: strictly
sequential acquisition (each lock released before the next is taken),
plus lock-internal calls (``wait``/``notify``) that are not nesting.
"""

import threading


class SequentialLocks:
    def __init__(self):
        self._queue_lock = threading.Lock()
        self._stats_cond = threading.Condition()

    def move(self, item):
        with self._queue_lock:
            staged = item
        with self._stats_cond:
            self._stats_cond.notify_all()
        return staged

    def drain(self):
        with self._stats_cond:
            self._stats_cond.wait(0.01)
