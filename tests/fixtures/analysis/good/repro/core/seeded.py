"""Known-good RL005 corpus: durations and seeded randomness only."""

from time import perf_counter

import numpy as np


def score(activity, seed):
    start = perf_counter()  # perf_counter measures durations: allowed
    rng = np.random.default_rng(np.random.SeedSequence([seed, len(activity)]))
    values = rng.random(3)  # generator methods are fine: the seed is pinned
    return list(values), perf_counter() - start
