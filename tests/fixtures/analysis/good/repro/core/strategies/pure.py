"""Known-good RL002 corpus: a strategy that stays pure after __init__."""


class PureStrategy:
    name = "pure"

    def __init__(self, weight=1.0):
        self.weight = weight

    def rank(self, model, activity, k):
        scores = {}
        # set(...) copies: the constructor call breaks the taint chain,
        # so mutating the copy is legal.
        space = set(model.implementation_space(activity))
        space.discard(-1)
        for pid in space:
            for aid in model.implementation_actions(pid):
                if aid not in activity:
                    scores[aid] = scores.get(aid, 0.0) + self.weight
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]
