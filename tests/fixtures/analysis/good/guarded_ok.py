"""Known-good RL001 corpus: every guarded access follows its declaration."""

import threading

_GUARDED_BY = {
    "Box._items": "_lock",
    "Box._total": "_lock",
    "View._model": "<final>",
    "Registry._index": "<caller>",
}


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []
        self._total = 0

    def add(self, item):
        with self._lock:
            self._items.append(item)
            self._total += 1

    def drain_locked(self):
        # _locked suffix: the caller holds self._lock for us.
        items = list(self._items)
        self._items.clear()
        return items

    def snapshot(self):
        with self._lock:
            return list(self._items), self._total


class View:
    def __init__(self, model):
        self._model = model

    def get(self):
        # Reads of a <final> attribute are unrestricted.
        return self._model


class Registry:
    def __init__(self):
        self._index = {}

    def put(self, key, value):
        # <caller>: the owning class may touch its own state via self.
        self._index[key] = value


class Unrelated:
    def __init__(self):
        # Same attribute name, different class: initializing it in
        # __init__ makes it this class's own copy, out of RL001's scope.
        self._index = []

    def grow(self):
        self._index.append(1)
