"""Known-good RL004 corpus: errors flow through the JSON envelope."""


class Handler:
    def _send_headers(self, status, content_type, length):
        # The one method allowed to talk to the raw response API.
        self.send_response(status)

    def _send_json(self, status, payload):
        self._send_headers(status, "application/json", 2)

    def _handle(self):
        self._send_json(200, {"ok": True})
        self._send_json(
            422, {"error": "bad_strategy", "detail": "unknown strategy"}
        )
