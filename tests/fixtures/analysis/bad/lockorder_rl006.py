"""RL006 corpus: two methods nest the same pair of locks in opposite
orders — the canonical lock-order inversion.  A thread in ``swap`` and a
thread in ``evict`` can each hold their first lock and block forever on
the other's.  Both nested acquisitions lie on the cycle, so both are
reported; no ``locks.toml`` entry can bless a cycle.
"""

import threading


class InvertedPair:
    def __init__(self):
        self._gen_lock = threading.Lock()
        self._cache_lock = threading.Lock()

    def swap(self):
        with self._gen_lock:
            with self._cache_lock:  # nested: gen -> cache
                pass

    def evict(self):
        with self._cache_lock:
            with self._gen_lock:  # nested: cache -> gen
                pass
