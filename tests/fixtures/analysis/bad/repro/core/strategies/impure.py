"""Known-bad RL002 corpus: four distinct purity violations in one rank()."""


class LeakyStrategy:
    name = "leaky"

    def __init__(self):
        self._memo = {}

    def rank(self, model, activity, k):
        self._memo[activity] = k  # subscript write into self-reachable state
        model.add_implementations([])  # mutating call on the model
        space = model.implementation_space(activity)
        space.add(0)  # mutating the index set the model handed out
        self.cached = space  # attribute assignment outside __init__
        return []
