"""Known-bad RL005 corpus: five nondeterminism violations."""

import random
import time
from random import choice

import numpy as np


def jitter(scores):
    now = time.time()  # wall clock in a scoring path
    pick = choice(sorted(scores))  # stdlib random via from-import
    rng = np.random.default_rng()  # unseeded generator
    np.random.shuffle(scores)  # legacy global-state numpy API
    return now, pick, rng, random.random()  # stdlib random module call
