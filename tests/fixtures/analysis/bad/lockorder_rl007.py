"""RL007 corpus: consistent (acyclic) lock nesting that is not declared
in the ``locks.toml`` ordering manifest.  One nesting is written directly,
the other flows through a helper call — the pass must see both, the
second via its call-graph fixpoint.
"""

import threading


class UndeclaredNesting:
    def __init__(self):
        self._outer_lock = threading.Lock()
        self._inner_lock = threading.Lock()

    def direct(self):
        with self._outer_lock:
            with self._inner_lock:  # nested directly
                pass

    def via_helper(self):
        with self._outer_lock:
            self._push()  # nested through the call graph

    def _push(self):
        with self._inner_lock:
            pass
