"""Known-bad RL004 corpus: three ways to leak a malformed error response."""


class Handler:
    def _handle(self):
        self.send_response(500)  # raw status write outside _send_headers
        self._send_json(404, {"message": "nope"})  # envelope keys missing
        self._send_headers(503, "text/plain", 4)  # error body skips the envelope
