"""Known-bad RL003 corpus: six naming/registration violations."""


def register(registry, which):
    registry.counter("repro_requests")  # counter without _total
    registry.counter(f"repro_{which}_total")  # computed name
    registry.histogram("repro_latency_total")  # histogram needs _seconds/_bytes
    registry.gauge("repro_queue_depth_total")  # gauge with accumulation suffix
    registry.counter("BadName_total")  # does not match repro_[a-z0-9_]+
    registry.counter("repro_dup_total")
    registry.counter("repro_dup_total")  # second registration site
