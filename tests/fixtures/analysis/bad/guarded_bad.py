"""Known-bad RL001 corpus: one violation per guard kind."""

import threading

_GUARDED_BY = {
    "Box._items": "_lock",
    "View._model": "<final>",
    "Registry._index": "<caller>",
}


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def add(self, item):
        self._items.append(item)  # lock-guarded access without the lock


class View:
    def __init__(self, model):
        self._model = model

    def rebind(self, model):
        self._model = model  # <final> assigned outside __init__


class Registry:
    def __init__(self):
        self._index = {}


def poke(registry):
    registry._index["k"] = "v"  # <caller> reach-in from outside the owner
