"""Unit tests for the Breadth strategy and its score variants."""

import pytest

from repro.core import AssociationGoalModel
from repro.core.strategies import create_strategy
from repro.core.strategies.breadth import BreadthStrategy


class TestConstruction:
    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            BreadthStrategy(variant="nope")

    def test_names(self):
        assert BreadthStrategy().name == "breadth"
        assert BreadthStrategy("union").name == "breadth_union"
        assert BreadthStrategy("count").name == "breadth_count"

    def test_registry(self):
        assert isinstance(create_strategy("breadth"), BreadthStrategy)


class TestScores:
    @pytest.fixture
    def model(self):
        return AssociationGoalModel.from_pairs(
            [
                ("g1", {"h1", "h2", "x"}),
                ("g2", {"h1", "x"}),
                ("g3", {"h2", "y"}),
                ("g4", {"z", "w"}),  # untouched by the activity
            ]
        )

    @pytest.fixture
    def activity(self, model):
        return model.encode_activity({"h1", "h2"})

    def test_intersection_scores(self, model, activity):
        """x gets |{h1,h2}|=2 from g1 plus |{h1}|=1 from g2; y gets 1."""
        scores = BreadthStrategy().scores(model, activity)
        labelled = {model.action_label(a): s for a, s in scores.items()}
        assert labelled == {"x": 3.0, "y": 1.0}

    def test_untouched_implementations_contribute_nothing(self, model, activity):
        scores = BreadthStrategy().scores(model, activity)
        labels = {model.action_label(a) for a in scores}
        assert not labels & {"z", "w"}

    def test_count_variant(self, model, activity):
        scores = BreadthStrategy("count").scores(model, activity)
        labelled = {model.action_label(a): s for a, s in scores.items()}
        assert labelled == {"x": 2.0, "y": 1.0}

    def test_union_variant(self, model, activity):
        """Equation 6 as printed: |A ∪ H| per implementation."""
        scores = BreadthStrategy("union").scores(model, activity)
        labelled = {model.action_label(a): s for a, s in scores.items()}
        # g1: |{h1,h2,x} ∪ {h1,h2}| = 3; g2: |{h1,x} ∪ {h1,h2}| = 3.
        assert labelled["x"] == 6.0
        # g3: |{h2,y} ∪ {h1,h2}| = 3.
        assert labelled["y"] == 3.0

    def test_activity_actions_never_scored(self, model, activity):
        scores = BreadthStrategy().scores(model, activity)
        assert model.action_id("h1") not in scores
        assert model.action_id("h2") not in scores


class TestRanking:
    def test_rank_orders_by_score_then_id(self, figure1_model):
        activity = figure1_model.encode_activity({"a1"})
        ranked = BreadthStrategy().rank(figure1_model, activity, k=10)
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)
        # Within equal scores, ids ascend.
        for (a1, s1), (a2, s2) in zip(ranked, ranked[1:]):
            if s1 == s2:
                assert a1 < a2

    def test_empty_activity_yields_empty(self, figure1_model):
        assert BreadthStrategy().rank(figure1_model, frozenset(), k=5) == []

    def test_k_truncation(self, figure1_model):
        activity = figure1_model.encode_activity({"a1"})
        assert len(BreadthStrategy().rank(figure1_model, activity, k=2)) == 2

    def test_favours_multi_goal_actions(self):
        """The strategy's raison d'être: shared actions beat niche ones."""
        model = AssociationGoalModel.from_pairs(
            [
                ("g1", {"h", "shared"}),
                ("g2", {"h", "shared"}),
                ("g3", {"h", "niche"}),
            ]
        )
        activity = model.encode_activity({"h"})
        ranked = BreadthStrategy().rank(model, activity, k=2)
        assert model.action_label(ranked[0][0]) == "shared"
        assert ranked[0][1] > ranked[1][1]

    def test_paper_intro_example(self, recipe_model):
        """Potatoes+carrots cart: pickles (olivier) and nutmeg (two recipes).

        Nutmeg contributes to two implementations with overlap 1 each,
        pickles to one implementation with overlap 2 — both score 2, ahead
        of everything else; the introduction names exactly these two.
        """
        activity = recipe_model.encode_activity({"potatoes", "carrots"})
        ranked = BreadthStrategy().rank(recipe_model, activity, k=2)
        top = {recipe_model.action_label(a) for a, _ in ranked}
        assert top == {"pickles", "nutmeg"}
