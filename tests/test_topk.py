"""Property suite for the partial top-k selection (S4).

``repro.core.topk`` replaces full ``sorted(...)[:k]`` rankings with
``heapq``/``argpartition``-based partial selection.  Both replacements must
be *element-wise identical* to the full sort under the library's
``(-score, id)`` determinism contract.  The generators lean on the
regimes where partial selection is easiest to get wrong:

- heavy tie groups (scores drawn from a tiny pool, so the ``k``-th
  boundary is almost always tied),
- ``k >= n`` and ``k = 1``,
- integer-valued floats (the library's score arithmetic is exact integer
  counts in float64, so equality comparisons are meaningful).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.topk as topk
from repro.core.topk import top_k_pairs, top_k_positions

#: Tiny score pools force boundary ties; wider floats cover the generic
#: case.  Integer-valued floats mirror the library's count arithmetic.
tie_heavy_scores = st.floats(
    min_value=0, max_value=4, allow_nan=False
).map(float) | st.integers(min_value=-3, max_value=3).map(float)

score_maps = st.dictionaries(
    keys=st.integers(min_value=0, max_value=10_000),
    values=tie_heavy_scores,
    max_size=64,
)


def full_sort_reference(scores: dict[int, float], k: int):
    return sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:k]


class TestTopKPairs:
    @given(scores=score_maps, k=st.integers(min_value=1, max_value=80))
    @settings(max_examples=200)
    def test_matches_full_sort(self, scores, k):
        assert top_k_pairs(scores, k) == full_sort_reference(scores, k)

    @given(scores=score_maps, k=st.integers(min_value=1, max_value=80))
    @settings(max_examples=200)
    def test_array_path_matches_full_sort(self, scores, k):
        """Force the NumPy path for inputs the cutover would send to the heap."""
        original = topk._ARRAY_CUTOVER
        topk._ARRAY_CUTOVER = 0
        try:
            assert top_k_pairs(scores, k) == full_sort_reference(scores, k)
        finally:
            topk._ARRAY_CUTOVER = original

    def test_empty_input(self):
        assert top_k_pairs({}, 5) == []

    def test_k_zero_or_negative(self):
        assert top_k_pairs({1: 2.0}, 0) == []
        assert top_k_pairs({1: 2.0}, -3) == []

    def test_large_input_crosses_cutover(self):
        """An input past the cutover exercises the array path end to end."""
        rng = np.random.default_rng(0)
        n = topk._ARRAY_CUTOVER + 500
        scores = {i: float(rng.integers(0, 7)) for i in range(n)}
        for k in (1, 10, n - 1):
            assert top_k_pairs(scores, k) == full_sort_reference(scores, k)


class TestTopKPositions:
    @given(
        data=st.lists(tie_heavy_scores, min_size=1, max_size=64),
        k=st.integers(min_value=1, max_value=80),
    )
    @settings(max_examples=200)
    def test_matches_full_lexsort_prefix(self, data, k):
        scores = np.asarray(data, dtype=np.float64)
        # Non-contiguous ids, still unique.
        ids = np.arange(scores.size, dtype=np.int64) * 3 + 1
        ranked = top_k_positions(ids, scores, k)
        full = np.lexsort((ids, -scores))[:k]
        assert ranked.tolist() == full.tolist()

    def test_k_one_picks_smallest_id_among_tied_max(self):
        ids = np.array([7, 3, 9, 5], dtype=np.int64)
        scores = np.array([2.0, 2.0, 2.0, 1.0])
        ranked = top_k_positions(ids, scores, 1)
        assert ids[ranked].tolist() == [3]

    def test_k_at_least_n_returns_full_ranking(self):
        ids = np.array([4, 1, 2], dtype=np.int64)
        scores = np.array([1.0, 1.0, 3.0])
        ranked = top_k_positions(ids, scores, 10)
        assert ids[ranked].tolist() == [2, 1, 4]

    def test_boundary_tie_group_filled_by_smallest_ids(self):
        # Three candidates tie at the k-th boundary; only the two smallest
        # ids of the tie group may fill the remaining slots.
        ids = np.array([10, 20, 30, 40, 50], dtype=np.int64)
        scores = np.array([5.0, 3.0, 3.0, 3.0, 1.0])
        ranked = top_k_positions(ids, scores, 3)
        assert ids[ranked].tolist() == [10, 20, 30]

    def test_empty(self):
        ranked = top_k_positions(
            np.empty(0, dtype=np.int64), np.empty(0), 3
        )
        assert ranked.size == 0
