"""Unit tests for the content-based baseline."""

import pytest

from repro.baselines import ContentBasedRecommender
from repro.exceptions import RecommendationError

FEATURES = {
    "milk": {"dairy", "drink"},
    "cheese": {"dairy"},
    "yogurt": {"dairy"},
    "cola": {"drink"},
    "hammer": {"tool"},
    "mystery": set(),
}


@pytest.fixture
def recommender():
    return ContentBasedRecommender(FEATURES).fit([{"milk"}, {"hammer"}])


class TestConstruction:
    def test_empty_features_rejected(self):
        with pytest.raises(RecommendationError, match="empty"):
            ContentBasedRecommender({})


class TestProfile:
    def test_profile_counts_features(self, recommender):
        activity = recommender.items.encode({"milk", "cheese"})
        profile = recommender.profile(activity)
        # dairy appears twice (milk + cheese), drink once.
        assert sorted(profile.values(), reverse=True) == [2.0, 1.0]

    def test_profile_of_featureless_items_is_empty(self, recommender):
        activity = recommender.items.encode({"mystery"})
        assert recommender.profile(activity) == {}


class TestRecommend:
    def test_similar_items_win(self, recommender):
        result = recommender.recommend({"milk"}, k=3)
        actions = result.actions()
        # Dairy+drink profile: dairy items and cola beat hammer.
        assert "hammer" not in actions
        assert set(actions) <= {"cheese", "yogurt", "cola"}

    def test_cold_items_recommendable(self):
        """Items never seen in training still get recommended by features."""
        recommender = ContentBasedRecommender(FEATURES).fit([{"milk"}])
        actions = recommender.recommend({"milk"}, k=5).actions()
        assert "cheese" in actions  # cheese occurs in no training activity

    def test_featureless_query_yields_empty(self, recommender):
        assert recommender.recommend({"mystery"}, k=3).actions() == []

    def test_query_items_excluded(self, recommender):
        assert "milk" not in recommender.recommend({"milk"}, k=5).actions()

    def test_zero_similarity_items_absent(self, recommender):
        actions = recommender.recommend({"hammer"}, k=5).actions()
        assert actions == []  # nothing else shares the tool feature


class TestItemSimilarity:
    def test_identical_features(self, recommender):
        assert recommender.item_similarity("cheese", "yogurt") == 1.0

    def test_partial_overlap(self, recommender):
        value = recommender.item_similarity("milk", "cheese")
        assert value == pytest.approx(1 / (2 ** 0.5))

    def test_disjoint_features(self, recommender):
        assert recommender.item_similarity("milk", "hammer") == 0.0

    def test_unknown_item_similarity_zero(self, recommender):
        assert recommender.item_similarity("milk", "unknown") == 0.0

    def test_featureless_item_similarity_zero(self, recommender):
        assert recommender.item_similarity("milk", "mystery") == 0.0
