"""Unit tests for the JSON and SQLite library stores."""

import pytest

from repro.core import AssociationGoalModel, ImplementationLibrary
from repro.exceptions import StorageError
from repro.storage import JsonLibraryStore, SqliteLibraryStore


def pairs(library: ImplementationLibrary) -> list[tuple[str, frozenset]]:
    return [(impl.goal, impl.actions) for impl in library]


class TestJsonStore:
    def test_roundtrip(self, tmp_path, recipe_library):
        store = JsonLibraryStore(tmp_path / "lib.json")
        store.save(recipe_library)
        assert pairs(store.load()) == pairs(recipe_library)

    def test_exists(self, tmp_path, recipe_library):
        store = JsonLibraryStore(tmp_path / "lib.json")
        assert not store.exists()
        store.save(recipe_library)
        assert store.exists()

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(StorageError, match="no library"):
            JsonLibraryStore(tmp_path / "missing.json").load()

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "lib.json"
        path.write_text("{broken")
        with pytest.raises(StorageError, match="cannot load"):
            JsonLibraryStore(path).load()

    def test_save_overwrites(self, tmp_path, recipe_library):
        store = JsonLibraryStore(tmp_path / "lib.json")
        store.save(recipe_library)
        smaller = ImplementationLibrary()
        smaller.add_pair("only", {"x"})
        store.save(smaller)
        assert pairs(store.load()) == [("only", frozenset({"x"}))]

    def test_no_tmp_file_left_behind(self, tmp_path, recipe_library):
        store = JsonLibraryStore(tmp_path / "lib.json")
        store.save(recipe_library)
        assert list(tmp_path.glob("*.tmp")) == []


class TestSqliteStore:
    def test_roundtrip_file(self, tmp_path, recipe_library):
        with SqliteLibraryStore(tmp_path / "lib.db") as store:
            store.save(recipe_library)
            assert pairs(store.load()) == pairs(recipe_library)

    def test_roundtrip_memory(self, recipe_library):
        with SqliteLibraryStore(":memory:") as store:
            store.save(recipe_library)
            assert pairs(store.load()) == pairs(recipe_library)

    def test_exists(self, tmp_path, recipe_library):
        store = SqliteLibraryStore(tmp_path / "lib.db")
        assert not store.exists()
        store.save(recipe_library)
        assert store.exists()
        store.close()

    def test_load_empty_raises(self):
        with SqliteLibraryStore(":memory:") as store:
            with pytest.raises(StorageError, match="no library"):
                store.load()

    def test_save_replaces_previous_content(self, recipe_library):
        with SqliteLibraryStore(":memory:") as store:
            store.save(recipe_library)
            smaller = ImplementationLibrary()
            smaller.add_pair("only", {"x"})
            store.save(smaller)
            assert pairs(store.load()) == [("only", frozenset({"x"}))]

    def test_model_equivalence_after_roundtrip(self, recipe_library):
        with SqliteLibraryStore(":memory:") as store:
            store.save(recipe_library)
            restored = AssociationGoalModel.from_library(store.load())
        original = AssociationGoalModel.from_library(recipe_library)
        activity = {"potatoes", "carrots"}
        assert restored.goal_space_labels(activity) == original.goal_space_labels(
            activity
        )


class TestSqliteSpaceQueries:
    @pytest.fixture
    def store(self, recipe_library):
        with SqliteLibraryStore(":memory:") as store:
            store.save(recipe_library)
            yield store

    def test_goal_space_sql_matches_model(self, store, recipe_model):
        activity = {"potatoes", "carrots"}
        assert store.goal_space_sql(activity) == recipe_model.goal_space_labels(
            activity
        )

    def test_action_space_sql_matches_model(self, store, recipe_model):
        activity = {"nutmeg"}
        assert store.action_space_sql(activity) == recipe_model.action_space_labels(
            activity
        )

    def test_empty_activity(self, store):
        assert store.goal_space_sql([]) == set()
        assert store.action_space_sql([]) == set()

    def test_unknown_actions_ignored(self, store):
        assert store.goal_space_sql(["martian"]) == set()


class TestSqliteRanking:
    @pytest.fixture
    def store(self, recipe_library):
        with SqliteLibraryStore(":memory:") as store:
            store.save(recipe_library)
            yield store

    def test_breadth_sql_matches_reference_scores(self, store, recipe_model):
        from repro.core.strategies.breadth import BreadthStrategy

        activity = {"potatoes", "carrots"}
        sql_scores = dict(store.breadth_sql(activity, k=10))
        encoded = recipe_model.encode_activity(activity)
        reference = {
            recipe_model.action_label(aid): score
            for aid, score in BreadthStrategy().scores(
                recipe_model, encoded
            ).items()
        }
        assert sql_scores == pytest.approx(reference)

    def test_breadth_sql_top2(self, store):
        # pickles (olivier overlap 2) and nutmeg (two recipes x overlap 1)
        # tie at score 2; SQL breaks ties alphabetically.
        ranked = store.breadth_sql({"potatoes", "carrots"}, k=2)
        assert ranked == [("nutmeg", 2.0), ("pickles", 2.0)]

    def test_breadth_sql_excludes_activity(self, store):
        labels = {label for label, _ in store.breadth_sql({"potatoes"}, k=20)}
        assert "potatoes" not in labels

    def test_breadth_sql_empty_activity(self, store):
        assert store.breadth_sql([], k=5) == []

    def test_breadth_sql_invalid_k(self, store):
        with pytest.raises(StorageError, match="positive"):
            store.breadth_sql({"potatoes"}, k=0)

    def test_closest_implementations(self, store):
        rows = store.closest_implementations_sql({"potatoes", "carrots"}, k=2)
        # Olivier salad misses exactly one action.
        assert rows[0][0] == "olivier salad"
        assert rows[0][2] == 1

    def test_closest_excludes_complete(self, store):
        rows = store.closest_implementations_sql(
            {"potatoes", "carrots", "pickles"}, k=10
        )
        goals = [goal for goal, _, _ in rows]
        assert "olivier salad" not in goals

    def test_closest_empty_activity(self, store):
        assert store.closest_implementations_sql([], k=3) == []
