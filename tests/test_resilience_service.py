"""HTTP-level tests for the resilience layer and serving-edge bugfixes.

Covers admission control (429 + ``Retry-After`` under saturation, never a
connection reset), per-request deadlines (504 naming the pipeline stage
reached, malformed header → 400), graceful drain (in-flight requests
complete, ``/health`` flips to draining, work routes answer 503), the
``HEAD`` support regression tests, the fault-injection matrix the CI
``resilience`` step runs, and a subprocess SIGTERM integration test of
``repro serve``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import obs
from repro.core import AssociationGoalModel
from repro.obs.metrics import MetricsRegistry
from repro.resilience import (
    FaultInjector,
    FaultRule,
    clear_faults,
    install_faults,
    parse_fault_spec,
)
from repro.service import RecommenderService

PAIRS = [
    ("olivier salad", {"potatoes", "carrots", "pickles"}),
    ("mashed potatoes", {"potatoes", "nutmeg", "butter"}),
    ("pan-fried carrots", {"carrots", "nutmeg", "oil"}),
]


@pytest.fixture
def make_service(request):
    """Factory for services with per-test resilience settings.

    Each service writes into a fresh registry; teardown stops the server,
    clears any installed fault injector and restores the registry.
    """
    previous_registry = obs.set_registry(MetricsRegistry())
    started = []

    def factory(**kwargs):
        model = AssociationGoalModel.from_pairs(PAIRS)
        server = RecommenderService(model, port=0, **kwargs).start()
        started.append(server)
        return server

    def teardown():
        clear_faults()
        for server in started:
            server.stop()
        obs.disable()
        obs.set_registry(previous_registry)

    request.addfinalizer(teardown)
    return factory


def call(service, path, payload=None, method=None, headers=None):
    """Return ``(status, response_headers, body_bytes)`` — never raises
    for HTTP error statuses (connection-level failures do propagate,
    which is exactly what the no-reset assertions rely on)."""
    url = f"http://127.0.0.1:{service.port}{path}"
    data = json.dumps(payload).encode() if payload is not None else None
    request_headers = dict(headers or {})
    if data is not None:
        request_headers.setdefault("Content-Type", "application/json")
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data else "GET"),
        headers=request_headers,
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def body_json(raw: bytes) -> dict:
    return json.loads(raw)


RECOMMEND = {"activity": ["potatoes", "carrots"], "k": 5}
BATCH = {"activities": [["potatoes", "carrots"], ["oil"]], "k": 5}
RELOAD = {"implementations": [{"goal": "soup", "actions": ["leek", "salt"]}]}


# ----------------------------------------------------------------------
# HEAD support (bugfix: stdlib default was 501)
# ----------------------------------------------------------------------


class TestHeadRequests:
    def test_head_mirrors_get_headers_with_empty_body(self, make_service):
        service = make_service()
        get_status, get_headers, get_body = call(service, "/health")
        head_status, head_headers, head_body = call(
            service, "/health", method="HEAD"
        )
        assert (get_status, head_status) == (200, 200)
        assert head_body == b""
        assert len(get_body) > 0
        assert head_headers["Content-Length"] == get_headers["Content-Length"]
        assert head_headers["Content-Type"] == get_headers["Content-Type"]
        assert head_headers["X-Request-Id"]

    def test_head_metrics(self, make_service):
        service = make_service()
        status, headers, body = call(service, "/metrics", method="HEAD")
        assert status == 200
        assert body == b""
        assert int(headers["Content-Length"]) > 0

    def test_head_unknown_path_is_404_with_empty_body(self, make_service):
        service = make_service()
        status, headers, body = call(service, "/nope", method="HEAD")
        assert status == 404
        assert body == b""
        assert headers["X-Request-Id"]

    def test_head_on_post_route_is_405(self, make_service):
        service = make_service()
        status, headers, body = call(service, "/recommend", method="HEAD")
        assert status == 405
        assert headers["Allow"] == "POST"
        assert body == b""


# ----------------------------------------------------------------------
# Admission control / load shedding
# ----------------------------------------------------------------------


class TestAdmissionControl:
    def test_saturation_sheds_429_with_retry_after(self, make_service):
        service = make_service(
            max_inflight=1, max_queue=0, retry_after_seconds=2.0
        )
        # One latency fault at the model seam keeps the admitted request
        # holding its slot long enough for the probes to hit saturation.
        install_faults(
            FaultInjector([FaultRule("model", "latency", delay_ms=600.0)])
        )
        slow_result = []

        def slow_request():
            slow_result.append(call(service, "/recommend", RECOMMEND))

        thread = threading.Thread(target=slow_request)
        thread.start()
        deadline = time.monotonic() + 5.0
        while service.admission.active() == 0:
            assert time.monotonic() < deadline, "slow request never admitted"
            time.sleep(0.01)
        shed = [call(service, "/recommend", RECOMMEND) for _ in range(4)]
        thread.join(10.0)

        # Every probe got a proper HTTP answer — a connection reset would
        # have raised out of call() and failed the test right there.
        for status, headers, raw in shed:
            assert status == 429
            assert headers["Retry-After"] == "2"
            body = body_json(raw)
            assert body["error"] == "server overloaded"
            assert "saturated" in body["detail"]
        # The occupant itself completed normally.
        assert slow_result[0][0] == 200

        _, _, metrics = call(service, "/metrics")
        text = metrics.decode()
        assert 'repro_shed_requests_total{reason="saturated"} 4' in text

    def test_queued_request_is_admitted_when_slot_frees(self, make_service):
        service = make_service(
            max_inflight=1, max_queue=4, queue_timeout_seconds=5.0
        )
        install_faults(
            FaultInjector([FaultRule("model", "latency", delay_ms=200.0)])
        )
        results = []

        def request():
            results.append(call(service, "/recommend", RECOMMEND))

        threads = [threading.Thread(target=request) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert [status for status, _, _ in results] == [200, 200, 200]

    def test_ops_routes_bypass_admission(self, make_service):
        service = make_service(max_inflight=1, max_queue=0)
        install_faults(
            FaultInjector([FaultRule("model", "latency", delay_ms=500.0)])
        )
        occupant = threading.Thread(
            target=call, args=(service, "/recommend", RECOMMEND)
        )
        occupant.start()
        deadline = time.monotonic() + 5.0
        while service.admission.active() == 0:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        # The server is saturated, yet stays observable.
        health_status, _, _ = call(service, "/health")
        metrics_status, _, _ = call(service, "/metrics")
        debug_status, _, _ = call(service, "/debug/vars")
        occupant.join(10.0)
        assert (health_status, metrics_status, debug_status) == (200, 200, 200)

    def test_debug_vars_reports_resilience_state(self, make_service):
        service = make_service(max_inflight=7, max_queue=9)
        _, _, raw = call(service, "/debug/vars")
        resilience = body_json(raw)["resilience"]
        assert resilience["draining"] is False
        assert resilience["admission"]["max_inflight"] == 7
        assert resilience["admission"]["max_queue"] == 9


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------


class TestDeadlines:
    def test_expired_deadline_names_stage_recommend(self, make_service):
        service = make_service()
        # The model seam stalls 80 ms; a 20 ms deadline therefore expires
        # before the pipeline's first space query.
        install_faults(
            FaultInjector([FaultRule("model", "latency", delay_ms=80.0)])
        )
        status, _, raw = call(
            service, "/recommend", RECOMMEND,
            headers={"X-Request-Deadline-Ms": "20"},
        )
        assert status == 504
        body = body_json(raw)
        assert body["error"] == "deadline exceeded"
        assert "implementation_space" in body["detail"]

    def test_expired_deadline_names_stage_batch(self, make_service):
        service = make_service()
        install_faults(
            FaultInjector([FaultRule("model", "latency", delay_ms=80.0)])
        )
        status, _, raw = call(
            service, "/recommend/batch", BATCH,
            headers={"X-Request-Deadline-Ms": "20"},
        )
        assert status == 504
        assert "batch" in body_json(raw)["detail"]

    def test_deadline_exceeded_counter_labels_stage(self, make_service):
        service = make_service()
        install_faults(
            FaultInjector([FaultRule("model", "latency", delay_ms=80.0)])
        )
        status, _, _ = call(
            service, "/recommend", RECOMMEND,
            headers={"X-Request-Deadline-Ms": "20"},
        )
        assert status == 504
        _, _, metrics = call(service, "/metrics")
        assert (
            'repro_deadline_exceeded_total{stage="implementation_space"} 1'
            in metrics.decode()
        )

    def test_default_deadline_applies_without_header(self, make_service):
        service = make_service(default_deadline_ms=20.0)
        install_faults(
            FaultInjector([FaultRule("model", "latency", delay_ms=80.0)])
        )
        status, _, raw = call(service, "/recommend", RECOMMEND)
        assert status == 504
        assert body_json(raw)["error"] == "deadline exceeded"

    def test_generous_deadline_passes(self, make_service):
        service = make_service()
        status, _, raw = call(
            service, "/recommend", RECOMMEND,
            headers={"X-Request-Deadline-Ms": "30000"},
        )
        assert status == 200
        assert body_json(raw)["recommendations"]

    @pytest.mark.parametrize("bad", ["abc", "-5", "0", "inf", "nan", ""])
    def test_malformed_deadline_header_is_400(self, make_service, bad):
        service = make_service()
        status, _, raw = call(
            service, "/recommend", RECOMMEND,
            headers={"X-Request-Deadline-Ms": bad},
        )
        assert status == 400
        assert "X-Request-Deadline-Ms" in body_json(raw)["error"]


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------


class TestDrain:
    def test_health_reports_draining_and_work_is_503(self, make_service):
        service = make_service(retry_after_seconds=3.0)
        with service._inflight_lock:
            service._draining = True
        try:
            status, _, raw = call(service, "/health")
            body = body_json(raw)
            assert status == 200
            assert body["status"] == "draining"
            assert body["draining"] is True

            status, headers, raw = call(service, "/recommend", RECOMMEND)
            assert status == 503
            assert headers["Retry-After"] == "3"
            assert body_json(raw)["error"] == "service is draining"

            _, _, metrics = call(service, "/metrics")
            text = metrics.decode()
            assert 'repro_shed_requests_total{reason="draining"} 1' in text
        finally:
            with service._inflight_lock:
                service._draining = False

    def test_drain_completes_inflight_requests(self, make_service):
        service = make_service()
        install_faults(
            FaultInjector([FaultRule("model", "latency", delay_ms=400.0)])
        )
        results = []

        def slow_request():
            results.append(call(service, "/recommend", RECOMMEND))

        thread = threading.Thread(target=slow_request)
        thread.start()
        deadline = time.monotonic() + 5.0
        while service.inflight_requests == 0:
            assert time.monotonic() < deadline, "request never started"
            time.sleep(0.01)

        drained = service.drain(timeout=10.0)
        thread.join(10.0)

        assert drained is True
        status, _, raw = results[0]
        assert status == 200
        assert body_json(raw)["recommendations"]

    def test_drain_without_start_is_clean(self):
        model = AssociationGoalModel.from_pairs(PAIRS)
        service = RecommenderService(model, port=0)
        assert service.drain(timeout=0.1) is True


# ----------------------------------------------------------------------
# Fault-injection matrix (the CI `resilience` step runs this class)
# ----------------------------------------------------------------------


class TestFaultMatrix:
    @pytest.mark.parametrize(
        "path,payload,method",
        [
            ("/recommend", RECOMMEND, None),
            ("/recommend/batch", BATCH, None),
            ("/model/implementations", RELOAD, "PUT"),
        ],
        ids=["recommend", "batch", "reload"],
    )
    def test_model_exception_fault_surfaces_as_500(
        self, make_service, path, payload, method
    ):
        service = make_service()
        install_faults(parse_fault_spec("model:exception"))
        status, headers, raw = call(service, path, payload, method=method)
        assert status == 500
        body = body_json(raw)
        assert body["error"] == "internal server error"
        assert "injected fault" in body["detail"]
        assert headers["X-Request-Id"]

    @pytest.mark.parametrize(
        "spec",
        ["model:latency:1.0:5", "model:slow_storage:1.0:5",
         "cache:latency:1.0:5", "cache:slow_storage:1.0:5"],
    )
    def test_latency_faults_slow_but_do_not_fail(self, make_service, spec):
        service = make_service()
        install_faults(parse_fault_spec(spec))
        for path, payload, method in (
            ("/recommend", RECOMMEND, None),
            ("/recommend/batch", BATCH, None),
            ("/model/implementations", RELOAD, "PUT"),
        ):
            status, _, _ = call(service, path, payload, method=method)
            assert status == 200, (spec, path)

    def test_cache_exception_fault_fails_recommend(self, make_service):
        service = make_service()
        install_faults(parse_fault_spec("cache:exception"))
        status, _, raw = call(service, "/recommend", RECOMMEND)
        assert status == 500
        assert "injected fault" in body_json(raw)["detail"]

    def test_injected_faults_are_counted(self, make_service):
        service = make_service()
        install_faults(parse_fault_spec("model:exception"))
        status, _, _ = call(service, "/recommend", RECOMMEND)
        assert status == 500
        _, _, metrics = call(service, "/metrics")
        assert (
            'repro_faults_injected_total{kind="exception",site="model"}'
            in metrics.decode()
        )

    def test_probabilistic_fault_sequence_is_reproducible(self, make_service):
        def run() -> list[int]:
            previous = obs.set_registry(MetricsRegistry())
            model = AssociationGoalModel.from_pairs(PAIRS)
            server = RecommenderService(model, port=0).start()
            install_faults(parse_fault_spec("seed=7,model:exception:0.5"))
            try:
                return [
                    call(server, "/recommend", RECOMMEND)[0]
                    for _ in range(8)
                ]
            finally:
                clear_faults()
                server.stop()
                obs.set_registry(previous)

        first, second = run(), run()
        assert first == second
        assert 500 in first and 200 in first


# ----------------------------------------------------------------------
# CLI: SIGTERM drains the subprocess (satellite bugfix)
# ----------------------------------------------------------------------


class TestServeSignalIntegration:
    def _write_library(self, tmp_path: Path) -> Path:
        from repro.core.library import ImplementationLibrary
        from repro.storage import JsonLibraryStore

        library = ImplementationLibrary()
        for goal, actions in PAIRS:
            library.add_pair(goal, sorted(actions))
        path = tmp_path / "library.json"
        JsonLibraryStore(path).save(library)
        return path

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        library_path = self._write_library(tmp_path)
        src_dir = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            f"{src_dir}{os.pathsep}{env['PYTHONPATH']}"
            if env.get("PYTHONPATH") else str(src_dir)
        )
        process = subprocess.Popen(
            [
                sys.executable, "-u", "-c",
                "import sys; from repro.cli import main; "
                "sys.exit(main(sys.argv[1:]))",
                "serve", "--library", str(library_path), "--port", "0",
                "--drain-timeout", "10",
                # A latency fault keeps the in-flight request busy across
                # the SIGTERM, proving drain waits for it.
                "--fault-spec", "model:latency:1.0:700",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "serving" in banner, banner
            port = int(banner.split("http://")[1].split()[0].rsplit(":", 1)[1])

            url = f"http://127.0.0.1:{port}/recommend"
            request = urllib.request.Request(
                url,
                data=json.dumps(RECOMMEND).encode(),
                headers={"Content-Type": "application/json"},
            )
            result = {}

            def inflight_request():
                with urllib.request.urlopen(request, timeout=30) as response:
                    result["status"] = response.status
                    result["body"] = json.loads(response.read())

            thread = threading.Thread(target=inflight_request)
            thread.start()
            time.sleep(0.25)  # let the request reach the model-seam stall
            process.send_signal(signal.SIGTERM)
            thread.join(30.0)

            returncode = process.wait(timeout=30)
            assert returncode == 0
            # The in-flight request was completed, not dropped.
            assert result.get("status") == 200
            assert result["body"]["recommendations"]
        finally:
            if process.poll() is None:
                process.kill()
            process.stdout.close()
            process.stderr.close()

    def test_malformed_fault_spec_exits_2(self, tmp_path):
        library_path = self._write_library(tmp_path)
        from repro.cli import main

        code = main(
            [
                "serve", "--library", str(library_path), "--port", "0",
                "--fault-spec", "nowhere:exception",
            ]
        )
        assert code == 2
