"""Stateful property test: the incremental model vs a rebuild oracle.

Hypothesis drives random sequences of add/remove operations against an
:class:`IncrementalGoalModel` while a shadow list of live ``(goal, actions)``
pairs defines the ground truth.  After every step, a freshly built
:class:`AssociationGoalModel` over the shadow state must agree with the
incremental model on all space queries and on every strategy's ranking.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core import AssociationGoalModel, IncrementalGoalModel
from repro.core.strategies import create_strategy

goal_labels = st.sampled_from([f"g{i}" for i in range(6)])
action_sets = st.frozensets(
    st.sampled_from([f"a{i}" for i in range(12)]), min_size=1, max_size=5
)
activities = st.frozensets(
    st.sampled_from([f"a{i}" for i in range(12)]), max_size=6
)


class IncrementalModelMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.model = IncrementalGoalModel()
        self.live: dict[int, tuple[str, frozenset[str]]] = {}

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    @rule(goal=goal_labels, actions=action_sets)
    def add(self, goal: str, actions: frozenset[str]) -> None:
        pid = self.model.add_implementation(goal, actions)
        self.live[pid] = (goal, actions)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def remove(self, data) -> None:
        pid = data.draw(st.sampled_from(sorted(self.live)))
        self.model.remove_implementation(pid)
        del self.live[pid]

    # ------------------------------------------------------------------
    # Oracle comparison
    # ------------------------------------------------------------------

    def _oracle(self) -> AssociationGoalModel | None:
        if not self.live:
            return None
        return AssociationGoalModel.from_pairs(
            [self.live[pid] for pid in sorted(self.live)]
        )

    @invariant()
    def live_count_matches(self) -> None:
        assert self.model.num_implementations == len(self.live)

    @precondition(lambda self: self.live)
    @rule(activity=activities)
    def spaces_match_oracle(self, activity: frozenset[str]) -> None:
        oracle = self._oracle()
        assert oracle is not None
        assert self.model.goal_space_labels(activity) == (
            oracle.goal_space_labels(activity)
        )
        assert self.model.action_space_labels(activity) == (
            oracle.action_space_labels(activity)
        )

    @precondition(lambda self: self.live)
    @rule(activity=activities, name=st.sampled_from(
        ["focus_cmp", "focus_cl", "breadth", "best_match"]
    ))
    def rankings_match_oracle(self, activity: frozenset[str], name: str) -> None:
        """Full rankings agree up to id-based tie ordering.

        Action ids differ between the two models (the incremental one keeps
        ids of removed history), so within equal scores the order may
        legitimately differ; canonicalizing by (-score, label) removes that
        degree of freedom while still checking every (action, score) pair.
        """
        oracle = self._oracle()
        assert oracle is not None
        strategy = create_strategy(name)

        def canonical(model) -> list[tuple[str, float]]:
            result = strategy.recommend(
                model, model.encode_activity(activity), k=1000
            )
            return sorted(
                ((str(item.action), round(item.score, 9)) for item in result),
                key=lambda pair: (-pair[1], pair[0]),
            )

        assert canonical(self.model) == canonical(oracle)


IncrementalModelMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
TestIncrementalModelMachine = IncrementalModelMachine.TestCase
