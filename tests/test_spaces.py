"""Unit tests for the label-level space wrappers."""

import pytest

from repro.core.spaces import (
    action_space,
    candidate_actions,
    goal_completeness,
    goal_space,
    implementation_space,
)


class TestImplementationSpace:
    def test_ordered_by_id(self, figure1_model):
        impls = implementation_space(figure1_model, {"a1"})
        ids = [impl.impl_id for impl in impls]
        assert ids == sorted(ids)

    def test_contents(self, figure1_model):
        impls = implementation_space(figure1_model, {"a6"})
        assert {impl.goal for impl in impls} == {"g4", "g5"}

    def test_unknown_activity_empty(self, figure1_model):
        assert implementation_space(figure1_model, {"nope"}) == []


class TestGoalSpace:
    def test_figure1(self, figure1_model):
        assert goal_space(figure1_model, {"a1"}) == {"g1", "g2", "g3", "g5"}

    def test_union_over_set(self, figure1_model):
        joint = goal_space(figure1_model, {"a2", "a5"})
        assert joint == goal_space(figure1_model, {"a2"}) | goal_space(
            figure1_model, {"a5"}
        )


class TestActionSpace:
    def test_figure1(self, figure1_model):
        assert action_space(figure1_model, {"a1"}) == {
            "a1", "a2", "a3", "a4", "a5", "a6",
        }

    def test_candidates_exclude_activity(self, figure1_model):
        assert candidate_actions(figure1_model, {"a1"}) == {
            "a2", "a3", "a4", "a5", "a6",
        }

    def test_candidates_keep_unknown_out(self, figure1_model):
        candidates = candidate_actions(figure1_model, {"a1", "martian"})
        assert "martian" not in candidates


class TestGoalCompleteness:
    def test_partial(self, recipe_model):
        value = goal_completeness(
            recipe_model, "olivier salad", {"potatoes", "carrots"}
        )
        assert value == pytest.approx(2 / 3)

    def test_complete(self, recipe_model):
        value = goal_completeness(
            recipe_model, "olivier salad", {"potatoes", "carrots", "pickles"}
        )
        assert value == 1.0

    def test_untouched(self, recipe_model):
        assert goal_completeness(recipe_model, "carrot cake", {"pickles"}) == 0.0
