"""Crash-atomicity of the library stores: kill a saver mid-save, reload.

Each test forks a real subprocess that starts overwriting a previously
saved library and dies (``os._exit``) at a chosen crash point — before
the JSON rename, mid-way through the temp write, or inside the SQLite
transaction.  The survivor property under test: the *prior* library must
still load, bit-for-bit, no matter where the writer died.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.library import ImplementationLibrary
from repro.exceptions import StorageError
from repro.storage import JsonLibraryStore, SqliteLibraryStore

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Exit code the crash points use; distinguishes "died where we aimed"
#: from "save completed" (1) or an unexpected traceback.
CRASH = 9

_JSON_CHILD = """
import os, sys
sys.path.insert(0, {src!r})
import repro.storage.json_store as json_store_module
from repro.storage import JsonLibraryStore
from repro.core.library import ImplementationLibrary

path, mode = sys.argv[1], sys.argv[2]
library = ImplementationLibrary()
for i in range(200):
    library.add_pair(f"new_goal_{{i}}", [f"x{{i}}", f"y{{i}}", f"z{{i}}"])

if mode == "before-replace":
    # The writer dies after the temp file is complete but before the
    # atomic rename publishes it.
    json_store_module.os.replace = lambda *a, **k: os._exit({crash})
elif mode == "mid-write":
    # The writer dies with the temp file torn half-way through.
    def torn_dump(obj, handle, **kw):
        handle.write('{{"implementations": [{{"goal": "torn"')
        handle.flush()
        os.fsync(handle.fileno())
        os._exit({crash})
    json_store_module.json.dump = torn_dump

JsonLibraryStore(path).save(library)
os._exit(1)  # the save must never complete past the crash point
"""

_SQLITE_CHILD = """
import os, sys
sys.path.insert(0, {src!r})
from repro.storage import SqliteLibraryStore
from repro.core.library import ImplementationLibrary

path = sys.argv[1]
library = ImplementationLibrary()
for i in range(200):
    library.add_pair(f"new_goal_{{i}}", [f"x{{i}}", f"y{{i}}", f"z{{i}}"])

store = SqliteLibraryStore(path)
connection = store._connect()  # schema exists; arm the killer afterwards
state = {{"ticks": 0}}

def killer():
    # Let the transaction open and the DELETEs begin, then die with the
    # replacement half-inserted.
    state["ticks"] += 1
    if state["ticks"] > 40:
        os._exit({crash})
    return 0

connection.set_progress_handler(killer, 25)
store.save(library)
os._exit(1)  # the save must never complete past the crash point
"""


def _prior_library() -> ImplementationLibrary:
    library = ImplementationLibrary()
    library.add_pair("olivier salad", ["potatoes", "carrots", "pickles"])
    library.add_pair("mashed potatoes", ["potatoes", "nutmeg", "butter"])
    library.add_pair("carrot cake", ["carrots", "flour", "eggs", "sugar"])
    return library


def _as_pairs(library: ImplementationLibrary) -> list[tuple[str, set[str]]]:
    return sorted(
        (str(impl.goal), {str(a) for a in impl.actions}) for impl in library
    )


def _run_child(template: str, *argv: str) -> subprocess.CompletedProcess:
    script = template.format(src=SRC, crash=CRASH)
    return subprocess.run(
        [sys.executable, "-c", script, *argv],
        capture_output=True,
        text=True,
        timeout=60,
    )


class TestJsonKillMidSave:
    @pytest.mark.parametrize("mode", ["before-replace", "mid-write"])
    def test_prior_library_survives(self, tmp_path, mode):
        path = tmp_path / "lib.json"
        prior = _prior_library()
        JsonLibraryStore(path).save(prior)

        result = _run_child(_JSON_CHILD, str(path), mode)
        assert result.returncode == CRASH, result.stderr

        reloaded = JsonLibraryStore(path).load()
        assert _as_pairs(reloaded) == _as_pairs(prior)

    def test_first_save_crash_leaves_no_file(self, tmp_path):
        path = tmp_path / "lib.json"
        result = _run_child(_JSON_CHILD, str(path), "before-replace")
        assert result.returncode == CRASH, result.stderr
        # No prior library: the destination must not exist (a torn file
        # would make exists() lie to callers).
        assert not path.exists()
        with pytest.raises(StorageError):
            JsonLibraryStore(path).load()

    def test_completed_save_wins(self, tmp_path):
        # Control: without a crash the new library replaces the old one.
        path = tmp_path / "lib.json"
        store = JsonLibraryStore(path)
        store.save(_prior_library())
        replacement = ImplementationLibrary()
        replacement.add_pair("soup", ["leek", "salt"])
        store.save(replacement)
        assert _as_pairs(store.load()) == _as_pairs(replacement)


class TestSqliteKillMidSave:
    def test_prior_library_survives_mid_transaction_kill(self, tmp_path):
        path = tmp_path / "lib.db"
        prior = _prior_library()
        with SqliteLibraryStore(path) as store:
            store.save(prior)

        result = _run_child(_SQLITE_CHILD, str(path))
        assert result.returncode == CRASH, result.stderr

        with SqliteLibraryStore(path) as store:
            reloaded = store.load()
        assert _as_pairs(reloaded) == _as_pairs(prior)

    def test_wal_mode_active(self, tmp_path):
        # The rollback guarantee above rides on WAL journaling; pin it so
        # a refactor dropping the pragma fails loudly, not just flakily.
        path = tmp_path / "lib.db"
        with SqliteLibraryStore(path) as store:
            store.save(_prior_library())
            mode = store._connect().execute(
                "PRAGMA journal_mode"
            ).fetchone()[0]
        assert mode == "wal"
