"""Smoke tests: every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_all_examples_discovered():
    names = {script.stem for script in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 8
