"""``repro monitor`` vs a draining server (503 + ``Retry-After``).

The bug: ``urllib.error.HTTPError`` *is a* ``URLError``, so a draining
server's 503 fell into ``run_monitor``'s generic ``cannot poll`` arm and
``--once`` exited 1 while the server was alive and politely asking the
client to wait.  The fix (``poll_with_drain_grace``) honors the
``Retry-After`` hint — capped at one interval — with one courtesy retry
before the failure arm is allowed to fire.
"""

from __future__ import annotations

import email.message
import json
import threading
import urllib.error
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.obs.console import (
    _retry_after_seconds,
    poll_with_drain_grace,
    run_monitor,
)


def _http_error(
    code: int, retry_after: str | None = None
) -> urllib.error.HTTPError:
    headers = email.message.Message()
    if retry_after is not None:
        headers["Retry-After"] = retry_after
    return urllib.error.HTTPError(
        "http://x/metrics", code, "busy", headers, None
    )


class TestRetryAfterSeconds:
    def test_draining_503(self):
        assert _retry_after_seconds(_http_error(503, "1.5")) == 1.5

    def test_integer_header(self):
        assert _retry_after_seconds(_http_error(503, "2")) == 2.0

    @pytest.mark.parametrize(
        "exc",
        [
            _http_error(503),  # no hint: can't tell drain from overload
            _http_error(500, "1.5"),  # not back-pressure
            _http_error(503, "soon"),  # unparseable
            _http_error(503, "-1"),  # nonsense
            urllib.error.URLError("refused"),  # actually dead
        ],
    )
    def test_non_drain_errors_return_none(self, exc):
        assert _retry_after_seconds(exc) is None


class TestPollWithDrainGrace:
    def _patch_collect(self, monkeypatch, outcomes):
        """``collect_snapshot`` stub popping one scripted outcome per call."""
        calls = []

        def fake_collect(url, window=None, step=None):
            calls.append(url)
            outcome = outcomes.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        monkeypatch.setattr(
            "repro.obs.console.collect_snapshot", fake_collect
        )
        return calls

    def test_retries_after_drain_503_and_returns_snapshot(self, monkeypatch):
        snapshot = {"rps": {"current": 1.0}}
        calls = self._patch_collect(
            monkeypatch, [_http_error(503, "0.25"), snapshot]
        )
        sleeps: list[float] = []
        result = poll_with_drain_grace(
            "http://x", interval=2.0, sleep=sleeps.append
        )
        assert result is snapshot
        assert len(calls) == 2
        assert sleeps == [0.25]

    def test_wait_is_capped_at_one_interval(self, monkeypatch):
        self._patch_collect(monkeypatch, [_http_error(503, "300"), {}])
        sleeps: list[float] = []
        poll_with_drain_grace("http://x", interval=2.0, sleep=sleeps.append)
        assert sleeps == [2.0]

    def test_second_503_propagates(self, monkeypatch):
        # One courtesy retry, not an infinite stall on a stuck drain.
        self._patch_collect(
            monkeypatch,
            [_http_error(503, "0.1"), _http_error(503, "0.1")],
        )
        with pytest.raises(urllib.error.HTTPError):
            poll_with_drain_grace(
                "http://x", interval=1.0, sleep=lambda _s: None
            )

    def test_503_without_retry_after_propagates_immediately(self, monkeypatch):
        calls = self._patch_collect(monkeypatch, [_http_error(503)])
        sleeps: list[float] = []
        with pytest.raises(urllib.error.HTTPError):
            poll_with_drain_grace(
                "http://x", interval=1.0, sleep=sleeps.append
            )
        assert len(calls) == 1 and sleeps == []

    def test_connection_errors_propagate_immediately(self, monkeypatch):
        self._patch_collect(monkeypatch, [urllib.error.URLError("refused")])
        with pytest.raises(urllib.error.URLError):
            poll_with_drain_grace(
                "http://x", interval=1.0, sleep=lambda _s: None
            )


class _DrainingStub(ThreadingHTTPServer):
    """Answers 503 + ``Retry-After`` while ``draining`` is set, then real
    (minimal) console payloads — a server mid graceful restart."""

    draining = True

    def __init__(self):
        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # noqa: A002 - stdlib naming
                pass

            def do_GET(handler):  # noqa: N802 - stdlib naming
                if self.draining:
                    handler.send_response(503)
                    handler.send_header("Retry-After", "0.2")
                    handler.end_headers()
                    return
                if handler.path == "/metrics":
                    body = b"repro_http_requests_total 4\n"
                    content_type = "text/plain"
                elif handler.path.startswith("/debug/history?"):
                    handler.send_response(404)
                    handler.end_headers()
                    return
                else:  # /debug/vars, /debug/quality, /debug/history
                    body = json.dumps({"families": []}).encode()
                    content_type = "application/json"
                handler.send_response(200)
                handler.send_header("Content-Type", content_type)
                handler.send_header("Content-Length", str(len(body)))
                handler.end_headers()
                handler.wfile.write(body)

        super().__init__(("127.0.0.1", 0), Handler)


@pytest.fixture
def stub():
    server = _DrainingStub()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join()


class TestDrainThenMonitor:
    def test_monitor_survives_a_drain_that_finishes(self, stub):
        # The drain-then-monitor race: first poll lands during the drain
        # window, the courtesy wait covers the restart, the retry sees
        # the healthy server — exit 0, one rendered frame.
        url = f"http://127.0.0.1:{stub.server_address[1]}"
        timer = threading.Timer(0.05, lambda: setattr(stub, "draining", False))
        timer.start()
        frames: list[str] = []
        try:
            code = run_monitor(url, interval=5.0, once=True, out=frames.append)
        finally:
            timer.cancel()
        assert code == 0
        assert frames and "cannot poll" not in frames[0]

    def test_monitor_still_fails_when_drain_never_ends(self, stub):
        # One courtesy retry is the whole grace: a server that stays
        # draining past it is correctly reported as unpollable.
        url = f"http://127.0.0.1:{stub.server_address[1]}"
        frames: list[str] = []
        code = run_monitor(url, interval=0.2, once=True, out=frames.append)
        assert code == 1
        assert frames and "cannot poll" in frames[0]
