"""Unit tests for the Focus strategy (both measures)."""

import pytest

from repro.core import AssociationGoalModel
from repro.core.strategies import create_strategy
from repro.core.strategies.focus import FocusStrategy, closeness, completeness


class TestMeasures:
    def test_completeness_equation3(self):
        impl = frozenset({0, 1, 2, 3})
        assert completeness(impl, frozenset({0, 1})) == pytest.approx(0.5)

    def test_completeness_full(self):
        impl = frozenset({0, 1})
        assert completeness(impl, frozenset({0, 1, 5})) == 1.0

    def test_completeness_zero(self):
        assert completeness(frozenset({0}), frozenset({9})) == 0.0

    def test_closeness_equation4(self):
        impl = frozenset({0, 1, 2, 3})
        assert closeness(impl, frozenset({0, 1})) == pytest.approx(0.5)

    def test_closeness_one_missing(self):
        assert closeness(frozenset({0, 1}), frozenset({0})) == 1.0


class TestConstruction:
    def test_invalid_measure_rejected(self):
        with pytest.raises(ValueError, match="measure"):
            FocusStrategy(measure="nope")

    def test_names(self):
        assert FocusStrategy("completeness").name == "focus_cmp"
        assert FocusStrategy("closeness").name == "focus_cl"

    def test_registry_factories(self):
        assert create_strategy("focus_cmp").measure == "completeness"
        assert create_strategy("focus_cl").measure == "closeness"


class TestMeasuresDisagree:
    """Completeness and closeness favour different implementations."""

    @pytest.fixture
    def model(self):
        # big: 4 of 6 done (completeness 0.67, 2 missing).
        # small: 1 of 2 done (completeness 0.5, 1 missing).
        return AssociationGoalModel.from_pairs(
            [
                ("big", {"h1", "h2", "h3", "h4", "m1", "m2"}),
                ("small", {"h1", "m3"}),
            ]
        )

    @pytest.fixture
    def activity(self, model):
        return model.encode_activity({"h1", "h2", "h3", "h4"})

    def test_cmp_prefers_big(self, model, activity):
        ranked = FocusStrategy("completeness").rank(model, activity, k=1)
        assert model.action_label(ranked[0][0]) in {"m1", "m2"}

    def test_cl_prefers_small(self, model, activity):
        ranked = FocusStrategy("closeness").rank(model, activity, k=1)
        assert model.action_label(ranked[0][0]) == "m3"


class TestRanking:
    def test_never_recommends_performed_actions(self, figure1_model):
        activity = figure1_model.encode_activity({"a1", "a2"})
        for measure in ("completeness", "closeness"):
            ranked = FocusStrategy(measure).rank(figure1_model, activity, k=10)
            labels = {figure1_model.action_label(a) for a, _ in ranked}
            assert not labels & {"a1", "a2"}

    def test_fully_performed_implementations_skipped(self):
        model = AssociationGoalModel.from_pairs(
            [("done", {"a", "b"}), ("open", {"a", "c"})]
        )
        activity = model.encode_activity({"a", "b"})
        ranked = FocusStrategy("closeness").rank(model, activity, k=10)
        assert [model.action_label(a) for a, _ in ranked] == ["c"]

    def test_no_candidates_yields_empty(self):
        model = AssociationGoalModel.from_pairs([("g", {"a", "b"})])
        activity = model.encode_activity({"a", "b"})
        assert FocusStrategy("completeness").rank(model, activity, k=5) == []

    def test_moves_to_next_implementation_when_exhausted(self, recipe_model):
        """Top implementation has 1 missing action; list of 3 must continue."""
        activity = recipe_model.encode_activity({"potatoes", "carrots"})
        ranked = FocusStrategy("completeness").rank(recipe_model, activity, k=3)
        labels = [recipe_model.action_label(a) for a, _ in ranked]
        assert labels[0] == "pickles"  # olivier salad: 2/3 complete
        assert len(labels) == 3

    def test_scores_are_implementation_scores(self, recipe_model):
        activity = recipe_model.encode_activity({"potatoes", "carrots"})
        ranked = FocusStrategy("completeness").rank(recipe_model, activity, k=1)
        assert ranked[0][1] == pytest.approx(2 / 3)

    def test_action_kept_at_best_score(self):
        """An action in several implementations enters at the best one."""
        model = AssociationGoalModel.from_pairs(
            [
                ("near", {"h1", "h2", "x"}),   # completeness 2/3
                ("far", {"h1", "x", "y", "z"}),  # completeness 1/4
            ]
        )
        activity = model.encode_activity({"h1", "h2"})
        ranked = FocusStrategy("completeness").rank(model, activity, k=10)
        scores = {model.action_label(a): s for a, s in ranked}
        assert scores["x"] == pytest.approx(2 / 3)

    def test_deterministic_tie_break_by_action_id(self, figure1_model):
        activity = figure1_model.encode_activity({"a1"})
        first = FocusStrategy("completeness").rank(figure1_model, activity, 10)
        second = FocusStrategy("completeness").rank(figure1_model, activity, 10)
        assert first == second

    def test_ranked_implementations_exclude_complete(self, recipe_model):
        strategy = FocusStrategy("completeness")
        activity = recipe_model.encode_activity(
            {"potatoes", "carrots", "pickles"}
        )
        pids = [p for p, _ in strategy.ranked_implementations(recipe_model, activity)]
        goals = {recipe_model.goal_label(recipe_model.implementation_goal(p)) for p in pids}
        assert "olivier salad" not in goals

    def test_k_truncation(self, figure1_model):
        activity = figure1_model.encode_activity({"a1"})
        assert len(FocusStrategy("completeness").rank(figure1_model, activity, 2)) == 2
