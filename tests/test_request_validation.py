"""Request-count validation at the library layer (S2).

``isinstance(True, int)`` holds, so a naive ``k <= 0`` check lets ``k=True``
through as 1.  The HTTP layer already rejects boolean ``k``; these tests pin
the same contract *below* it, so embedded callers (notebooks, batch jobs)
get a :class:`~repro.exceptions.RecommendationError` instead of a silent
top-1 ranking.  Every public ranking entry point is covered: the facade,
the strategy base class, and both ``BatchRecommender`` entry points
(including ``chunk_size``).
"""

from __future__ import annotations

import pytest

from repro.core import GoalRecommender
from repro.core.strategies.base import require_request_count
from repro.core.strategies.breadth import BreadthStrategy
from repro.core.vectorized import BatchRecommender
from repro.exceptions import RecommendationError

BAD_COUNTS = (True, False, 0, -1, 2.0, "3", None)


class TestRequireRequestCount:
    @pytest.mark.parametrize("value", BAD_COUNTS)
    def test_rejects_non_positive_and_non_int(self, value):
        with pytest.raises(RecommendationError):
            require_request_count(value)

    def test_error_names_the_parameter(self):
        with pytest.raises(RecommendationError, match="chunk_size"):
            require_request_count(True, "chunk_size")

    def test_accepts_positive_int(self):
        require_request_count(1)
        require_request_count(10_000)


class TestFacadeAndStrategy:
    @pytest.mark.parametrize("value", BAD_COUNTS)
    def test_goal_recommender_rejects(self, figure1_recommender, value):
        with pytest.raises(RecommendationError):
            figure1_recommender.recommend({"a1"}, k=value)

    def test_strategy_recommend_rejects_bool(self, figure1_model):
        activity = figure1_model.encode_activity({"a1"})
        with pytest.raises(RecommendationError):
            BreadthStrategy().recommend(figure1_model, activity, k=True)


class TestBatchRecommender:
    @pytest.mark.parametrize("value", (True, False, 0, 2.0))
    def test_recommend_rejects(self, figure1_model, value):
        batch = BatchRecommender(figure1_model)
        with pytest.raises(RecommendationError):
            batch.recommend({"a1"}, k=value)

    @pytest.mark.parametrize("value", (True, False, 0, 2.0))
    def test_recommend_many_rejects_k(self, figure1_model, value):
        batch = BatchRecommender(figure1_model)
        with pytest.raises(RecommendationError):
            batch.recommend_many([frozenset({"a1"})], k=value)

    def test_recommend_many_rejects_bool_chunk_size(self, figure1_model):
        batch = BatchRecommender(figure1_model)
        with pytest.raises(RecommendationError, match="chunk_size"):
            batch.recommend_many([frozenset({"a1"})], k=5, chunk_size=True)

    def test_pruned_budget_rejects_bool(self, figure1_model):
        batch = BatchRecommender(figure1_model)
        activity = figure1_model.encode_activity({"a1"})
        with pytest.raises(RecommendationError, match="budget"):
            batch.pruned_breadth_rank(activity, 5, budget=True)

    def test_valid_request_passes(self, figure1_recommender):
        result = figure1_recommender.recommend({"a1"}, k=3)
        assert len(result) <= 3
