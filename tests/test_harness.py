"""Unit tests for the experiment harness."""

import pytest

from repro.core import PAPER_STRATEGIES
from repro.eval import ExperimentHarness
from repro.exceptions import EvaluationError


@pytest.fixture(scope="module")
def foodmart_harness(request):
    from repro.data import FoodMartConfig, generate_foodmart

    dataset = generate_foodmart(FoodMartConfig.tiny(), seed=0)
    return ExperimentHarness(dataset, k=5, max_users=20, seed=0)


@pytest.fixture(scope="module")
def fortythree_harness():
    from repro.data import FortyThreeConfig, generate_fortythree

    dataset = generate_fortythree(FortyThreeConfig.tiny(), seed=1)
    return ExperimentHarness(dataset, k=5, max_users=20, seed=0)


class TestGoalMethods:
    def test_one_list_per_user(self, foodmart_harness):
        lists = foodmart_harness.run_goal_method("breadth")
        assert len(lists) == len(foodmart_harness.split)

    def test_lists_respect_k(self, foodmart_harness):
        for rec in foodmart_harness.run_goal_method("focus_cmp"):
            assert len(rec) <= 5

    def test_caching_returns_same_objects(self, foodmart_harness):
        first = foodmart_harness.run_goal_method("breadth")
        second = foodmart_harness.run_goal_method("breadth")
        assert first is second

    def test_run_all_paper_strategies(self, fortythree_harness):
        results = fortythree_harness.run_goal_methods()
        assert set(results) == set(PAPER_STRATEGIES)

    def test_recommendations_exclude_observed(self, fortythree_harness):
        lists = fortythree_harness.run_goal_method("breadth")
        for rec, user in zip(lists, fortythree_harness.split):
            assert not rec.action_set() & user.observed


class TestBaselines:
    def test_applicable_baselines_foodmart(self, foodmart_harness):
        assert "content" in foodmart_harness.baseline_names()

    def test_applicable_baselines_fortythree(self, fortythree_harness):
        assert "content" not in fortythree_harness.baseline_names()

    def test_content_on_featureless_dataset_raises(self, fortythree_harness):
        with pytest.raises(EvaluationError, match="no item features"):
            fortythree_harness.run_baseline("content")

    def test_unknown_baseline_raises(self, foodmart_harness):
        with pytest.raises(EvaluationError, match="unknown baseline"):
            foodmart_harness.run_baseline("mystery")

    def test_baselines_answer_every_user(self, foodmart_harness):
        lists = foodmart_harness.run_baseline("cf_knn")
        assert len(lists) == len(foodmart_harness.split)

    def test_content_similarity_available_after_run(self, foodmart_harness):
        similarity = foodmart_harness.content_similarity()
        value = similarity("product_00000", "product_00001")
        assert 0.0 <= value <= 1.0


class TestResult:
    def test_methods_listing(self, foodmart_harness):
        foodmart_harness.run_goal_method("breadth")
        assert "breadth" in foodmart_harness.result.methods()

    def test_unknown_method_raises(self, foodmart_harness):
        with pytest.raises(EvaluationError, match="not run"):
            foodmart_harness.result.lists("never_ran")

    def test_wrong_list_count_rejected(self, foodmart_harness):
        with pytest.raises(EvaluationError, match="expected"):
            foodmart_harness.result.add("broken", [])

    def test_accessors_aligned_with_split(self, fortythree_harness):
        harness = fortythree_harness
        assert len(harness.observed_activities()) == len(harness.split)
        assert len(harness.hidden_sets()) == len(harness.split)
        assert len(harness.user_goals()) == len(harness.split)

    def test_user_goals_present_for_43t(self, fortythree_harness):
        assert all(goals for goals in fortythree_harness.user_goals())
