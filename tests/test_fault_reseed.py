"""Per-worker fault RNG divergence (``FaultInjector.with_seed``).

The bug: after ``fork``, every worker inherited the parent injector's
RNG state verbatim, so a ``--fault-spec`` pool replayed the *identical*
fault sequence in every process — N workers, one fault schedule.  The
fix re-seeds each worker as ``seed ^ worker_index`` (docs/resilience.md);
these tests pin both the divergence and the determinism it must keep.
"""

from __future__ import annotations

from repro.resilience.faults import (
    FaultInjectedError,
    FaultInjector,
    parse_fault_spec,
)


def _decision_sequence(injector: FaultInjector, draws: int = 64) -> list[bool]:
    """Whether each of ``draws`` fires injected, as a replayable trace."""
    outcomes = []
    for _ in range(draws):
        try:
            injector.fire("storage")
            outcomes.append(False)
        except FaultInjectedError:
            outcomes.append(True)
    return outcomes


def _injector(seed: int) -> FaultInjector:
    return parse_fault_spec(f"seed={seed},storage:exception:0.5")


class TestWithSeed:
    def test_reseeded_clone_keeps_rules_and_new_seed(self):
        base = parse_fault_spec(
            "seed=7,storage:exception:0.5,model:latency:1.0:5"
        )
        clone = base.with_seed(7 ^ 3)
        assert clone.seed == 7 ^ 3
        assert base.seed == 7
        # The rules travel: the latency rule still fires on its site.
        clone.fire("model")
        assert clone.injected_counts().get(("model", "latency"), 0) == 1

    def test_reseed_is_deterministic(self):
        # Same derived seed → identical decision sequence: reseeding must
        # not trade reproducibility for divergence.
        a = _decision_sequence(_injector(7).with_seed(7 ^ 2))
        b = _decision_sequence(_injector(7).with_seed(7 ^ 2))
        assert a == b

    def test_workers_diverge_from_parent_and_each_other(self):
        # The multi-worker bootstrap derives seed ^ index per worker.
        base_seed = 7
        parent = _decision_sequence(_injector(base_seed))
        workers = [
            _decision_sequence(
                _injector(base_seed).with_seed(base_seed ^ index)
            )
            for index in (1, 2, 3)
        ]
        # Every worker draws a different schedule than the parent...
        for sequence in workers:
            assert sequence != parent
        # ...and than every sibling.
        assert len({tuple(s) for s in workers}) == len(workers)

    def test_clone_state_is_fresh_not_inherited(self):
        # The regression itself: a clone must restart from its seed, not
        # continue the parent's RNG mid-stream (which is what a forked
        # copy effectively does).
        parent = _injector(7)
        _decision_sequence(parent, draws=10)  # advance the parent's RNG
        resumed = _decision_sequence(parent, draws=32)
        fresh = _decision_sequence(_injector(7).with_seed(7), draws=32)
        # A fresh seed-7 clone replays from the start of the seed-7
        # sequence; the advanced parent continues mid-stream.
        assert fresh == _decision_sequence(_injector(7), draws=32)
        assert fresh != resumed
