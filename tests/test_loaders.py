"""Unit tests for dataset JSON (de)serialization."""

import json

import pytest

from repro.data import load_dataset, save_dataset
from repro.data.loaders import (
    dataset_from_dict,
    dataset_to_dict,
    library_from_dict,
    library_to_dict,
)
from repro.exceptions import DataError


class TestLibraryRoundTrip:
    def test_roundtrip_preserves_pairs(self, recipe_library):
        restored = library_from_dict(library_to_dict(recipe_library))
        assert [(i.goal, i.actions) for i in restored] == [
            (i.goal, i.actions) for i in recipe_library
        ]

    def test_missing_key_raises(self):
        with pytest.raises(DataError, match="implementations"):
            library_from_dict({})

    def test_malformed_row_raises(self):
        with pytest.raises(DataError, match="malformed"):
            library_from_dict({"implementations": [{"goal": "g"}]})

    def test_empty_actions_row_raises(self):
        with pytest.raises(DataError, match="malformed"):
            library_from_dict(
                {"implementations": [{"goal": "g", "actions": []}]}
            )


class TestDatasetRoundTrip:
    def test_roundtrip_foodmart(self, tmp_path, foodmart_tiny):
        path = save_dataset(foodmart_tiny, tmp_path / "fm.json")
        restored = load_dataset(path)
        assert restored.name == foodmart_tiny.name
        assert restored.activities() == foodmart_tiny.activities()
        assert restored.item_features == foodmart_tiny.item_features

    def test_roundtrip_fortythree_keeps_goals(self, tmp_path, fortythree_tiny):
        path = save_dataset(fortythree_tiny, tmp_path / "ft.json")
        restored = load_dataset(path)
        assert restored.item_features is None
        assert [u.goals for u in restored.users] == [
            u.goals for u in fortythree_tiny.users
        ]

    def test_dict_roundtrip_without_disk(self, fortythree_tiny):
        restored = dataset_from_dict(dataset_to_dict(fortythree_tiny))
        assert restored.name == fortythree_tiny.name

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataError, match="not found"):
            load_dataset(tmp_path / "nope.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DataError, match="invalid dataset"):
            load_dataset(path)

    def test_wrong_version_raises(self, tmp_path, foodmart_tiny):
        payload = dataset_to_dict(foodmart_tiny)
        payload["format_version"] = 99
        path = tmp_path / "v99.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(DataError, match="version"):
            load_dataset(path)

    def test_missing_users_key_raises(self, foodmart_tiny):
        payload = dataset_to_dict(foodmart_tiny)
        del payload["users"]
        with pytest.raises(DataError, match="malformed"):
            dataset_from_dict(payload)

    def test_parent_directories_created(self, tmp_path, foodmart_tiny):
        path = save_dataset(foodmart_tiny, tmp_path / "a" / "b" / "fm.json")
        assert path.exists()


class TestGzipDatasets:
    def test_gz_roundtrip(self, tmp_path, fortythree_tiny):
        path = save_dataset(fortythree_tiny, tmp_path / "ds.json.gz")
        restored = load_dataset(path)
        assert restored.activities() == fortythree_tiny.activities()

    def test_gz_actually_compressed(self, tmp_path, fortythree_tiny):
        plain = save_dataset(fortythree_tiny, tmp_path / "ds.json")
        compressed = save_dataset(fortythree_tiny, tmp_path / "ds.json.gz")
        assert compressed.stat().st_size < plain.stat().st_size / 2

    def test_corrupt_gz_raises(self, tmp_path):
        path = tmp_path / "bad.json.gz"
        path.write_bytes(b"not gzip at all")
        with pytest.raises(DataError, match="invalid dataset"):
            load_dataset(path)
