"""Worked examples from the paper, verified end to end.

Each test pins one concrete claim the paper makes about its own running
examples (the introduction's grocery cart, Example 3.2/4.3's Figure 1
model, Section 5.3's profile construction), so a regression in any formula
shows up against the text itself.
"""

import pytest

from repro.core import AssociationGoalModel, GoalRecommender
from repro.core.strategies.best_match import BestMatchStrategy


class TestIntroductionScenario:
    """'…an item to be recommended would be pickles.  Another useful
    ingredient would be nutmeg…' (Section 1)."""

    @pytest.fixture
    def recommender(self, recipe_model):
        return GoalRecommender(recipe_model)

    def test_pickles_recommended_first(self, recommender):
        for strategy in ("focus_cmp", "focus_cl", "breadth"):
            result = recommender.recommend(
                {"potatoes", "carrots"}, k=1, strategy=strategy
            )
            assert result.actions() == ["pickles"]

    def test_nutmeg_among_top_recommendations(self, recommender):
        result = recommender.recommend({"potatoes", "carrots"}, k=2)
        assert "nutmeg" in result.actions()

    def test_nutmeg_grounded_in_two_recipes(self, recommender):
        """'…a spice used for mashed potatoes and pan-fried carrots, two
        recipes that require products some of which are already in the
        customer's cart.'"""
        evidence = recommender.explain({"potatoes", "carrots"}, "nutmeg")
        assert set(evidence) == {"mashed potatoes", "pan-fried carrots"}


class TestExample43:
    """Example 4.3: the spaces of action a1 in the Figure 1 model."""

    def test_implementation_space(self, figure1_model):
        m = figure1_model
        pids = m.implementations_of_action(m.action_id("a1"))
        assert len(pids) == 4  # p1, p2, p3, p5

    def test_goal_space(self, figure1_model):
        assert figure1_model.goal_space_labels({"a1"}) == {
            "g1", "g2", "g3", "g5",
        }

    def test_action_space(self, figure1_model):
        """AS(a1) = 'the set of all the other actions in A1, A2, A3 and A5'."""
        space = figure1_model.action_space_labels({"a1"}) - {"a1"}
        assert space == {"a2", "a3", "a4", "a5", "a6"}


class TestSection53Profile:
    """Section 5.3: the profile counts implementations per goal.

    The paper's own numeric example is garbled in the text, so we verify
    the *construction rule* it states: 'The user profile captures for each
    goal in GS(H) how many of the user actions contribute to this goal
    considering the different goal implementations for the same goal as
    well.'
    """

    @pytest.fixture
    def model(self):
        return AssociationGoalModel.from_pairs(
            [
                ("meeting friends", {"h1", "x"}),
                ("meeting friends", {"h1", "h2", "y"}),
                ("meeting friends", {"h2", "z"}),
                ("going to office", {"h1", "w"}),
                ("be warm", {"q", "w"}),
            ]
        )

    def test_profile_counts_pairs(self, model):
        strategy = BestMatchStrategy()
        activity = model.encode_activity({"h1", "h2"})
        axis = strategy.goal_axis(model, activity)
        profile = strategy.profile(model, activity, axis)
        by_goal = dict(zip((model.goal_label(g) for g in axis), profile))
        # meeting friends: h1 in 2 impls + h2 in 2 impls = 4 pairs;
        # going to office: h1 in 1 impl; 'be warm' untouched -> not in axis.
        assert by_goal == {"meeting friends": 4.0, "going to office": 1.0}

    def test_candidate_closer_when_serving_effort_goals(self, model):
        """'action a1 … would be closer to the user profile than that of a4
        since the first contributes to [the effort goals] …; while the
        latter contributes … to "be warm" to which the user has shown no
        interest.'  Here: y (2 touched goals' worth of service) vs w (one
        touched goal + one untouched)."""
        strategy = BestMatchStrategy()
        activity = model.encode_activity({"h1", "h2"})
        distances = strategy.distances(model, activity)
        y = distances[model.action_id("y")]
        w = distances[model.action_id("w")]
        assert y < w
