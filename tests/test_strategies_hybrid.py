"""Unit tests for the hybrid goal + content strategy."""

import pytest

from repro.core import AssociationGoalModel
from repro.core.strategies import create_strategy
from repro.core.strategies.breadth import BreadthStrategy
from repro.core.strategies.hybrid import HybridStrategy
from repro.exceptions import RecommendationError

FEATURES = {
    "h1": {"dairy"},
    "h2": {"dairy"},
    "dairy_candidate": {"dairy"},
    "tool_candidate": {"tool"},
    "plain": set(),
}


@pytest.fixture
def model():
    # Both candidates serve the same goals equally; only content differs.
    return AssociationGoalModel.from_pairs(
        [
            ("g1", {"h1", "h2", "dairy_candidate"}),
            ("g2", {"h1", "h2", "tool_candidate"}),
            ("g3", {"h1", "plain"}),
        ]
    )


@pytest.fixture
def activity(model):
    return model.encode_activity({"h1", "h2"})


class TestConstruction:
    def test_features_required(self):
        with pytest.raises(RecommendationError, match="item_features"):
            HybridStrategy()

    def test_alpha_validated(self):
        with pytest.raises(ValueError, match="alpha"):
            HybridStrategy(item_features=FEATURES, alpha=1.5)

    def test_name_encodes_configuration(self):
        strategy = HybridStrategy(item_features=FEATURES, alpha=0.25)
        assert strategy.name == "hybrid_breadth_a0.25"

    def test_registry_forwarding(self):
        strategy = create_strategy("hybrid", item_features=FEATURES, alpha=0.1)
        assert isinstance(strategy, HybridStrategy)

    def test_custom_base_strategy(self):
        base = BreadthStrategy(variant="count")
        strategy = HybridStrategy(item_features=FEATURES, base=base)
        assert "breadth_count" in strategy.name


class TestContentScore:
    def test_matching_features_score_high(self):
        strategy = HybridStrategy(item_features=FEATURES)
        profile = {"dairy": 2.0}
        assert strategy.content_score("dairy_candidate", profile) == pytest.approx(
            1.0
        )

    def test_disjoint_features_score_zero(self):
        strategy = HybridStrategy(item_features=FEATURES)
        assert strategy.content_score("tool_candidate", {"dairy": 2.0}) == 0.0

    def test_unknown_or_featureless_score_zero(self):
        strategy = HybridStrategy(item_features=FEATURES)
        assert strategy.content_score("plain", {"dairy": 1.0}) == 0.0
        assert strategy.content_score("martian", {"dairy": 1.0}) == 0.0


class TestBlending:
    def test_alpha_zero_matches_base_ranking(self, model, activity):
        base = BreadthStrategy()
        hybrid = HybridStrategy(item_features=FEATURES, alpha=0.0)
        base_ids = [aid for aid, _ in base.rank(model, activity, 10)]
        hybrid_ids = [aid for aid, _ in hybrid.rank(model, activity, 10)]
        assert base_ids == hybrid_ids

    def test_content_breaks_goal_ties(self, model, activity):
        """Equal goal scores: the dairy candidate must win under alpha>0."""
        hybrid = HybridStrategy(item_features=FEATURES, alpha=0.5)
        ranked = hybrid.rank(model, activity, 10)
        labels = [model.action_label(aid) for aid, _ in ranked]
        assert labels.index("dairy_candidate") < labels.index("tool_candidate")

    def test_alpha_one_is_pure_content_over_candidates(self, model, activity):
        hybrid = HybridStrategy(item_features=FEATURES, alpha=1.0)
        ranked = hybrid.rank(model, activity, 10)
        scores = {model.action_label(aid): s for aid, s in ranked}
        assert scores["dairy_candidate"] > scores["tool_candidate"]
        # Still goal-grounded: only candidates from AS(H) - H appear.
        assert set(scores) <= {"dairy_candidate", "tool_candidate", "plain"}

    def test_scores_bounded(self, model, activity):
        hybrid = HybridStrategy(item_features=FEATURES, alpha=0.5)
        for _, score in hybrid.rank(model, activity, 10):
            assert -1e-9 <= score <= 1.0 + 1e-9

    def test_empty_activity_empty_result(self, model):
        hybrid = HybridStrategy(item_features=FEATURES)
        assert hybrid.rank(model, frozenset(), 5) == []

    def test_never_recommends_activity(self, model, activity):
        hybrid = HybridStrategy(item_features=FEATURES, alpha=0.7)
        labels = {
            model.action_label(aid)
            for aid, _ in hybrid.rank(model, activity, 10)
        }
        assert not labels & {"h1", "h2"}

    def test_recommend_via_facade(self, model):
        from repro.core import GoalRecommender

        recommender = GoalRecommender(model)
        result = recommender.recommend(
            {"h1", "h2"}, k=2, strategy="hybrid", item_features=FEATURES
        )
        assert result.actions()[0] == "dairy_candidate"
