"""Runtime lock-sanitizer coverage and the schedule-stress gate.

Three layers, mirroring the static RL006/RL007 pass from the other side:

- unit tests for the sanitizer itself — instrumented factories, order and
  reentrancy checks against a ``locks.toml`` manifest, ``wait``-while-
  holding detection, hold-time outliers, dedup'd snapshots;
- :class:`~repro.utils.concurrency.RWLock` edge cases (writer preference,
  release-without-acquire, reentrant reads) under BOTH the plain and the
  instrumented construction paths, since the proxies must not change the
  lock's semantics;
- the stress gate: a live :class:`~repro.service.RecommenderService`
  hammered by concurrent recommend / hot-reload / fault-injected traffic
  with the sanitizer enabled and the repo's committed ``locks.toml`` as
  ground truth — any order inversion, undeclared nesting or reentrant
  acquisition that a schedule exposes fails the build, which is the
  runtime counterpart of ``repro-lint --select RL006,RL007 src/``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.core import AssociationGoalModel
from repro.obs.metrics import MetricsRegistry
from repro.resilience import (
    FaultInjector,
    FaultRule,
    clear_faults,
    install_faults,
)
from repro.service import RecommenderService
from repro.utils import concurrency
from repro.utils.concurrency import (
    RWLock,
    enable_lock_sanitizer,
    lock_sanitizer_enabled,
    lock_sanitizer_snapshot,
    lock_sanitizer_violations,
    make_condition,
    make_lock,
    make_rlock,
    reset_lock_sanitizer,
)
from repro.utils.lockmanifest import LockManifest


@pytest.fixture(autouse=True)
def _sanitizer_isolation():
    """Every test starts and ends with the sanitizer fully torn down."""
    reset_lock_sanitizer()
    yield
    reset_lock_sanitizer()


def manifest(*edges: tuple[str, str]) -> LockManifest:
    return LockManifest(edges=frozenset(edges))


def kinds() -> list[tuple[str, str, str]]:
    """``(kind, site, other)`` for each recorded violation."""
    return [(v.kind, v.site, v.other) for v in lock_sanitizer_violations()]


# ----------------------------------------------------------------------
# Sanitizer unit tests
# ----------------------------------------------------------------------


def test_factories_return_raw_primitives_when_disabled():
    assert not lock_sanitizer_enabled()
    assert type(make_lock("A.x")) is type(threading.Lock())
    assert type(make_rlock("A.x")) is type(threading.RLock())
    assert isinstance(make_condition("A.x"), threading.Condition)


def test_factories_return_instrumented_proxies_when_enabled():
    enable_lock_sanitizer(manifest())
    assert lock_sanitizer_enabled()
    assert type(make_lock("A.x")).__name__ == "_InstrumentedLock"
    assert type(make_rlock("A.x")).__name__ == "_InstrumentedRLock"
    assert type(make_condition("A.x")).__name__ == "_InstrumentedCondition"


def test_construction_mode_is_pinned_not_live():
    """A lock built before enable stays plain — and is never checked."""
    lock = make_lock("A.x")
    enable_lock_sanitizer(manifest())
    other = make_lock("B.y")
    with lock:
        with other:
            pass
    # The plain lock is invisible, so no nesting was ever observed.
    assert kinds() == []


def test_declared_nesting_is_clean():
    enable_lock_sanitizer(manifest(("A.x", "B.y")))
    outer, inner = make_lock("A.x"), make_lock("B.y")
    with outer:
        with inner:
            pass
    assert kinds() == []


def test_manifest_closure_applies_at_runtime():
    """A -> B and B -> C declared; the transitive A -> C nesting is legal."""
    enable_lock_sanitizer(manifest(("A.x", "B.y"), ("B.y", "C.z")))
    outer, inner = make_lock("A.x"), make_lock("C.z")
    with outer:
        with inner:
            pass
    assert kinds() == []


def test_undeclared_nesting_records_one_deduped_order_violation():
    enable_lock_sanitizer(manifest())
    outer, inner = make_lock("A.x"), make_lock("B.y")
    for _ in range(3):
        with outer:
            with inner:
                pass
    assert kinds() == [("order", "B.y", "A.x")]
    snap = lock_sanitizer_snapshot()
    assert snap["violation_occurrences"] == 3
    [violation] = lock_sanitizer_violations()
    assert "locks.toml" in violation.detail


def test_sanitizer_flags_the_inverted_pair_at_runtime():
    """Runtime counterpart of the static RL006 fixture: the declared
    direction passes, the inverted one is an order violation even though
    no schedule actually deadlocked."""
    enable_lock_sanitizer(manifest(("D.gen", "D.cache")))
    gen, cache = make_lock("D.gen"), make_lock("D.cache")

    def declared_direction():
        with gen:
            with cache:
                pass

    worker = threading.Thread(target=declared_direction)
    worker.start()
    worker.join()
    assert kinds() == []
    with cache:
        with gen:  # the inversion
            pass
    assert kinds() == [("order", "D.gen", "D.cache")]


def test_reentrant_acquisition_is_flagged_without_deadlocking():
    enable_lock_sanitizer(manifest())
    lock = make_lock("A.x")
    assert lock.acquire()
    # The reentry would deadlock a plain Lock; the timeout keeps the test
    # alive while the sanitizer still records the bug.
    assert not lock.acquire(timeout=0.05)
    lock.release()
    assert kinds() == [("reentrant", "A.x", "A.x")]


def test_rlock_reentry_is_legal():
    enable_lock_sanitizer(manifest())
    lock = make_rlock("A.x")
    with lock:
        with lock:
            pass
    assert kinds() == []


def test_rlock_foreign_release_raises():
    enable_lock_sanitizer(manifest())
    lock = make_rlock("A.x")
    with pytest.raises(RuntimeError):
        lock.release()


def test_wait_while_holding_another_lock_is_flagged():
    enable_lock_sanitizer(manifest(("A.x", "C.cond")))
    guard = make_lock("A.x")
    cond = make_condition("C.cond")
    with guard:
        with cond:
            cond.wait(timeout=0.01)
    assert ("wait-held", "C.cond", "A.x") in kinds()


def test_wait_alone_is_not_flagged():
    enable_lock_sanitizer(manifest())
    cond = make_condition("C.cond")
    with cond:
        cond.wait(timeout=0.01)
        cond.wait_for(lambda: False, timeout=0.01)
    assert kinds() == []


def test_hold_outlier_is_recorded():
    enable_lock_sanitizer(manifest(), hold_outlier_seconds=0.01)
    lock = make_lock("A.x")
    with lock:
        time.sleep(0.03)
    assert kinds() == [("hold-outlier", "A.x", "")]
    stats = lock_sanitizer_snapshot()["sites"]["A.x"]
    assert stats["max_hold_seconds"] >= 0.01


def test_contention_is_counted():
    enable_lock_sanitizer(manifest())
    lock = make_lock("A.x")
    lock.acquire()
    started = threading.Event()

    def blocked():
        started.set()
        with lock:
            pass

    worker = threading.Thread(target=blocked)
    worker.start()
    started.wait()
    time.sleep(0.02)
    lock.release()
    worker.join()
    assert lock_sanitizer_snapshot()["sites"]["A.x"]["contentions"] >= 1.0
    assert kinds() == []


def test_snapshot_is_inert_when_disabled():
    assert lock_sanitizer_snapshot() == {
        "enabled": False, "sites": {}, "violations": []
    }


def test_snapshot_shape_when_enabled():
    enable_lock_sanitizer(manifest(("A.x", "B.y")))
    with make_lock("A.x"):
        pass
    snap = lock_sanitizer_snapshot()
    assert snap["enabled"] is True
    assert snap["declared_edges"] == 1
    assert snap["sites"]["A.x"]["acquisitions"] == 1.0
    assert snap["violations"] == []


def test_violations_survive_disable_until_reset():
    enable_lock_sanitizer(manifest())
    with make_lock("A.x") as _outer, make_lock("B.y"):
        pass
    assert len(kinds()) == 1
    concurrency.disable_lock_sanitizer()
    assert len(kinds()) == 1
    reset_lock_sanitizer()
    assert kinds() == []


# ----------------------------------------------------------------------
# RWLock edge cases, plain and instrumented
# ----------------------------------------------------------------------


@pytest.fixture(params=["plain", "instrumented"])
def rwlock(request):
    if request.param == "instrumented":
        enable_lock_sanitizer(manifest())
    return RWLock(site="Demo._lock")


def test_rwlock_writer_preference_bounds_reader_starvation(rwlock):
    """A queued writer goes ahead of readers that arrive after it."""
    order: list[str] = []
    rwlock.acquire_read()

    def writer():
        rwlock.acquire_write()
        order.append("writer")
        rwlock.release_write()

    def late_reader():
        rwlock.acquire_read()
        order.append("late-reader")
        rwlock.release_read()

    writer_thread = threading.Thread(target=writer)
    writer_thread.start()
    deadline = time.monotonic() + 5.0
    while rwlock._writers_waiting == 0:  # wait for the writer to queue
        assert time.monotonic() < deadline, "writer never queued"
        time.sleep(0.001)
    reader_thread = threading.Thread(target=late_reader)
    reader_thread.start()
    time.sleep(0.02)
    assert order == []  # both still blocked behind the first reader
    rwlock.release_read()
    writer_thread.join(timeout=5.0)
    reader_thread.join(timeout=5.0)
    assert order == ["writer", "late-reader"]


def test_rwlock_release_read_without_acquire_raises(rwlock):
    with pytest.raises(RuntimeError, match="release_read without"):
        rwlock.release_read()


def test_rwlock_release_write_without_acquire_raises(rwlock):
    with pytest.raises(RuntimeError, match="release_write without"):
        rwlock.release_write()


def test_rwlock_write_release_read_still_raises(rwlock):
    """Holding the write side does not fake out the reader bookkeeping."""
    with rwlock.write_locked():
        with pytest.raises(RuntimeError, match="release_read without"):
            rwlock.release_read()


def test_rwlock_reentrant_read(rwlock):
    """With no writer queued a nested read succeeds in both modes; only
    the instrumented lock reports it (it deadlocks the moment a writer
    queues between the two acquisitions — exactly RL006's self-loop)."""
    with rwlock.read_locked():
        with rwlock.read_locked():
            pass
    if lock_sanitizer_enabled():
        assert kinds() == [("reentrant", "Demo._lock", "Demo._lock")]
    else:
        assert kinds() == []


def test_rwlock_sequential_readers_and_writers(rwlock):
    with rwlock.read_locked():
        pass
    with rwlock.write_locked():
        pass
    with rwlock.read_locked():
        pass
    assert kinds() == []


def test_rwlock_site_is_pinned_at_construction():
    """site= passed while the sanitizer is off never instruments."""
    lock = RWLock(site="Demo._lock")
    enable_lock_sanitizer(manifest())
    with lock.read_locked():
        with lock.read_locked():
            pass
    assert kinds() == []


# ----------------------------------------------------------------------
# Schedule-stress gate
# ----------------------------------------------------------------------

PAIRS = [
    ("olivier salad", {"potatoes", "carrots", "pickles"}),
    ("mashed potatoes", {"potatoes", "nutmeg", "butter"}),
    ("pan-fried carrots", {"carrots", "nutmeg", "oil"}),
]

RECOMMEND = {"activity": ["potatoes", "carrots"], "k": 5}


def call(server, path, payload=None, method=None):
    """``(status, parsed_json_or_None)``; HTTP errors return, never raise."""
    url = f"http://127.0.0.1:{server.port}{path}"
    data = json.dumps(payload).encode() if payload is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data else "GET"),
        headers=headers,
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read() or b"null")
    except urllib.error.HTTPError as error:
        return error.code, None


@pytest.fixture
def stress_service(request):
    """Sanitizer on (repo ``locks.toml``), faults installed, fresh metrics.

    The sanitizer is enabled *before* the service is built so every lock
    in the object graph comes out of the factories instrumented.
    """
    previous_registry = obs.set_registry(MetricsRegistry())
    enable_lock_sanitizer()  # discovers the committed locks.toml
    assert lock_sanitizer_snapshot()["declared_edges"] >= 1, (
        "locks.toml was not discovered; the gate would run unanchored"
    )
    model = AssociationGoalModel.from_pairs(PAIRS)
    server = RecommenderService(model, port=0).start()
    install_faults(
        FaultInjector(
            [FaultRule("model", "latency", probability=0.5, delay_ms=2.0)],
            seed=7,
        )
    )

    def teardown():
        clear_faults()
        server.stop()
        obs.disable()
        obs.set_registry(previous_registry)

    request.addfinalizer(teardown)
    return server


def test_schedule_stress_finds_no_lock_violations(stress_service):
    """Recommend + hot-reload + fault-injected latency, then drain, with
    every instrumented acquisition order-checked against ``locks.toml``."""
    failures: list[str] = []

    def recommender():
        for _ in range(25):
            status, _body = call(stress_service, "/recommend", RECOMMEND)
            if status != 200:
                failures.append(f"/recommend -> {status}")

    def reloader():
        for index in range(8):
            payload = {
                "implementations": [
                    {"goal": f"soup-{index}", "actions": ["leek", "salt"]}
                ]
            }
            status, body = call(
                stress_service, "/model/implementations", payload,
                method="PUT",
            )
            if status != 200:
                failures.append(f"PUT /model/implementations -> {status}")
                continue
            for added in body["added"]:
                call(
                    stress_service,
                    f"/model/implementations/{added}",
                    method="DELETE",
                )

    threads = [threading.Thread(target=recommender) for _ in range(4)]
    threads.append(threading.Thread(target=reloader))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert failures == []
    violations = lock_sanitizer_violations()
    assert violations == (), "\n".join(
        f"{v.kind}: {v.site} (held: {v.other}) [{v.thread}] {v.detail}"
        for v in violations
    )
    sites = lock_sanitizer_snapshot()["sites"]
    # The schedule really exercised the interesting locks.
    assert "ModelManager._lock" in sites
    assert "LRUCache._lock" in sites


def test_debug_locks_endpoint_reports_the_snapshot(stress_service):
    call(stress_service, "/recommend", RECOMMEND)
    status, body = call(stress_service, "/debug/locks")
    assert status == 200
    assert body["enabled"] is True
    assert body["manifest"].endswith("locks.toml")
    assert "ModelManager._lock" in body["sites"]
    assert body["violations"] == []


def test_debug_locks_endpoint_when_sanitizer_is_off():
    previous_registry = obs.set_registry(MetricsRegistry())
    model = AssociationGoalModel.from_pairs(PAIRS)
    server = RecommenderService(model, port=0).start()
    try:
        status, body = call(server, "/debug/locks")
        assert status == 200
        assert body == {"enabled": False, "sites": {}, "violations": []}
    finally:
        server.stop()
        obs.disable()
        obs.set_registry(previous_registry)


def test_hold_metrics_are_emitted_under_the_sanitizer(stress_service):
    call(stress_service, "/recommend", RECOMMEND)
    url = f"http://127.0.0.1:{stress_service.port}/metrics"
    with urllib.request.urlopen(url, timeout=10) as response:
        text = response.read().decode()
    assert 'repro_lock_hold_seconds' in text
    assert 'site="ModelManager._lock"' in text
