"""The durable telemetry tail: rotating writer, flight recorder, replay.

Pins the PR's determinism acceptance criterion for the exporter: the same
request stream (fake clock, fixed ids) produces identical JSONL, and with
the ``ts`` fields stripped the records are byte-identical across runs.
"""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro import cli, obs
from repro.obs.export import (
    FlightRecorder,
    RotatingFileWriter,
    iter_telemetry_records,
)


class TestRotatingFileWriter:
    def test_rotates_at_the_size_cap_and_keeps_backups(self, tmp_path):
        path = tmp_path / "out.log"
        writer = RotatingFileWriter(path, max_bytes=32, backups=2)
        for index in range(12):
            writer.write_line(f"line-{index:04d}")  # 10 bytes each
        writer.close()
        assert path.exists()
        assert path.with_name("out.log.1").exists()
        assert path.with_name("out.log.2").exists()
        assert not path.with_name("out.log.3").exists()
        # Every surviving file respects the cap.
        for candidate in tmp_path.iterdir():
            assert candidate.stat().st_size <= 32
        stats = writer.stats()
        assert stats["rotations"] >= 2
        assert stats["bytes_written"] == 12 * 10

    def test_oversized_line_is_written_whole(self, tmp_path):
        path = tmp_path / "out.log"
        writer = RotatingFileWriter(path, max_bytes=16, backups=1)
        writer.write_line("x" * 100)
        writer.close()
        assert path.read_text() == "x" * 100 + "\n"

    def test_write_after_close_raises(self, tmp_path):
        writer = RotatingFileWriter(tmp_path / "out.log")
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(ValueError):
            writer.write_line("late")

    def test_zero_backups_truncates(self, tmp_path):
        path = tmp_path / "out.log"
        writer = RotatingFileWriter(path, max_bytes=16, backups=0)
        for index in range(8):
            writer.write_line(f"line-{index:04d}")
        writer.close()
        assert list(tmp_path.iterdir()) == [path]

    def test_concurrent_writers_lose_no_lines(self, tmp_path):
        path = tmp_path / "out.jsonl"
        writer = RotatingFileWriter(path, max_bytes=2048, backups=16)
        lines_per_thread = 200

        def pump(worker: int) -> None:
            for index in range(lines_per_thread):
                writer.write_line(f"w{worker}-{index:05d}")

        threads = [
            threading.Thread(target=pump, args=(worker,)) for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        writer.close()
        written = []
        for candidate in sorted(tmp_path.iterdir()):
            written.extend(candidate.read_text().splitlines())
        assert len(written) == 4 * lines_per_thread
        assert len(set(written)) == 4 * lines_per_thread  # no torn lines

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            RotatingFileWriter(tmp_path / "x", max_bytes=0)
        with pytest.raises(ValueError):
            RotatingFileWriter(tmp_path / "x", backups=-1)


def drain(recorder):
    assert recorder.flush(timeout=5.0), "flight recorder never drained"


class TestFlightRecorder:
    def test_sampling_is_deterministic_per_request_id(self, tmp_path):
        recorder = FlightRecorder(tmp_path, sample_rate=0.5)
        try:
            ids = [f"req-{index:04d}" for index in range(200)]
            first = [recorder.should_sample(request_id) for request_id in ids]
            second = [recorder.should_sample(request_id) for request_id in ids]
            assert first == second
            assert 20 < sum(first) < 180  # the hash actually splits the ids
        finally:
            recorder.close()
        # A second recorder at the same rate admits the same subset.
        other = FlightRecorder(tmp_path, sample_rate=0.5, filename="b.jsonl")
        try:
            assert [
                other.should_sample(request_id) for request_id in ids
            ] == first
        finally:
            other.close()

    def test_rate_edges(self, tmp_path):
        keep_all = FlightRecorder(tmp_path, sample_rate=1.0)
        keep_none = FlightRecorder(
            tmp_path, sample_rate=0.0, filename="none.jsonl"
        )
        try:
            assert keep_all.should_sample("anything")
            assert not keep_none.should_sample("anything")
        finally:
            keep_all.close()
            keep_none.close()

    def test_replay_is_identical_modulo_timestamps(self, tmp_path):
        """Same stream + fake clock ⇒ byte-identical JSONL across runs."""
        outputs = []
        for run in range(2):
            directory = tmp_path / f"run{run}"
            ticks = iter(range(10_000))
            recorder = FlightRecorder(
                directory, sample_rate=0.5, clock=lambda: float(next(ticks))
            )
            for index in range(50):
                recorder.record_request(
                    f"req-{index:04d}", "/recommend", "POST", 200,
                    0.001 * index,
                    spans=[{"name": "http.request", "children": []}],
                )
            recorder.record_event("drift", {"score": 0.31, "threshold": 0.25})
            drain(recorder)
            recorder.close()
            outputs.append((directory / "telemetry.jsonl").read_text())
        # The injected clocks tick identically, so even the ts fields match;
        # strip them anyway to pin the documented contract.
        assert outputs[0] == outputs[1]
        stripped = [
            [
                {k: v for k, v in json.loads(line).items() if k != "ts"}
                for line in text.splitlines()
            ]
            for text in outputs
        ]
        assert stripped[0] == stripped[1]
        kinds = [record["kind"] for record in stripped[0]]
        assert kinds.count("drift") == 1
        assert all(kind in ("request", "drift") for kind in kinds)
        # Sampling kept a strict, deterministic subset.
        assert 0 < kinds.count("request") < 50

    def test_events_bypass_sampling(self, tmp_path):
        recorder = FlightRecorder(tmp_path, sample_rate=0.0)
        recorder.record_request("req-1", "/recommend", "POST", 200, 0.1)
        recorder.record_event("drift", {"score": 1.0})
        drain(recorder)
        snap = recorder.snapshot()
        recorder.close()
        assert snap["dropped"] == {}  # sampled-out is a counter, not a drop
        assert snap["written"] == 1
        records = list(iter_telemetry_records(tmp_path))
        assert [record["kind"] for record in records] == ["drift"]

    def test_backlog_overflow_drops_and_counts(self, tmp_path):
        recorder = FlightRecorder(tmp_path, queue_size=4)
        # The condition's lock is re-entrant: holding it here parks the
        # worker, so the flood below exercises the real overflow path.
        with recorder._cond:
            for index in range(10):
                recorder.record_event("load", {"index": index})
        drain(recorder)
        snap = recorder.snapshot()
        recorder.close()
        assert snap["written"] == 4
        assert snap["dropped"]["backlog"] == 6

    def test_record_after_close_is_dropped(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        recorder.close()
        recorder.record_event("drift", {"score": 1.0})
        assert recorder.snapshot()["dropped"]["closed"] == 1

    def test_concurrent_recorders_under_rotation(self, tmp_path):
        """Many threads record through one recorder with a tiny size cap."""
        recorder = FlightRecorder(
            tmp_path, sample_rate=1.0, max_bytes=512, backups=64,
            queue_size=10_000,
        )
        per_thread = 100

        def pump(worker: int) -> None:
            for index in range(per_thread):
                recorder.record_event(
                    "load", {"worker": worker, "index": index}
                )

        threads = [
            threading.Thread(target=pump, args=(worker,)) for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        drain(recorder)
        snap = recorder.snapshot()
        recorder.close()
        assert snap["enqueued"] == 4 * per_thread
        assert snap["written"] == 4 * per_thread
        assert snap["rotations"] > 0
        records = list(iter_telemetry_records(tmp_path))
        assert len(records) == 4 * per_thread
        # Replay preserves each worker's enqueue order across rotations.
        for worker in range(4):
            indexes = [
                record["index"]
                for record in records
                if record["worker"] == worker
            ]
            assert indexes == sorted(indexes)

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path, sample_rate=1.5)
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path, queue_size=0)


class TestIterTelemetryRecords:
    def test_rotated_backups_replay_oldest_first(self, tmp_path):
        (tmp_path / "t.jsonl.2").write_text('{"n": 1}\n{"n": 2}\n')
        (tmp_path / "t.jsonl.1").write_text('{"n": 3}\n')
        (tmp_path / "t.jsonl").write_text('{"n": 4}\n')
        assert [
            record["n"] for record in iter_telemetry_records(tmp_path)
        ] == [1, 2, 3, 4]

    def test_malformed_lines_and_non_dicts_are_skipped(self, tmp_path):
        (tmp_path / "t.jsonl").write_text(
            '{"n": 1}\nnot-json\n[1, 2]\n\n{"n": 2}\n'
        )
        assert [
            record["n"] for record in iter_telemetry_records(tmp_path)
        ] == [1, 2]

    def test_unrelated_files_are_ignored(self, tmp_path):
        (tmp_path / "t.jsonl").write_text('{"n": 1}\n')
        (tmp_path / "notes.txt").write_text("not telemetry")
        (tmp_path / "t.jsonl.bak").write_text('{"n": 99}\n')
        assert len(list(iter_telemetry_records(tmp_path))) == 1


class TestLogFileRotation:
    def test_log_file_shares_the_rotation_helper(self, tmp_path):
        log_path = tmp_path / "app.log"
        logger = obs.configure_logging(
            level="INFO",
            json_logs=True,
            log_file=log_path,
            log_file_max_bytes=256,
            log_file_backups=2,
        )
        try:
            for index in range(40):
                obs.log_event(logger, "test.event", index=index)
        finally:
            obs.configure_logging(level="WARNING")  # detach + close handler
        assert log_path.exists()
        assert log_path.with_name("app.log.1").exists()
        rotated = sorted(path.name for path in tmp_path.iterdir())
        assert rotated[0] == "app.log"
        # Every line in every file is valid JSON carrying the event field.
        events = []
        for path in tmp_path.iterdir():
            for line in path.read_text().splitlines():
                events.append(json.loads(line)["event"])
        assert set(events) == {"test.event"}

    def test_cli_log_file_flag(self, tmp_path, capsys):
        log_path = tmp_path / "cli.log"
        exit_code = cli.main(
            [
                "--log-file", str(log_path), "--log-level", "info",
                "--json-logs", "metrics",
            ]
        )
        obs.configure_logging(level="WARNING")  # detach + close handler
        assert exit_code == 0
        events = [
            json.loads(line)["event"]
            for line in log_path.read_text().splitlines()
        ]
        assert "cli.start" in events


class TestTelemetryReportCLI:
    def test_report_summarizes_requests_and_events(self, tmp_path, capsys):
        recorder = FlightRecorder(tmp_path, sample_rate=1.0)
        for index in range(5):
            recorder.record_request(
                f"req-{index}", "/recommend", "POST",
                500 if index == 0 else 200, 0.01 * (index + 1),
                spans=[{"name": "http.request"}] if index % 2 == 0 else None,
            )
        recorder.record_event("drift", {"score": 0.4, "threshold": 0.25})
        drain(recorder)
        recorder.close()
        exit_code = cli.main(["telemetry", "report", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "/recommend" in out
        assert "drift" in out
        assert "score=0.4" in out
        assert "records: drift=1, request=5" in out

    def test_report_on_empty_directory_fails(self, tmp_path, capsys):
        assert cli.main(["telemetry", "report", "--dir", str(tmp_path)]) == 1
        assert "no telemetry records" in capsys.readouterr().out

    def test_report_on_missing_directory_is_usage_error(self, tmp_path):
        missing = tmp_path / "nope"
        assert cli.main(["telemetry", "report", "--dir", str(missing)]) == 2
