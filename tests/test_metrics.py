"""Unit tests for the Section 6.1 metrics."""

import pytest

from repro.core import AssociationGoalModel
from repro.core.entities import RecommendationList, ScoredAction
from repro.eval.metrics import (
    average_list_overlap,
    average_pairwise_similarity,
    average_true_positive_rate,
    frequency_histogram,
    goal_completeness_after,
    library_frequencies,
    list_overlap,
    pairwise_similarity,
    pearson,
    popularity_correlation,
    recommendation_frequencies,
    true_positive_rate,
    usefulness_summary,
)
from repro.exceptions import EvaluationError


def rec(*actions, strategy="test"):
    return RecommendationList(
        strategy=strategy,
        items=tuple(
            ScoredAction(a, float(len(actions) - i)) for i, a in enumerate(actions)
        ),
    )


class TestListOverlap:
    def test_identical(self):
        assert list_overlap(rec("a", "b"), rec("a", "b")) == 1.0

    def test_disjoint(self):
        assert list_overlap(rec("a"), rec("b")) == 0.0

    def test_partial_normalized_by_longer(self):
        assert list_overlap(rec("a", "b", "c", "d"), rec("a", "b")) == 0.5

    def test_empty_lists(self):
        assert list_overlap(rec(), rec()) == 0.0

    def test_average(self):
        a = [rec("a", "b"), rec("x")]
        b = [rec("a", "b"), rec("y")]
        assert average_list_overlap(a, b) == pytest.approx(0.5)

    def test_average_mismatched_lengths_raises(self):
        with pytest.raises(EvaluationError, match="mismatched"):
            average_list_overlap([rec("a")], [])

    def test_average_zero_users_raises(self):
        with pytest.raises(EvaluationError, match="zero users"):
            average_list_overlap([], [])


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_side_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(EvaluationError):
            pearson([1], [1, 2])

    def test_too_few_points_raises(self):
        with pytest.raises(EvaluationError):
            pearson([1], [1])


class TestPopularityCorrelation:
    def test_popularity_recycler_scores_high(self):
        activities = [{"pop", "x"}, {"pop", "y"}, {"pop", "z"}, {"rare"}]
        # A recommender that always recommends the popular item:
        lists = [rec("pop") for _ in activities]
        value = popularity_correlation(activities, lists, top_n=5)
        assert value > 0.9

    def test_popularity_avoider_scores_low(self):
        activities = [{"pop", "x"}, {"pop", "y"}, {"pop", "z"}, {"rare", "w"}]
        lists = [rec("rare") for _ in activities]
        value = popularity_correlation(activities, lists, top_n=5)
        assert value < 0.0

    def test_needs_two_actions(self):
        with pytest.raises(EvaluationError, match="two distinct"):
            popularity_correlation([{"only"}], [rec("only")])


class TestUsefulness:
    @pytest.fixture
    def model(self):
        return AssociationGoalModel.from_pairs(
            [("g1", {"h", "r1"}), ("g2", {"h", "r2", "x"})]
        )

    def test_completeness_improves_with_recommendations(self, model):
        before = goal_completeness_after(model, {"h"}, rec())
        after = goal_completeness_after(model, {"h"}, rec("r1", "r2"))
        assert after.average > before.average
        assert after.maximum == 1.0

    def test_restricted_goal_set(self, model):
        summary = goal_completeness_after(model, {"h"}, rec("r1"), goals=["g1"])
        assert summary.average == 1.0

    def test_unknown_goals_ignored(self, model):
        summary = goal_completeness_after(
            model, {"h"}, rec("r1"), goals=["g1", "martian"]
        )
        assert summary.average == 1.0

    def test_empty_goal_space_is_zero(self, model):
        summary = goal_completeness_after(model, {"martian"}, rec("r1"))
        assert summary == pytest.approx(
            type(summary)(average=0.0, minimum=0.0, maximum=0.0)
        )

    def test_usefulness_summary_aggregates(self, model):
        s1 = goal_completeness_after(model, {"h"}, rec("r1"))
        s2 = goal_completeness_after(model, {"h"}, rec("r2"))
        agg = usefulness_summary([s1, s2])
        assert agg.avg_avg == pytest.approx((s1.average + s2.average) / 2)

    def test_usefulness_summary_empty_raises(self):
        with pytest.raises(EvaluationError):
            usefulness_summary([])


class TestPairwiseSimilarity:
    @staticmethod
    def sim(a, b):
        return 1.0 if a[0] == b[0] else 0.0  # same first letter = similar

    def test_statistics(self):
        summary = pairwise_similarity(rec("apple", "apricot", "banana"), self.sim)
        assert summary.maximum == 1.0
        assert summary.minimum == 0.0
        assert summary.average == pytest.approx(1 / 3)

    def test_single_item_list_is_none(self):
        assert pairwise_similarity(rec("apple"), self.sim) is None

    def test_average_over_lists(self):
        lists = [rec("aa", "ab"), rec("aa", "ba")]
        summary = average_pairwise_similarity(lists, self.sim)
        assert summary.average == pytest.approx(0.5)

    def test_average_no_valid_lists_raises(self):
        with pytest.raises(EvaluationError):
            average_pairwise_similarity([rec("a")], self.sim)


class TestTruePositiveRate:
    def test_fraction_of_hits(self):
        assert true_positive_rate(rec("a", "b", "c", "d"), {"a", "b"}) == 0.5

    def test_empty_list_zero(self):
        assert true_positive_rate(rec(), {"a"}) == 0.0

    def test_average(self):
        lists = [rec("a", "b"), rec("x", "y")]
        hidden = [{"a", "b"}, {"z"}]
        assert average_true_positive_rate(lists, hidden) == pytest.approx(0.5)

    def test_average_mismatch_raises(self):
        with pytest.raises(EvaluationError, match="mismatched"):
            average_true_positive_rate([rec("a")], [])


class TestFrequencies:
    def test_recommendation_frequencies(self):
        lists = [rec("a", "b"), rec("a"), rec("c"), rec("a")]
        freqs = recommendation_frequencies(lists)
        assert freqs["a"] == pytest.approx(0.75)
        assert freqs["b"] == pytest.approx(0.25)

    def test_empty_lists_raise(self):
        with pytest.raises(EvaluationError):
            recommendation_frequencies([])

    def test_library_frequencies(self, figure1_model):
        freqs = library_frequencies(figure1_model, [rec("a1", "a4")])
        assert freqs["a1"] == pytest.approx(4 / 5)
        assert freqs["a4"] == pytest.approx(1 / 5)

    def test_histogram_partitions(self):
        freqs = {"a": 0.1, "b": 0.15, "c": 0.5, "d": 0.95}
        histogram = frequency_histogram(freqs)
        assert dict(histogram)[0.2] == pytest.approx(0.5)
        assert sum(fraction for _, fraction in histogram) == pytest.approx(1.0)

    def test_histogram_boundary_inclusive(self):
        histogram = frequency_histogram({"a": 0.2})
        assert dict(histogram)[0.2] == 1.0

    def test_histogram_empty_raises(self):
        with pytest.raises(EvaluationError):
            frequency_histogram({})
