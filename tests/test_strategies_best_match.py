"""Unit tests for the Best Match strategy."""

import pytest

from repro.core import AssociationGoalModel
from repro.core.strategies import create_strategy
from repro.core.strategies.best_match import BestMatchStrategy


@pytest.fixture
def model():
    """Two 'effort' goals touched twice and one barely touched goal."""
    return AssociationGoalModel.from_pairs(
        [
            ("main", {"h1", "h2", "x"}),
            ("main", {"h1", "x", "y"}),
            ("side", {"h2", "y"}),
            ("fringe", {"h1", "z"}),
        ]
    )


@pytest.fixture
def activity(model):
    return model.encode_activity({"h1", "h2"})


class TestConstruction:
    def test_invalid_vector_mode_rejected(self):
        with pytest.raises(ValueError, match="vector_mode"):
            BestMatchStrategy(vector_mode="nope")

    def test_invalid_distance_rejected(self):
        with pytest.raises(ValueError, match="unknown distance"):
            BestMatchStrategy(distance="nope")

    def test_names(self):
        assert BestMatchStrategy().name == "best_match"
        assert (
            BestMatchStrategy(distance="euclidean").name
            == "best_match_euclidean_count"
        )

    def test_registry(self):
        assert isinstance(create_strategy("best_match"), BestMatchStrategy)


class TestProfile:
    def test_axis_is_sorted_goal_space(self, model, activity):
        strategy = BestMatchStrategy()
        axis = strategy.goal_axis(model, activity)
        assert axis == sorted(model.goal_space(activity))

    def test_profile_counts_action_implementation_pairs(self, model, activity):
        """Equation 9: one count per (action in H, implementation) pair."""
        strategy = BestMatchStrategy()
        axis = strategy.goal_axis(model, activity)
        profile = strategy.profile(model, activity, axis)
        by_goal = dict(zip((model.goal_label(g) for g in axis), profile))
        # main: h1 in both impls (2) + h2 in one (1) = 3.
        assert by_goal == {"main": 3.0, "side": 1.0, "fringe": 1.0}

    def test_profile_empty_activity_is_zero_vector(self, model):
        strategy = BestMatchStrategy()
        assert strategy.profile(model, frozenset(), [0, 1]) == [0.0, 0.0]


class TestActionVectors:
    def test_count_vector_equation8(self, model, activity):
        strategy = BestMatchStrategy()
        axis = strategy.goal_axis(model, activity)
        vector = strategy.action_vector(model, model.action_id("x"), axis)
        by_goal = dict(zip((model.goal_label(g) for g in axis), vector))
        assert by_goal == {"main": 2.0, "side": 0.0, "fringe": 0.0}

    def test_boolean_vector_equation7(self, model, activity):
        strategy = BestMatchStrategy(vector_mode="boolean")
        axis = strategy.goal_axis(model, activity)
        vector = strategy.action_vector(model, model.action_id("x"), axis)
        by_goal = dict(zip((model.goal_label(g) for g in axis), vector))
        assert by_goal == {"main": 1.0, "side": 0.0, "fringe": 0.0}

    def test_goals_outside_axis_ignored(self):
        """A candidate contributing to a goal outside GS(H) ignores it."""
        model = AssociationGoalModel.from_pairs(
            [("inside", {"h", "x"}), ("outside", {"x", "q"})]
        )
        activity = model.encode_activity({"h"})
        strategy = BestMatchStrategy()
        axis = strategy.goal_axis(model, activity)
        assert [model.goal_label(g) for g in axis] == ["inside"]
        vector = strategy.action_vector(model, model.action_id("x"), axis)
        assert vector == [1.0]


class TestRanking:
    def test_prefers_effort_aligned_action(self, model, activity):
        """x serves 'main' (most effort) twice -> closer than z ('fringe')."""
        ranked = BestMatchStrategy().rank(model, activity, k=10)
        labels = [model.action_label(a) for a, _ in ranked]
        assert labels.index("x") < labels.index("z")

    def test_scores_are_negated_distances(self, model, activity):
        strategy = BestMatchStrategy()
        distances = strategy.distances(model, activity)
        ranked = strategy.rank(model, activity, k=10)
        for aid, score in ranked:
            assert score == pytest.approx(-distances[aid])

    def test_all_candidates_ranked(self, model, activity):
        ranked = BestMatchStrategy().rank(model, activity, k=10)
        assert len(ranked) == len(model.candidate_actions(activity))

    def test_never_recommends_activity(self, model, activity):
        ranked = BestMatchStrategy().rank(model, activity, k=10)
        labels = {model.action_label(a) for a, _ in ranked}
        assert not labels & {"h1", "h2"}

    def test_distance_choice_changes_scores(self, model, activity):
        cosine = BestMatchStrategy(distance="cosine").distances(model, activity)
        euclid = BestMatchStrategy(distance="euclidean").distances(model, activity)
        assert cosine != euclid

    def test_paper_example_direction(self, recipe_model):
        """Nutmeg (2 touched goals) beats oil (1 touched goal) in distance."""
        activity = recipe_model.encode_activity({"potatoes", "carrots"})
        strategy = BestMatchStrategy()
        distances = strategy.distances(recipe_model, activity)
        nutmeg = distances[recipe_model.action_id("nutmeg")]
        oil = distances[recipe_model.action_id("oil")]
        assert nutmeg < oil
