"""Unit tests for the synthetic dataset generators."""

import pytest

from repro.data import (
    FoodMartConfig,
    FortyThreeConfig,
    generate_foodmart,
    generate_fortythree,
)
from repro.data.schema import validate_dataset
from repro.data.synthetic.generators import (
    partition_sizes,
    sample_distinct,
    sample_size,
    zipf_weights,
)
from repro.utils.rng import make_rng


class TestPrimitives:
    def test_zipf_weights_normalized(self):
        weights = zipf_weights(100, 1.0)
        assert weights.sum() == pytest.approx(1.0)
        assert weights[0] > weights[-1]

    def test_zipf_zero_exponent_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert weights.max() == pytest.approx(weights.min())

    def test_zipf_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)

    def test_sample_distinct_no_duplicates(self):
        rng = make_rng(0)
        sample = sample_distinct(rng, 50, 20)
        assert len(set(sample.tolist())) == 20

    def test_sample_distinct_clamped(self):
        rng = make_rng(0)
        assert len(sample_distinct(rng, 5, 10)) == 5

    def test_sample_size_within_bounds(self):
        rng = make_rng(0)
        for _ in range(100):
            assert 2 <= sample_size(rng, 5.0, 2, 8) <= 8

    def test_partition_sizes_sums_and_positive(self):
        rng = make_rng(0)
        sizes = partition_sizes(rng, 100, 7)
        assert sum(sizes) == 100
        assert min(sizes) >= 1

    def test_partition_more_buckets_than_items_rejected(self):
        with pytest.raises(ValueError):
            partition_sizes(make_rng(0), 3, 5)


class TestFoodMart:
    def test_counts_match_config(self, foodmart_tiny):
        config = FoodMartConfig.tiny()
        stats = foodmart_tiny.library.stats()
        assert stats.num_implementations == config.num_recipes
        assert stats.num_actions <= config.num_products
        assert len(foodmart_tiny.users) == config.num_carts

    def test_features_cover_all_products(self, foodmart_tiny):
        library_actions = foodmart_tiny.library.actions()
        assert library_actions <= set(foodmart_tiny.item_features)

    def test_every_product_has_category_feature(self, foodmart_tiny):
        for features in foodmart_tiny.item_features.values():
            assert any(f.startswith("category_") for f in features)

    def test_deterministic_given_seed(self):
        a = generate_foodmart(FoodMartConfig.tiny(), seed=3)
        b = generate_foodmart(FoodMartConfig.tiny(), seed=3)
        assert a.activities() == b.activities()
        assert [i.actions for i in a.library] == [i.actions for i in b.library]

    def test_different_seed_differs(self):
        a = generate_foodmart(FoodMartConfig.tiny(), seed=3)
        b = generate_foodmart(FoodMartConfig.tiny(), seed=4)
        assert a.activities() != b.activities()

    def test_validates(self, foodmart_tiny):
        validate_dataset(foodmart_tiny)

    def test_recipe_lengths_within_bounds(self, foodmart_tiny):
        config = FoodMartConfig.tiny()
        for impl in foodmart_tiny.library:
            assert config.recipe_length_min <= len(impl) <= config.recipe_length_max

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="categories"):
            FoodMartConfig(num_products=5, num_categories=10)
        with pytest.raises(ValueError, match="fraction"):
            FoodMartConfig(cart_fraction_min=0.9, cart_fraction_max=0.2)

    def test_higher_connectivity_than_43t(self, foodmart_tiny, fortythree_tiny):
        """The paper's two regimes: grocery is dense, 43T is sparse."""
        assert (
            foodmart_tiny.library.stats().connectivity
            > fortythree_tiny.library.stats().connectivity
        )


class TestFortyThree:
    def test_counts_match_config(self, fortythree_tiny):
        config = FortyThreeConfig.tiny()
        stats = fortythree_tiny.library.stats()
        assert stats.num_goals == config.num_goals
        assert len(fortythree_tiny.users) == config.num_users

    def test_every_goal_has_an_implementation(self, fortythree_tiny):
        config = FortyThreeConfig.tiny()
        assert len(fortythree_tiny.library.goals()) == config.num_goals

    def test_users_have_goal_ground_truth(self, fortythree_tiny):
        assert all(user.goals for user in fortythree_tiny.users)

    def test_user_activity_serves_their_goals(self, fortythree_tiny):
        """Each user's activity contains a full implementation per goal."""
        library = fortythree_tiny.library
        for user in fortythree_tiny.users[:10]:
            for goal in user.goals:
                impls = library.implementations_of(goal)
                assert any(
                    impl.actions <= user.full_activity for impl in impls
                )

    def test_no_item_features(self, fortythree_tiny):
        assert fortythree_tiny.item_features is None

    def test_goal_multiplicity_distribution(self):
        config = FortyThreeConfig(
            num_goals=60, num_actions=240, num_implementations=280,
            num_families=8, num_users=2000,
        )
        dataset = generate_fortythree(config, seed=5)
        single = sum(1 for u in dataset.users if len(u.goals) == 1)
        # Paper: ~62.5% of users pursue exactly one goal.
        assert 0.55 < single / len(dataset.users) < 0.70

    def test_deterministic_given_seed(self):
        a = generate_fortythree(FortyThreeConfig.tiny(), seed=9)
        b = generate_fortythree(FortyThreeConfig.tiny(), seed=9)
        assert a.activities() == b.activities()

    def test_validates(self, fortythree_tiny):
        validate_dataset(fortythree_tiny)

    def test_impls_below_goals_rejected(self):
        with pytest.raises(ValueError, match="at least num_goals"):
            generate_fortythree(
                FortyThreeConfig(
                    num_goals=50, num_actions=100, num_implementations=10,
                    num_families=5, num_users=10,
                )
            )
