"""Unit tests: stage profiler, slow-request log, cProfile sessions, and
the tracer under pressure (bounded buffer, concurrent producers, sinks).
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import (
    STAGES,
    ProfileSession,
    SlowRequestLog,
    StageProfiler,
)
from repro.obs.tracing import Span, Tracer


@pytest.fixture(autouse=True)
def _obs_reset():
    """Every test starts and ends with observability fully off."""
    obs.disable()
    yield
    obs.disable()


def _span(name, duration, children=()):
    span = Span(name, {})
    span.duration = duration
    span.children = list(children)
    return span


class TestStageProfiler:
    def test_harvests_every_stage_from_one_tree(self):
        profiler = StageProfiler()
        root = _span(
            "http.request",
            0.5,
            [
                _span(
                    "recommend",
                    0.4,
                    [
                        _span("implementation_space", 0.1),
                        _span("goal_space", 0.05),
                        _span("action_space", 0.08),
                        _span("rank", 0.15),
                    ],
                )
            ],
        )
        profiler.observe_span(root)
        breakdown = profiler.breakdown()
        assert set(breakdown) == set(STAGES)
        assert breakdown["rank"]["count"] == 1
        assert breakdown["rank"]["total_seconds"] == pytest.approx(0.15)
        assert breakdown["implementation_space"]["p50_seconds"] == pytest.approx(0.1)

    def test_nested_same_name_stage_counted_once(self):
        # A CachedModelView miss produces the view's stage span wrapping the
        # model's; only the outermost occurrence may be attributed.
        profiler = StageProfiler()
        root = _span(
            "recommend",
            0.3,
            [_span("implementation_space", 0.2, [_span("implementation_space", 0.19)])],
        )
        profiler.observe_span(root)
        entry = profiler.breakdown()["implementation_space"]
        assert entry["count"] == 1
        assert entry["total_seconds"] == pytest.approx(0.2)

    def test_sibling_same_name_stages_both_counted(self):
        root = _span(
            "recommend_all",
            0.3,
            [_span("rank", 0.1), _span("rank", 0.05)],
        )
        profiler = StageProfiler()
        profiler.observe_span(root)
        assert profiler.breakdown()["rank"]["count"] == 2

    def test_unobserved_stages_report_zeros(self):
        entry = StageProfiler().breakdown()["goal_space"]
        assert entry == {
            "count": 0,
            "total_seconds": 0.0,
            "mean_seconds": 0.0,
            "p50_seconds": 0.0,
            "p95_seconds": 0.0,
            "p99_seconds": 0.0,
        }

    def test_record_rejects_unknown_stage(self):
        with pytest.raises(ValueError, match="unknown stage"):
            StageProfiler().record("parse", 0.1)

    def test_reservoir_is_bounded_but_totals_are_lifetime(self):
        profiler = StageProfiler(max_samples=4)
        for i in range(10):
            profiler.record("rank", float(i))
        entry = profiler.breakdown()["rank"]
        assert entry["count"] == 10
        assert entry["total_seconds"] == pytest.approx(45.0)
        # Percentiles cover only the recent window (6..9).
        assert entry["p50_seconds"] >= 6.0

    def test_feeds_stage_metrics_when_enabled(self):
        registry = MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            obs.enable(metrics=True)
            profiler = StageProfiler()
            profiler.observe_span(_span("recommend", 0.2, [_span("rank", 0.1)]))
            snapshot = registry.snapshot()
            assert snapshot["repro_stage_latency_seconds"]["samples"][
                (("stage", "rank"),)
            ] == {"count": 1, "sum": pytest.approx(0.1)}
            assert (
                snapshot["repro_profiler_samples"]["samples"][(("stage", "rank"),)]
                == 1
            )
        finally:
            obs.set_registry(previous)

    def test_reset_clears_everything(self):
        profiler = StageProfiler()
        profiler.record("rank", 1.0)
        profiler.reset()
        assert profiler.breakdown()["rank"]["count"] == 0

    def test_invalid_max_samples_rejected(self):
        with pytest.raises(ValueError):
            StageProfiler(max_samples=0)


class TestSlowRequestLog:
    def test_below_threshold_not_logged(self):
        log = SlowRequestLog(size=4, threshold_seconds=0.5)
        assert not log.offer("r1", "/recommend", "POST", 200, 0.1, [])
        assert len(log) == 0

    def test_keeps_the_slowest_not_the_most_recent(self):
        log = SlowRequestLog(size=2, threshold_seconds=0.0)
        log.offer("slowest", "/a", "GET", 200, 3.0, [])
        log.offer("middle", "/b", "GET", 200, 2.0, [])
        assert not log.offer("fast", "/c", "GET", 200, 1.0, [])
        assert log.offer("new-slow", "/d", "GET", 200, 2.5, [])
        ids = [entry["request_id"] for entry in log.snapshot()]
        assert ids == ["slowest", "new-slow"]

    def test_entries_carry_the_span_tree(self):
        log = SlowRequestLog(size=4, threshold_seconds=0.0)
        spans = [{"name": "http.request", "children": []}]
        log.offer("r1", "/recommend", "POST", 200, 0.2, spans)
        entry = log.snapshot()[0]
        assert entry["endpoint"] == "/recommend"
        assert entry["status"] == 200
        assert entry["spans"] == spans

    def test_reset_drops_entries(self):
        log = SlowRequestLog(size=4, threshold_seconds=0.0)
        log.offer("r1", "/a", "GET", 200, 1.0, [])
        log.reset()
        assert log.snapshot() == []

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            SlowRequestLog(size=0)
        with pytest.raises(ValueError):
            SlowRequestLog(threshold_seconds=-1.0)


class TestProfileSession:
    def test_double_start_and_stop_without_start_raise(self):
        session = ProfileSession()
        session.start()
        with pytest.raises(RuntimeError, match="already active"):
            session.start()
        session.stop()
        with pytest.raises(RuntimeError, match="no profile session"):
            session.stop()

    def test_profiled_calls_are_counted_in_the_report(self):
        session = ProfileSession()
        session.start()
        assert session.profile_call(sum, [1, 2, 3]) == 6
        assert session.profile_call(sum, [4]) == 4
        report = session.stop(sort="tottime", limit=5)
        assert report.startswith("# profiled calls: 2\n")
        assert not session.active

    def test_profile_call_without_session_is_a_plain_call(self):
        session = ProfileSession()
        assert session.profile_call(len, "abc") == 3
        assert session.calls == 0


class TestTracerUnderPressure:
    def test_overflow_drops_the_oldest_roots(self):
        tracer = Tracer(max_spans=4)
        previous = obs.set_tracer(tracer)
        try:
            obs.enable(tracing=True)
            for i in range(10):
                with obs.trace_span("req", index=i):
                    pass
            spans = tracer.spans()
            assert len(spans) == 4
            assert tracer.occupancy() == 4
            assert [s["attributes"]["index"] for s in spans] == [6, 7, 8, 9]
        finally:
            obs.set_tracer(previous)

    def test_concurrent_producers_land_every_tree_intact(self):
        threads, per_thread = 8, 50
        tracer = Tracer(max_spans=threads * per_thread)
        previous = obs.set_tracer(tracer)
        harvested = []
        harvest_lock = threading.Lock()

        def sink(root):
            with harvest_lock:
                harvested.append(root)

        tracer.add_sink(sink)

        def produce(worker):
            for i in range(per_thread):
                with obs.trace_span("req", worker=worker, index=i):
                    with obs.trace_span("child"):
                        pass

        try:
            obs.enable(tracing=True)
            workers = [
                threading.Thread(target=produce, args=(w,))
                for w in range(threads)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            spans = tracer.spans()
            assert len(spans) == threads * per_thread
            assert tracer.occupancy() == tracer.capacity
            # Nesting is per-thread (contextvars): every root keeps exactly
            # its own child even with eight producers interleaving.
            assert all(
                len(s["children"]) == 1 and s["children"][0]["name"] == "child"
                for s in spans
            )
            seen = {
                (s["attributes"]["worker"], s["attributes"]["index"])
                for s in spans
            }
            assert len(seen) == threads * per_thread
            assert len(harvested) == threads * per_thread
        finally:
            obs.set_tracer(previous)

    def test_occupancy_never_exceeds_capacity_under_concurrent_overflow(self):
        tracer = Tracer(max_spans=16)
        previous = obs.set_tracer(tracer)

        def produce():
            for _ in range(50):
                with obs.trace_span("req"):
                    pass

        try:
            obs.enable(tracing=True)
            workers = [threading.Thread(target=produce) for _ in range(8)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            assert tracer.occupancy() == tracer.capacity == 16
            assert len(tracer.spans()) == 16
        finally:
            obs.set_tracer(previous)

    def test_removed_sink_stops_firing(self):
        tracer = Tracer()
        previous = obs.set_tracer(tracer)
        seen = []
        tracer.add_sink(seen.append)
        try:
            obs.enable(tracing=True)
            with obs.trace_span("one"):
                pass
            tracer.remove_sink(seen.append)
            with obs.trace_span("two"):
                pass
            assert [root.name for root in seen] == ["one"]
        finally:
            obs.set_tracer(previous)

    def test_failing_sink_does_not_break_tracing(self):
        tracer = Tracer()
        previous = obs.set_tracer(tracer)

        def explode(root):
            raise RuntimeError("sink bug")

        tracer.add_sink(explode)
        try:
            obs.enable(tracing=True)
            with obs.trace_span("survives"):
                pass
            assert [s["name"] for s in tracer.spans()] == ["survives"]
        finally:
            obs.set_tracer(previous)
