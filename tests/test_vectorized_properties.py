"""Property-based equivalence: BatchRecommender vs reference strategies.

Hypothesis generates arbitrary small libraries and activities; the
vectorized engine must agree with the reference strategies on every one —
the library-level counterpart of the fixed-dataset tests in
``test_vectorized.py``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AssociationGoalModel
from repro.core.strategies import create_strategy
from repro.core.vectorized import BatchRecommender

action_labels = st.integers(min_value=0, max_value=20).map(lambda i: f"a{i}")
goal_labels = st.integers(min_value=0, max_value=6).map(lambda g: f"g{g}")
libraries = st.lists(
    st.tuples(
        goal_labels, st.frozensets(action_labels, min_size=1, max_size=5)
    ),
    min_size=1,
    max_size=15,
)
activities = st.frozensets(action_labels, max_size=6)


@given(libraries, activities, st.sampled_from(
    ["breadth", "focus_cmp", "focus_cl", "best_match"]
))
@settings(max_examples=60, deadline=None)
def test_batch_matches_reference(pairs, activity, name):
    model = AssociationGoalModel.from_pairs(pairs)
    batch = BatchRecommender(model)
    encoded = model.encode_activity(activity)
    reference = create_strategy(name).rank(model, encoded, k=8)
    vectorized = batch.rank(encoded, k=8, strategy=name)
    assert [aid for aid, _ in vectorized] == [aid for aid, _ in reference]
    for (_, ref_score), (_, vec_score) in zip(reference, vectorized):
        assert abs(ref_score - vec_score) < 1e-9


@given(libraries, activities)
@settings(max_examples=40, deadline=None)
def test_batch_breadth_scores_match(pairs, activity):
    from repro.core.strategies.breadth import BreadthStrategy

    model = AssociationGoalModel.from_pairs(pairs)
    batch = BatchRecommender(model)
    encoded = model.encode_activity(activity)
    reference = BreadthStrategy().scores(model, encoded)
    vector = batch.breadth_scores(encoded)
    for aid, score in reference.items():
        assert abs(vector[aid] - score) < 1e-9


@given(libraries, activities)
@settings(max_examples=40, deadline=None)
def test_batch_candidate_mask_consistent(pairs, activity):
    """The batch engine never returns activity actions or unreachable ones."""
    model = AssociationGoalModel.from_pairs(pairs)
    batch = BatchRecommender(model)
    encoded = model.encode_activity(activity)
    candidates = model.candidate_actions(encoded)
    for name in ("breadth", "best_match"):
        ranked = batch.rank(encoded, k=50, strategy=name)
        assert {aid for aid, _ in ranked} <= candidates
