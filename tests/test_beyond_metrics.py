"""Unit tests for the beyond-accuracy metrics."""

import pytest

from repro.core.entities import RecommendationList, ScoredAction
from repro.eval.beyond import (
    average_intra_list_distance,
    catalog_coverage,
    gini_concentration,
    intra_list_distance,
    novelty,
)
from repro.exceptions import EvaluationError


def rec(*actions):
    return RecommendationList(
        strategy="t",
        items=tuple(ScoredAction(a, 1.0) for a in actions),
    )


def first_letter_sim(a, b):
    return 1.0 if a[0] == b[0] else 0.0


class TestIntraListDistance:
    def test_homogeneous_list_zero_diversity(self):
        assert intra_list_distance(rec("aa", "ab", "ac"), first_letter_sim) == 0.0

    def test_heterogeneous_list_full_diversity(self):
        assert intra_list_distance(rec("aa", "bb", "cc"), first_letter_sim) == 1.0

    def test_single_item_none(self):
        assert intra_list_distance(rec("aa"), first_letter_sim) is None

    def test_average_skips_singletons(self):
        lists = [rec("aa", "bb"), rec("solo")]
        assert average_intra_list_distance(lists, first_letter_sim) == 1.0

    def test_average_no_pairs_raises(self):
        with pytest.raises(EvaluationError):
            average_intra_list_distance([rec("a")], first_letter_sim)


class TestNovelty:
    def test_rare_actions_more_novel(self):
        activities = [{"pop"}, {"pop"}, {"pop"}, {"pop", "rare"}]
        novel = novelty([rec("rare")], activities)
        common = novelty([rec("pop")], activities)
        assert novel > common

    def test_unseen_action_finite(self):
        activities = [{"a"}, {"a"}]
        value = novelty([rec("never_seen")], activities)
        assert value > 0 and value < float("inf")

    def test_empty_lists_raise(self):
        with pytest.raises(EvaluationError):
            novelty([], [{"a"}])
        with pytest.raises(EvaluationError):
            novelty([rec()], [{"a"}])


class TestCoverage:
    def test_full_coverage(self):
        lists = [rec("a", "b"), rec("c")]
        assert catalog_coverage(lists, catalog_size=3) == 1.0

    def test_partial_coverage(self):
        assert catalog_coverage([rec("a")], catalog_size=4) == 0.25

    def test_invalid_catalog_size(self):
        with pytest.raises(EvaluationError):
            catalog_coverage([rec("a")], catalog_size=0)


class TestGini:
    def test_uniform_distribution_zero(self):
        lists = [rec("a"), rec("b"), rec("c")]
        assert gini_concentration(lists) == pytest.approx(0.0)

    def test_concentrated_distribution_positive(self):
        lists = [rec("hot"), rec("hot"), rec("hot"), rec("hot"), rec("cold")]
        # counts {hot: 4, cold: 1} -> gini = 0.3 exactly
        assert gini_concentration(lists) == pytest.approx(0.3)

    def test_single_action_zero(self):
        assert gini_concentration([rec("only")]) == 0.0

    def test_monotone_in_concentration(self):
        mild = [rec("a"), rec("a"), rec("b"), rec("c")]
        strong = [rec("a"), rec("a"), rec("a"), rec("b")]
        assert gini_concentration(strong) >= gini_concentration(mild)

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            gini_concentration([rec()])

    def test_bounded(self):
        lists = [rec("a")] * 50 + [rec("b"), rec("c"), rec("d")]
        assert 0.0 <= gini_concentration(lists) <= 1.0
