"""The structural contracts of repro.core.protocols, checked at runtime.

``mypy --strict`` verifies signatures in CI; these tests pin member
*presence* for all three model implementations and every registered
strategy, so a surface regression fails even in environments without mypy.
"""

from __future__ import annotations

import pytest

from repro.core import (
    AssociationGoalModel,
    CachedModelView,
    IncrementalGoalModel,
    ModelView,
    Strategy,
    create_strategy,
)
from repro.core.strategies.base import STRATEGY_REGISTRY

PAIRS = [
    ("olivier salad", {"potatoes", "carrots", "pickles"}),
    ("mashed potatoes", {"potatoes", "butter"}),
]


def test_frozen_model_satisfies_model_view():
    model = AssociationGoalModel.from_pairs(PAIRS)
    assert isinstance(model, ModelView)


def test_incremental_model_satisfies_model_view():
    model = IncrementalGoalModel()
    model.add_implementation("goal", ["a", "b"])
    assert isinstance(model, ModelView)


def test_cached_view_satisfies_model_view():
    view = CachedModelView(AssociationGoalModel.from_pairs(PAIRS))
    assert isinstance(view, ModelView)
    # The delegated (non-overridden) surface works through the proxy too.
    assert view.num_implementations == 2
    assert view.goal_completeness(view.goal_id("mashed potatoes"),
                                  view.encode_activity({"potatoes"})) == 0.5


#: Constructor options for strategies that require configuration.
REQUIRED_OPTIONS = {
    "hybrid": {"item_features": {"potatoes": ["vegetable"]}},
}


@pytest.mark.parametrize("name", sorted(STRATEGY_REGISTRY))
def test_every_registered_strategy_satisfies_strategy(name):
    strategy = create_strategy(name, **REQUIRED_OPTIONS.get(name, {}))
    assert isinstance(strategy, Strategy)
    assert isinstance(strategy.name, str) and strategy.name


def test_strategies_interchangeable_across_implementations():
    frozen = AssociationGoalModel.from_pairs(PAIRS)
    incremental = IncrementalGoalModel()
    for goal, actions in PAIRS:
        incremental.add_implementation(goal, sorted(actions))
    view = CachedModelView(frozen)
    activity = frozenset({"potatoes", "carrots"})
    strategy = create_strategy("breadth")
    results = {
        source.__class__.__name__: strategy.recommend(
            source, source.encode_activity(activity), 5
        ).actions()
        for source in (frozen, incremental, view)
    }
    assert len(set(map(tuple, results.values()))) == 1, results
