"""The linter linted: repro-lint's rules against the fixture corpus.

Each RL rule runs against known-good and known-bad snippets under
``tests/fixtures/analysis/``; further tests pin the ``path:line:col CODE``
output format, pragma handling, exit codes, ``--select``, the
``--self-check`` registry gate, and — the acceptance criterion that
matters most — that the repo's own ``src/`` tree is clean.
"""

from __future__ import annotations

import io
import re
from pathlib import Path

import pytest

from repro.analysis import RULES, run_lint
from repro.analysis.cli import main
from repro.analysis.engine import UsageError, parse_pragmas

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
GOOD = FIXTURES / "good"
BAD = FIXTURES / "bad"
DOCS = REPO_ROOT / "docs" / "static-analysis.md"


def _line_of(path: Path, needle: str) -> int:
    """1-based line number of the first line containing ``needle``."""
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if needle in line:
            return lineno
    raise AssertionError(f"{needle!r} not found in {path}")


# ----------------------------------------------------------------------
# Rule-by-rule corpus
# ----------------------------------------------------------------------


def test_registry_has_the_seven_rules():
    assert sorted(RULES) == [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
    ]


def test_good_corpus_is_clean():
    result = run_lint([GOOD])
    assert result.violations == ()
    assert result.exit_code == 0


@pytest.mark.parametrize(
    ("fixture", "code", "count"),
    [
        (BAD / "guarded_bad.py", "RL001", 3),
        (BAD / "repro" / "core" / "strategies" / "impure.py", "RL002", 4),
        (BAD / "metrics_bad.py", "RL003", 6),
        (BAD / "error_shape_bad.py", "RL004", 3),
        (BAD / "repro" / "core" / "clock.py", "RL005", 5),
        (BAD / "lockorder_rl006.py", "RL006", 2),
        (BAD / "lockorder_rl007.py", "RL007", 2),
    ],
)
def test_bad_corpus_fires_exactly_one_rule(fixture, code, count):
    result = run_lint([fixture])
    assert result.exit_code == 1
    assert len(result.violations) == count
    assert {v.code for v in result.violations} == {code}


def test_rl001_flags_each_guard_kind_where_expected():
    fixture = BAD / "guarded_bad.py"
    messages = {
        (v.line, v.message) for v in run_lint([fixture]).violations
    }
    lines = {line for line, _ in messages}
    assert _line_of(fixture, "self._items.append(item)") in lines
    assert _line_of(fixture, "self._model = model  # <final>") in lines
    assert _line_of(fixture, 'registry._index["k"]') in lines
    assert any("with self._lock" in m for _, m in messages)
    assert any("<final>" in m for _, m in messages)
    assert any("<caller>" in m for _, m in messages)


def test_rl002_taint_reaches_aliased_model_state():
    fixture = BAD / "repro" / "core" / "strategies" / "impure.py"
    result = run_lint([fixture])
    alias_line = _line_of(fixture, "space.add(0)")
    hit = [v for v in result.violations if v.line == alias_line]
    assert len(hit) == 1
    assert "space-reachable" in hit[0].message


def test_rl003_duplicate_registration_points_at_first_site():
    fixture = BAD / "metrics_bad.py"
    result = run_lint([fixture])
    dup = [v for v in result.violations if "already registered" in v.message]
    assert len(dup) == 1
    first_line = _line_of(fixture, 'registry.counter("repro_dup_total")')
    assert f"{fixture}:{first_line}" in dup[0].message
    assert dup[0].line == first_line + 1


def test_rl003_duplicates_detected_across_files(tmp_path):
    (tmp_path / "a.py").write_text(
        'def f(r):\n    r.counter("repro_x_total")\n'
    )
    (tmp_path / "b.py").write_text(
        'def g(r):\n    r.counter("repro_x_total")\n'
    )
    result = run_lint([tmp_path])
    assert len(result.violations) == 1
    assert "already registered" in result.violations[0].message


# ----------------------------------------------------------------------
# Output format and exit codes
# ----------------------------------------------------------------------


def test_output_format_path_line_col_code_message():
    out = io.StringIO()
    exit_code = main([str(BAD / "guarded_bad.py")], out=out)
    assert exit_code == 1
    lines = out.getvalue().strip().splitlines()
    assert len(lines) == 3
    pattern = re.compile(r"^(?P<path>.+\.py):(?P<line>\d+):(?P<col>\d+) RL001 \S")
    for line in lines:
        match = pattern.match(line)
        assert match, f"malformed output line: {line!r}"
        assert match.group("path").endswith("guarded_bad.py")
        assert int(match.group("line")) >= 1
        assert int(match.group("col")) >= 1


def test_violations_sorted_by_location():
    result = run_lint([BAD])
    keys = [(v.path, v.line, v.col, v.code) for v in result.violations]
    assert keys == sorted(keys)


def test_exit_codes():
    assert main([str(GOOD)], out=io.StringIO()) == 0
    assert main([str(BAD)], out=io.StringIO()) == 1
    assert main([str(FIXTURES / "no_such_dir")], out=io.StringIO()) == 2
    assert main([], out=io.StringIO()) == 2


def test_unparseable_file_reports_rl000(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    result = run_lint([broken])
    assert result.exit_code == 1
    assert [v.code for v in result.violations] == ["RL000"]


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------


def test_pragma_forms_parse():
    suppressed = parse_pragmas(
        [
            "x = 1  # repro-lint: disable=RL001",
            "# repro-lint: disable=RL003,RL005",
            "y = 2",
        ]
    )
    assert suppressed == {1: {"RL001"}, 3: {"RL003", "RL005"}}


def test_pragmas_are_what_keep_the_fixture_clean(tmp_path):
    pragma_fixture = GOOD / "pragma_ok.py"
    assert run_lint([pragma_fixture]).violations == ()
    stripped = tmp_path / "pragma_stripped.py"
    stripped.write_text(
        re.sub(
            r"\s*# repro-lint: disable=[A-Z0-9,]+",
            "",
            pragma_fixture.read_text(),
        )
    )
    result = run_lint([stripped])
    assert len(result.violations) == 2
    assert {v.code for v in result.violations} == {"RL001"}


def test_pragma_only_suppresses_the_named_code(tmp_path):
    target = tmp_path / "wrong_code.py"
    target.write_text(
        "import threading\n"
        '_GUARDED_BY = {"T._n": "_lock"}\n'
        "class T:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._n = 0\n"
        "    def peek(self):\n"
        "        return self._n  # repro-lint: disable=RL002\n"
    )
    result = run_lint([target])
    assert [v.code for v in result.violations] == ["RL001"]


# ----------------------------------------------------------------------
# --select and --self-check
# ----------------------------------------------------------------------


def test_select_restricts_rules():
    result = run_lint([BAD], select=["RL003"])
    assert result.violations
    assert {v.code for v in result.violations} == {"RL003"}


def test_select_unknown_code_is_usage_error():
    with pytest.raises(UsageError):
        run_lint([BAD], select=["RL999"])
    assert main(["--select", "RL999", str(BAD)], out=io.StringIO()) == 2


def test_self_check_passes_against_repo_docs():
    out = io.StringIO()
    assert main(["--self-check", "--docs", str(DOCS)], out=out) == 0
    assert "7 rules registered" in out.getvalue()


def test_self_check_fails_on_undocumented_rule(tmp_path):
    partial = tmp_path / "docs.md"
    partial.write_text("Only RL001 and RL002 are described here.\n")
    out = io.StringIO()
    assert main(["--self-check", "--docs", str(partial)], out=out) == 1
    text = out.getvalue()
    for missing in ("RL003", "RL004", "RL005"):
        assert missing in text


def test_every_rule_documented_in_docs():
    text = DOCS.read_text()
    for code, rule in RULES.items():
        assert code in text
        assert rule.summary


# ----------------------------------------------------------------------
# RL006/RL007 — lock ordering against locks.toml
# ----------------------------------------------------------------------


def test_rl006_reports_inversion_at_each_nested_acquisition():
    fixture = BAD / "lockorder_rl006.py"
    violations = run_lint([fixture]).violations
    assert {v.code for v in violations} == {"RL006"}
    source_lines = fixture.read_text().splitlines()
    by_line = {v.line: v for v in violations}
    for needle in ("# nested: gen -> cache", "# nested: cache -> gen"):
        line = _line_of(fixture, needle)
        assert line in by_line, f"no RL006 at {needle!r}"
        # Column points at the acquisition expression (1-based).
        assert by_line[line].col == source_lines[line - 1].index("self") + 1
        assert "cycle" in by_line[line].message


def test_rl007_sees_nesting_through_helper_calls():
    fixture = BAD / "lockorder_rl007.py"
    violations = run_lint([fixture]).violations
    assert {v.code for v in violations} == {"RL007"}
    lines = {v.line for v in violations}
    assert _line_of(fixture, "# nested directly") in lines
    assert _line_of(fixture, "self._push()") in lines
    assert all("locks.toml" in v.message for v in violations)


def test_declared_nesting_passes_rl007(tmp_path):
    from repro.analysis import lockorder

    manifest = tmp_path / "locks.toml"
    manifest.write_text(
        "schema = 1\n\n[order]\n"
        '"UndeclaredNesting._outer_lock" = '
        '["UndeclaredNesting._inner_lock"]\n'
    )
    lockorder.set_manifest_path(manifest)
    try:
        assert run_lint([BAD / "lockorder_rl007.py"]).violations == ()
    finally:
        lockorder.set_manifest_path(None)


def test_manifest_closure_permits_transitive_nesting(tmp_path):
    from repro.analysis import lockorder

    target = tmp_path / "chain.py"
    target.write_text(
        "import threading\n"
        "class Chain:\n"
        "    def __init__(self):\n"
        "        self._a = threading.Lock()\n"
        "        self._c = threading.Lock()\n"
        "    def hop(self):\n"
        "        with self._a:\n"
        "            with self._c:\n"
        "                pass\n"
    )
    manifest = tmp_path / "locks.toml"
    manifest.write_text(
        "schema = 1\n\n[order]\n"
        '"Chain._a" = ["Chain._b"]\n"Chain._b" = ["Chain._c"]\n'
    )
    lockorder.set_manifest_path(manifest)
    try:
        assert run_lint([target]).violations == ()
    finally:
        lockorder.set_manifest_path(None)


def test_manifest_cannot_bless_a_cycle(tmp_path):
    from repro.analysis import lockorder

    manifest = tmp_path / "locks.toml"
    manifest.write_text(
        "schema = 1\n\n[order]\n"
        '"InvertedPair._gen_lock" = ["InvertedPair._cache_lock"]\n'
        '"InvertedPair._cache_lock" = ["InvertedPair._gen_lock"]\n'
    )
    lockorder.set_manifest_path(manifest)
    try:
        violations = run_lint([BAD / "lockorder_rl006.py"]).violations
        assert {v.code for v in violations} == {"RL006"}
    finally:
        lockorder.set_manifest_path(None)


def test_self_check_rejects_a_cyclic_manifest(tmp_path):
    bad = tmp_path / "locks.toml"
    bad.write_text(
        'schema = 1\n\n[order]\n"A.x" = ["B.y"]\n"B.y" = ["A.x"]\n'
    )
    out = io.StringIO()
    code = main(
        ["--self-check", "--docs", str(DOCS), "--locks", str(bad)], out=out
    )
    assert code == 1
    assert "cycle" in out.getvalue()


def test_self_check_rejects_malformed_manifest_sites(tmp_path):
    bad = tmp_path / "locks.toml"
    bad.write_text('schema = 1\n\n[order]\n"not-a-site" = ["A.x"]\n')
    out = io.StringIO()
    code = main(
        ["--self-check", "--docs", str(DOCS), "--locks", str(bad)], out=out
    )
    assert code == 1
    assert "not-a-site" in out.getvalue()


def test_lockmanifest_parse_closure_and_cycle():
    from repro.utils.lockmanifest import ManifestError, parse_manifest

    manifest = parse_manifest(
        'schema = 1\n\n[order]\n"A.x" = ["B.y"]\n"B.y" = ["C.z"]\n'
    )
    allowed = manifest.allowed()
    assert ("A.x", "C.z") in allowed
    assert ("C.z", "A.x") not in allowed
    assert manifest.cycle() is None
    cyclic = parse_manifest(
        'schema = 1\n\n[order]\n"A.x" = ["B.y"]\n"B.y" = ["A.x"]\n'
    )
    cycle = cyclic.cycle()
    assert cycle is not None and cycle[0] == cycle[-1]
    with pytest.raises(ManifestError):
        parse_manifest('[order]\n"A.x" = "B.y"\n')
    with pytest.raises(ManifestError):
        parse_manifest("order = 3\n")


# ----------------------------------------------------------------------
# --jobs: parallel parsing is byte-identical to serial
# ----------------------------------------------------------------------


def test_jobs_parallel_output_matches_serial():
    serial = run_lint([BAD])
    parallel = run_lint([BAD], jobs=4)
    assert parallel.violations == serial.violations
    assert parallel.files == serial.files
    assert serial.violations  # the corpus is not accidentally empty


def test_jobs_flag_accepted_by_cli():
    out = io.StringIO()
    assert main(["--jobs", "2", str(GOOD)], out=out) == 0


# ----------------------------------------------------------------------
# The self-check's metrics/docs cross-reference
# ----------------------------------------------------------------------


def _parsed(tmp_path, source: str):
    from repro.analysis.engine import load_module

    target = tmp_path / "mod.py"
    target.write_text(source)
    return [load_module(target)]


def test_metrics_docs_agreement_is_clean(tmp_path):
    from repro.analysis.metrics_names import metrics_docs_problems

    modules = _parsed(
        tmp_path, 'def f(r):\n    r.counter("repro_widget_total")\n'
    )
    docs = "| Metric | Kind |\n|---|---|\n| `repro_widget_total` | counter |\n"
    assert metrics_docs_problems(modules, docs) == []


def test_undocumented_metric_is_a_problem(tmp_path):
    from repro.analysis.metrics_names import metrics_docs_problems

    modules = _parsed(
        tmp_path, 'def f(r):\n    r.counter("repro_widget_total")\n'
    )
    problems = metrics_docs_problems(modules, "| `repro_other_total` |\n")
    assert any(
        "repro_widget_total" in p and "missing from the metric table" in p
        for p in problems
    )
    assert any(
        "repro_other_total" in p and "registered nowhere" in p
        for p in problems
    )


def test_prose_mentions_do_not_count_as_documentation(tmp_path):
    from repro.analysis.metrics_names import metrics_docs_problems

    modules = _parsed(
        tmp_path, 'def f(r):\n    r.counter("repro_widget_total")\n'
    )
    prose_only = "The `repro_widget_total` family counts widgets.\n"
    problems = metrics_docs_problems(modules, prose_only)
    assert any("missing from the metric table" in p for p in problems)


def test_missing_metrics_docs_is_itself_a_problem(tmp_path):
    from repro.analysis.metrics_names import metrics_docs_problems

    modules = _parsed(tmp_path, "x = 1\n")
    problems = metrics_docs_problems(modules, None)
    assert problems == [
        "docs/observability.md not found (pass --metrics-docs PATH)"
    ]


def test_self_check_cross_references_the_repo_metric_table():
    out = io.StringIO()
    metrics_docs = REPO_ROOT / "docs" / "observability.md"
    code = main(
        [
            "--self-check",
            "--docs", str(DOCS),
            "--metrics-docs", str(metrics_docs),
        ],
        out=out,
    )
    assert code == 0, out.getvalue()
    assert "metric registrations agree" in out.getvalue()


def test_self_check_flags_metric_table_drift(tmp_path):
    stale = tmp_path / "observability.md"
    stale.write_text(
        "| Metric | Kind |\n|---|---|\n| `repro_ghost_total` | counter |\n"
    )
    out = io.StringIO()
    code = main(
        ["--self-check", "--docs", str(DOCS), "--metrics-docs", str(stale)],
        out=out,
    )
    assert code == 1
    text = out.getvalue()
    assert "repro_ghost_total" in text
    # Real registrations are now all undocumented in the stale table.
    assert "repro_recommend_requests_total" in text


# ----------------------------------------------------------------------
# The repo itself
# ----------------------------------------------------------------------


def test_src_tree_is_clean():
    result = run_lint([REPO_ROOT / "src"])
    assert result.violations == (), result.render()
