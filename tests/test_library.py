"""Unit tests for the implementation library container."""

import pytest

from repro.core import GoalImplementation, ImplementationLibrary
from repro.exceptions import DataError


class TestAdd:
    def test_ids_are_dense_and_ordered(self):
        library = ImplementationLibrary()
        first = library.add_pair("g1", {"a"})
        second = library.add_pair("g2", {"b"})
        assert (first, second) == (0, 1)
        assert library[0].goal == "g1"
        assert library[1].goal == "g2"

    def test_duplicate_pair_is_idempotent(self):
        library = ImplementationLibrary()
        first = library.add_pair("g", {"a", "b"})
        again = library.add_pair("g", {"b", "a"})
        assert first == again
        assert len(library) == 1

    def test_same_actions_different_goal_is_new(self):
        library = ImplementationLibrary()
        library.add_pair("g1", {"a"})
        library.add_pair("g2", {"a"})
        assert len(library) == 2

    def test_same_goal_different_actions_is_new(self):
        library = ImplementationLibrary()
        library.add_pair("g", {"a"})
        library.add_pair("g", {"a", "b"})
        assert len(library) == 2

    def test_stored_impl_id_matches_position(self):
        library = ImplementationLibrary()
        library.add(GoalImplementation(goal="g", actions={"a"}, impl_id=999))
        # Caller-provided ids are replaced by the library's dense id.
        assert library[0].impl_id == 0

    def test_extend_returns_ids(self):
        library = ImplementationLibrary()
        ids = library.extend(
            [
                GoalImplementation(goal="g1", actions={"a"}),
                GoalImplementation(goal="g2", actions={"b"}),
            ]
        )
        assert ids == [0, 1]

    def test_getitem_unknown_raises_keyerror(self):
        with pytest.raises(KeyError):
            ImplementationLibrary()[0]


class TestQueries:
    @pytest.fixture
    def library(self, recipe_library):
        return recipe_library

    def test_goals(self, library):
        assert "olivier salad" in library.goals()
        assert len(library.goals()) == 4

    def test_actions(self, library):
        actions = library.actions()
        assert {"potatoes", "carrots", "nutmeg"} <= actions

    def test_implementations_of(self, library):
        impls = library.implementations_of("olivier salad")
        assert len(impls) == 1
        assert impls[0].actions == frozenset({"potatoes", "carrots", "pickles"})

    def test_implementations_of_unknown_goal_is_empty(self, library):
        assert library.implementations_of("nope") == []

    def test_iteration_order_is_insertion_order(self, library):
        goals = [impl.goal for impl in library]
        assert goals[0] == "olivier salad"
        assert goals[-1] == "carrot cake"


class TestStats:
    def test_empty_library_stats_raises(self):
        with pytest.raises(DataError, match="empty"):
            ImplementationLibrary().stats()

    def test_counts(self, recipe_library):
        stats = recipe_library.stats()
        assert stats.num_implementations == 4
        assert stats.num_goals == 4
        assert stats.num_actions == 9
        assert stats.max_implementation_length == 4

    def test_connectivity_definition(self, recipe_library):
        stats = recipe_library.stats()
        # Sum of per-action implementation counts / number of actions:
        # potatoes 2, carrots 3, nutmeg 2, the other six appear once.
        assert stats.connectivity == pytest.approx((2 + 3 + 2 + 6) / 9)

    def test_avg_length(self, recipe_library):
        stats = recipe_library.stats()
        assert stats.avg_implementation_length == pytest.approx((3 + 3 + 3 + 4) / 4)

    def test_str_mentions_counts(self, recipe_library):
        text = str(recipe_library.stats())
        assert "4 implementations" in text
        assert "connectivity" in text
