"""Equivalence tests: the vectorized engine must match the reference
strategies bit for bit (same actions, same order, same scores)."""

import pytest

from repro.core import AssociationGoalModel, GoalRecommender
from repro.core.vectorized import BatchRecommender
from repro.data import (
    FoodMartConfig,
    FortyThreeConfig,
    generate_foodmart,
    generate_fortythree,
)
from repro.exceptions import RecommendationError

STRATEGIES = ("breadth", "focus_cmp", "focus_cl", "best_match")


@pytest.fixture(scope="module")
def scenarios():
    result = []
    for dataset in (
        generate_foodmart(FoodMartConfig.tiny(), seed=0),
        generate_fortythree(FortyThreeConfig.tiny(), seed=1),
    ):
        model = AssociationGoalModel.from_library(dataset.library)
        result.append(
            (
                model,
                GoalRecommender(model),
                BatchRecommender(model),
                [user.full_activity for user in dataset.users[:25]],
            )
        )
    return result


class TestEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_matches_reference_on_both_datasets(self, scenarios, strategy):
        for model, reference, batch, activities in scenarios:
            for activity in activities:
                expected = reference.recommend(activity, k=10, strategy=strategy)
                actual = batch.recommend(activity, k=10, strategy=strategy)
                assert actual.actions() == expected.actions(), (
                    f"{strategy}: ranking diverged for activity {sorted(activity)[:4]}"
                )
                for exp_item, act_item in zip(expected, actual):
                    assert act_item.score == pytest.approx(exp_item.score)

    def test_breadth_scores_match_reference(self, scenarios, figure1_model):
        from repro.core.strategies.breadth import BreadthStrategy

        batch = BatchRecommender(figure1_model)
        activity = figure1_model.encode_activity({"a1"})
        reference_scores = BreadthStrategy().scores(figure1_model, activity)
        vector_scores = batch.breadth_scores(activity)
        for aid, score in reference_scores.items():
            assert vector_scores[aid] == pytest.approx(score)

    def test_best_match_distances_match_reference(self, figure1_model):
        from repro.core.strategies.best_match import BestMatchStrategy

        batch = BatchRecommender(figure1_model)
        activity = figure1_model.encode_activity({"a1", "a2"})
        reference = BestMatchStrategy().distances(figure1_model, activity)
        vectorized = batch.best_match_distances(activity)
        assert set(reference) == set(vectorized)
        for aid, distance in reference.items():
            assert vectorized[aid] == pytest.approx(distance)


class TestApi:
    def test_unknown_strategy_rejected(self, figure1_model):
        batch = BatchRecommender(figure1_model)
        with pytest.raises(ValueError, match="strategy"):
            batch.rank(frozenset(), k=5, strategy="nope")

    def test_k_validated(self, figure1_model):
        batch = BatchRecommender(figure1_model)
        with pytest.raises(RecommendationError, match="positive"):
            batch.recommend({"a1"}, k=0)

    def test_empty_activity_empty_result(self, figure1_model):
        batch = BatchRecommender(figure1_model)
        for strategy in STRATEGIES:
            assert batch.recommend(set(), k=5, strategy=strategy).actions() == []

    def test_unknown_actions_dropped(self, figure1_model):
        batch = BatchRecommender(figure1_model)
        with_noise = batch.recommend({"a1", "martian"}, k=5)
        clean = batch.recommend({"a1"}, k=5)
        assert with_noise.actions() == clean.actions()

    def test_recommend_many_order(self, figure1_model):
        batch = BatchRecommender(figure1_model)
        activities = [frozenset({"a1"}), frozenset({"a6"})]
        results = batch.recommend_many(activities, k=3)
        assert len(results) == 2
        assert results[0].activity == frozenset({"a1"})
        assert results[1].activity == frozenset({"a6"})

    def test_recommend_many_breadth_matches_per_activity_path(self, scenarios):
        for model, reference, batch, activities in scenarios:
            bulk = batch.recommend_many(
                [frozenset(a) for a in activities], k=10, strategy="breadth",
                chunk_size=4,  # force several chunks
            )
            for activity, result in zip(activities, bulk):
                expected = batch.recommend(activity, k=10, strategy="breadth")
                assert result.actions() == expected.actions()
                for exp_item, act_item in zip(expected, result):
                    assert act_item.score == exp_item.score  # bit-identical

    def test_recommend_many_validates_arguments(self, figure1_model):
        batch = BatchRecommender(figure1_model)
        with pytest.raises(RecommendationError, match="k must be positive"):
            batch.recommend_many([frozenset({"a1"})], k=0)
        with pytest.raises(RecommendationError, match="chunk_size"):
            batch.recommend_many([frozenset({"a1"})], chunk_size=0)
        with pytest.raises(ValueError, match="strategy"):
            batch.recommend_many([frozenset({"a1"})], strategy="nope")

    def test_recommend_many_empty_batch(self, figure1_model):
        batch = BatchRecommender(figure1_model)
        assert batch.recommend_many([], k=5) == []

    def test_rank_many_breadth_empty_activities(self, figure1_model):
        batch = BatchRecommender(figure1_model)
        rankings = batch.rank_many_breadth(
            [frozenset(), figure1_model.encode_activity({"a1"})], k=5
        )
        assert rankings[0] == []
        assert rankings[1] == batch.rank(
            figure1_model.encode_activity({"a1"}), k=5, strategy="breadth"
        )

    def test_recommend_many_non_breadth_delegates(self, figure1_model):
        batch = BatchRecommender(figure1_model)
        results = batch.recommend_many(
            [frozenset({"a1"})], k=5, strategy="focus_cmp"
        )
        expected = batch.recommend({"a1"}, k=5, strategy="focus_cmp")
        assert results[0].actions() == expected.actions()
