"""Unit tests for the incrementally maintainable goal model."""

import pytest

from repro.core import (
    AssociationGoalModel,
    GoalRecommender,
    ImplementationLibrary,
    IncrementalGoalModel,
)
from repro.core.strategies import create_strategy
from repro.exceptions import ModelError, UnknownActionError


@pytest.fixture
def model(figure1_pairs):
    incremental = IncrementalGoalModel()
    for goal, actions in figure1_pairs:
        incremental.add_implementation(goal, actions)
    return incremental


class TestAdd:
    def test_counts(self, model):
        assert model.num_implementations == 5
        assert model.num_goals == 5
        assert model.num_actions == 6

    def test_duplicate_returns_existing_id(self, model):
        pid = model.add_implementation("g1", {"a1", "a2", "a3"})
        assert pid == 0
        assert model.num_implementations == 5

    def test_empty_actions_rejected(self, model):
        with pytest.raises(ModelError, match="no actions"):
            model.add_implementation("g9", [])

    def test_ids_monotonic(self, model):
        first = model.add_implementation("new", {"x"})
        model.remove_implementation(first)
        second = model.add_implementation("new2", {"y"})
        assert second > first


class TestRemove:
    def test_remove_updates_spaces(self, model):
        # g5's implementation is {a1, a6}; removing it shrinks a1's spaces.
        gid = model.goal_id("g5")
        (pid,) = model.implementations_of_goal(gid)
        model.remove_implementation(pid)
        assert model.goal_space_labels({"a1"}) == {"g1", "g2", "g3"}
        assert "a6" not in model.action_space_labels({"a1"})

    def test_remove_unknown_raises(self, model):
        with pytest.raises(ModelError, match="no live"):
            model.remove_implementation(999)

    def test_double_remove_raises(self, model):
        model.remove_implementation(0)
        with pytest.raises(ModelError):
            model.remove_implementation(0)

    def test_readd_after_remove_allowed(self, model):
        model.remove_implementation(0)
        pid = model.add_implementation("g1", {"a1", "a2", "a3"})
        assert pid != 0
        assert model.goal_space_labels({"a2"}) >= {"g1"}

    def test_orphaned_action_keeps_id_with_empty_space(self, model):
        gid = model.goal_id("g4")
        (pid,) = model.implementations_of_goal(gid)
        # a6 also appears in g5's implementation; remove both.
        gid5 = model.goal_id("g5")
        (pid5,) = model.implementations_of_goal(gid5)
        model.remove_implementation(pid)
        model.remove_implementation(pid5)
        aid = model.action_id("a6")  # still interned
        assert model.implementations_of_action(aid) == frozenset()
        assert model.goal_space(frozenset({aid})) == set()


class TestQueriesMatchFrozenModel:
    def test_spaces_agree(self, figure1_pairs, model):
        frozen = AssociationGoalModel.from_pairs(figure1_pairs)
        for activity in ({"a1"}, {"a2", "a6"}, {"a4", "a5"}):
            assert model.goal_space_labels(activity) == frozen.goal_space_labels(
                activity
            )
            assert model.action_space_labels(activity) == frozen.action_space_labels(
                activity
            )

    def test_strategies_run_against_incremental(self, model):
        activity = model.encode_activity({"a1"})
        for name in ("focus_cmp", "focus_cl", "breadth", "best_match"):
            ranked = create_strategy(name).rank(model, activity, k=5)
            labels = {model.action_label(aid) for aid, _ in ranked}
            assert labels
            assert "a1" not in labels

    def test_goal_recommender_accepts_incremental(self, model):
        result = GoalRecommender(model).recommend({"a1"}, k=3)
        assert len(result) == 3

    def test_recommendations_change_after_update(self, model):
        recommender = GoalRecommender(model)
        before = recommender.recommend({"a1"}, k=10).action_set()
        model.add_implementation("new goal", {"a1", "fresh_action"})
        after = recommender.recommend({"a1"}, k=10).action_set()
        assert "fresh_action" in after
        assert "fresh_action" not in before


class TestFreeze:
    def test_freeze_equivalent_queries(self, model):
        frozen = model.freeze()
        assert frozen.goal_space_labels({"a1"}) == model.goal_space_labels({"a1"})

    def test_freeze_drops_orphans(self, model):
        model.add_implementation("temp", {"ephemeral"})
        gid = model.goal_id("temp")
        (pid,) = model.implementations_of_goal(gid)
        model.remove_implementation(pid)
        frozen = model.freeze()
        assert not frozen.has_action("ephemeral")
        assert not frozen.has_goal("temp")

    def test_freeze_empty_raises(self):
        with pytest.raises(ModelError, match="no live"):
            IncrementalGoalModel().freeze()

    def test_from_library_roundtrip(self, recipe_library):
        incremental = IncrementalGoalModel.from_library(recipe_library)
        assert incremental.num_implementations == len(recipe_library)
        exported = incremental.to_library()
        assert [(i.goal, i.actions) for i in exported] == [
            (i.goal, i.actions) for i in recipe_library
        ]


class TestMisc:
    def test_unknown_action_strict_encoding(self, model):
        with pytest.raises(UnknownActionError):
            model.encode_activity({"nope"}, strict=True)

    def test_goal_completeness(self, model):
        encoded = model.encode_activity({"a1", "a2"})
        assert model.goal_completeness(model.goal_id("g1"), encoded) == pytest.approx(
            2 / 3
        )

    def test_implementation_reconstruction(self, model):
        impl = model.implementation(0)
        assert impl.goal == "g1"
        assert impl.actions == frozenset({"a1", "a2", "a3"})

    def test_dead_implementation_access_raises(self, model):
        model.remove_implementation(0)
        with pytest.raises(ModelError):
            model.implementation_actions(0)
        with pytest.raises(ModelError):
            model.implementation_goal(0)


class TestEmptyModelLifecycle:
    """Removing the last implementation must leave every derived statistic
    well-defined, and the model must accept implementations again."""

    def test_remove_all_then_stats_are_zero(self, model):
        for pid in model.live_implementation_ids():
            model.remove_implementation(pid)
        assert model.num_implementations == 0
        assert model.connectivity() == 0.0
        stats = model.stats()
        assert stats.num_implementations == 0
        assert stats.num_goals == 0
        assert stats.num_actions == 0
        assert stats.connectivity == 0.0
        assert stats.avg_implementation_length == 0.0
        assert stats.max_implementation_length == 0
        assert stats.avg_implementations_per_goal == 0.0

    def test_remove_all_freeze_message_is_clear(self, model):
        for pid in model.live_implementation_ids():
            model.remove_implementation(pid)
        with pytest.raises(
            ModelError, match="cannot freeze a model with no live"
        ):
            model.freeze()

    def test_remove_all_then_add_again(self, model):
        before = model.num_implementations
        for pid in model.live_implementation_ids():
            model.remove_implementation(pid)
        pid = model.add_implementation("revived", {"a1", "brand-new"})
        assert pid == before  # monotonic ids, never reused
        assert model.num_implementations == 1
        assert model.goal_space_labels({"a1"}) == {"revived"}
        frozen = model.freeze()
        assert frozen.num_implementations == 1
        assert frozen.has_action("brand-new")

    def test_empty_model_spaces_are_empty(self, model):
        for pid in model.live_implementation_ids():
            model.remove_implementation(pid)
        encoded = model.encode_activity({"a1", "a2"})
        assert model.implementation_space(encoded) == set()
        assert model.goal_space(encoded) == set()
        assert model.action_space(encoded) == set()


class TestDerivedStatistics:
    def test_stats_match_frozen_model(self, model):
        assert model.stats() == model.freeze().stats()

    def test_stats_exclude_orphans(self, model):
        model.add_implementation("temp", {"ephemeral", "a1"})
        gid = model.goal_id("temp")
        (pid,) = model.implementations_of_goal(gid)
        model.remove_implementation(pid)
        stats = model.stats()
        # "ephemeral" and "temp" are interned but orphaned: live counts
        # must agree with what freeze() would keep.
        assert stats == model.freeze().stats()
        assert not any(
            model.implementations_of_action(model.action_id("ephemeral"))
        )

    def test_connectivity_matches_frozen(self, model):
        assert model.connectivity() == pytest.approx(
            model.freeze().connectivity()
        )

    def test_live_implementation_ids_sorted(self, model):
        model.remove_implementation(1)
        assert model.live_implementation_ids() == sorted(
            model.live_implementation_ids()
        )
        assert 1 not in model.live_implementation_ids()
