"""Unit tests for the observability layer (``repro.obs``)."""

from __future__ import annotations

import io
import json
import logging
import threading

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.utils.timing import Stopwatch


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


# ---------------------------------------------------------------------------
# Counters and gauges
# ---------------------------------------------------------------------------

class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("c_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("c_total").inc(-1)

    def test_label_children_are_independent(self, registry):
        registry.counter("c_total", endpoint="/a").inc()
        registry.counter("c_total", endpoint="/b").inc(2)
        assert registry.counter("c_total", endpoint="/a").value == 1
        assert registry.counter("c_total", endpoint="/b").value == 2

    def test_same_label_set_returns_same_child(self, registry):
        first = registry.counter("c_total", a="1", b="2")
        second = registry.counter("c_total", b="2", a="1")  # order-insensitive
        assert first is second


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_bucketing_is_cumulative_with_inf_tail(self, registry):
        hist = registry.histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 10.0):
            hist.observe(value)
        # le=1: {0.5, 1.0}; le=2: +{1.5}; le=5: nothing new; +Inf: +{10}.
        assert hist.cumulative_counts() == [2, 3, 3, 4]
        assert hist.count == 4
        assert hist.sum == pytest.approx(13.0)

    def test_boundary_value_falls_in_its_le_bucket(self, registry):
        hist = registry.histogram("h", buckets=(0.01, 0.1))
        hist.observe(0.01)
        assert hist.cumulative_counts()[0] == 1

    def test_bounds_must_increase(self):
        from repro.obs.metrics import Histogram

        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram(buckets=())

    def test_conflicting_bucket_layout_rejected(self, registry):
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="already has buckets"):
            registry.histogram("h", buckets=(3.0,))


# ---------------------------------------------------------------------------
# Registry semantics and exposition format
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_kind_conflict_rejected(self, registry):
        registry.counter("m")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("m")

    def test_label_name_mismatch_rejected(self, registry):
        registry.counter("m", endpoint="/a")
        with pytest.raises(ValueError, match="has labels"):
            registry.counter("m", status="200")

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("m", **{"bad-label": "x"})

    def test_render_counter_and_gauge(self, registry):
        registry.counter("req_total", "Requests.", path="/a").inc(3)
        registry.gauge("size", "Library size.").set(7)
        text = registry.render()
        assert "# HELP req_total Requests." in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{path="/a"} 3' in text
        assert "# TYPE size gauge" in text
        assert "size 7" in text
        assert text.endswith("\n")

    def test_render_histogram_exposition(self, registry):
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0), op="x")
        hist.observe(0.05)
        hist.observe(5.0)
        text = registry.render()
        assert 'lat_seconds_bucket{op="x",le="0.1"} 1' in text
        assert 'lat_seconds_bucket{op="x",le="1"} 1' in text
        assert 'lat_seconds_bucket{op="x",le="+Inf"} 2' in text
        assert 'lat_seconds_count{op="x"} 2' in text
        assert 'lat_seconds_sum{op="x"}' in text

    def test_label_values_escaped(self, registry):
        registry.counter("m", label='quote " slash \\ newline \n').inc()
        text = registry.render()
        (sample_line,) = [
            line for line in text.splitlines() if line.startswith("m{")
        ]
        # One complete line: quote/backslash/newline all escaped.
        assert sample_line == 'm{label="quote \\" slash \\\\ newline \\n"} 1'

    def test_snapshot_and_reset(self, registry):
        registry.counter("m", a="1").inc(2)
        snap = registry.snapshot()
        assert snap["m"]["kind"] == "counter"
        assert snap["m"]["samples"][(("a", "1"),)] == 2
        registry.reset()
        assert registry.names() == []

    def test_concurrent_increments_are_exact(self, registry):
        counter = registry.counter("m")
        hist = registry.histogram("h", buckets=(1.0,))

        def worker():
            for _ in range(1000):
                counter.inc()
                hist.observe(0.5)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000
        assert hist.count == 8000

    def test_global_registry_swap(self):
        fresh = MetricsRegistry()
        previous = obs.set_registry(fresh)
        try:
            assert obs.get_registry() is fresh
        finally:
            obs.set_registry(previous)


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------

class TestTracing:
    def test_disabled_trace_span_is_noop(self):
        tracer = Tracer()
        previous = obs.set_tracer(tracer)
        try:
            with obs.trace_span("op", key="value") as span:
                assert span.is_recording is False
                span.set_attr("ignored", 1)  # must not raise
            assert tracer.spans() == []
        finally:
            obs.set_tracer(previous)

    def test_nesting_and_attributes(self):
        tracer = Tracer()
        with tracer.span("parent", a=1) as parent:
            with tracer.span("child") as child:
                child.set_attr("b", 2)
            parent.set_attrs(c=3)
        roots = tracer.spans()
        assert len(roots) == 1
        root = roots[0]
        assert root["name"] == "parent"
        assert root["attributes"] == {"a": 1, "c": 3}
        assert root["duration_ms"] is not None
        (child_dict,) = root["children"]
        assert child_dict["name"] == "child"
        assert child_dict["attributes"] == {"b": 2}

    def test_export_json_round_trips(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        parsed = json.loads(tracer.export_json())
        assert parsed["spans"][0]["name"] == "op"

    def test_exception_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kapow")
        (root,) = tracer.spans()
        assert root["attributes"]["error"] == "RuntimeError: kapow"

    def test_reset_and_bound_retention(self):
        tracer = Tracer(max_spans=2)
        for index in range(3):
            with tracer.span(f"op{index}"):
                pass
        names = [span["name"] for span in tracer.spans()]
        assert names == ["op1", "op2"]  # oldest dropped
        tracer.reset()
        assert tracer.spans() == []


def _span_names(span: dict) -> set[str]:
    """All span names in one tree, root included."""
    names = {span["name"]}
    for child in span["children"]:
        names |= _span_names(child)
    return names


class TestRecommendTracing:
    """The acceptance-criterion span tree: strategy name + space sizes."""

    def test_recommend_span_carries_space_sizes(self, figure1_recommender):
        tracer = Tracer()
        previous = obs.set_tracer(tracer)
        obs.enable(metrics=False, tracing=True, trace_detail=True)
        try:
            figure1_recommender.recommend({"a1"}, k=3, strategy="breadth")
        finally:
            obs.disable()
            obs.set_tracer(previous)
        roots = tracer.spans()
        recommend = next(s for s in roots if s["name"] == "recommend")
        attrs = recommend["attributes"]
        # Paper Example 4.3: a1 reaches p1,p2,p3,p5 -> 4 goals, 6 actions.
        assert attrs["strategy"] == "breadth"
        assert attrs["is_size"] == 4
        assert attrs["gs_size"] == 4
        assert attrs["as_size"] == 6
        assert attrs["candidates"] == 5
        child_names = [child["name"] for child in recommend["children"]]
        assert "rank" in child_names
        rank = recommend["children"][child_names.index("rank")]
        assert rank["attributes"]["strategy"] == "breadth"
        # With trace detail on, the tree carries all four stage spans.
        assert {
            "implementation_space", "goal_space", "action_space", "rank"
        } <= _span_names(recommend)

    def test_recommend_span_skips_space_sizes_without_detail(
        self, figure1_recommender
    ):
        tracer = Tracer()
        previous = obs.set_tracer(tracer)
        obs.enable(metrics=False, tracing=True)
        try:
            figure1_recommender.recommend({"a1"}, k=3, strategy="breadth")
        finally:
            obs.disable()
            obs.set_tracer(previous)
        recommend = next(
            s for s in tracer.spans() if s["name"] == "recommend"
        )
        attrs = recommend["attributes"]
        # The space sizes cost three extra index queries; without the
        # trace-detail flag only the cheap attributes are recorded.
        assert attrs["strategy"] == "breadth"
        assert "is_size" not in attrs
        assert "gs_size" not in attrs
        assert attrs["returned"] == 3


class TestRecommendMetrics:
    def test_recommend_records_counter_and_histogram(self, figure1_recommender):
        fresh = MetricsRegistry()
        previous = obs.set_registry(fresh)
        obs.enable(metrics=True, tracing=False)
        try:
            figure1_recommender.recommend({"a1"}, k=3, strategy="breadth")
            figure1_recommender.recommend({"a1"}, k=3, strategy="best_match")
        finally:
            obs.disable()
            obs.set_registry(previous)
        assert fresh.counter(
            "repro_recommend_requests_total", strategy="breadth"
        ).value == 1
        assert fresh.histogram(
            "repro_recommend_latency_seconds", strategy="best_match"
        ).count == 1
        assert fresh.counter(
            "repro_space_queries_total", space="implementation"
        ).value > 0

    def test_disabled_records_nothing(self, figure1_recommender):
        fresh = MetricsRegistry()
        previous = obs.set_registry(fresh)
        try:
            figure1_recommender.recommend({"a1"}, k=3)
        finally:
            obs.set_registry(previous)
        assert fresh.names() == []


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------

class TestStructuredLogs:
    def _configured(self, json_logs):
        stream = io.StringIO()
        logger = obs.configure_logging(
            level="INFO", json_logs=json_logs, stream=stream
        )
        return logger, stream

    def test_json_lines_carry_run_and_request_ids(self):
        logger, stream = self._configured(json_logs=True)
        with obs.request_context("req-123"):
            obs.log_event(logger, "unit.test", answer=42)
        record = json.loads(stream.getvalue().strip())
        assert record["event"] == "unit.test"
        assert record["answer"] == 42
        assert record["run_id"] == obs.RUN_ID
        assert record["request_id"] == "req-123"
        assert record["level"] == "info"

    def test_text_format_appends_fields(self):
        logger, stream = self._configured(json_logs=False)
        obs.log_event(logger, "unit.test", key="value")
        line = stream.getvalue()
        assert "unit.test" in line and "key=value" in line

    def test_configure_is_idempotent(self):
        obs.configure_logging(level="INFO", stream=io.StringIO())
        obs.configure_logging(level="INFO", stream=io.StringIO())
        root = logging.getLogger("repro")
        installed = [
            h for h in root.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(installed) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs.configure_logging(level="loud")

    def test_request_context_mints_ids(self):
        assert obs.current_request_id() is None
        with obs.request_context() as rid:
            assert obs.current_request_id() == rid
        assert obs.current_request_id() is None

    def test_below_threshold_events_suppressed(self):
        logger, stream = self._configured(json_logs=True)
        obs.log_event(logger, "debug.event", level=logging.DEBUG)
        assert stream.getvalue() == ""


# ---------------------------------------------------------------------------
# Runtime switches
# ---------------------------------------------------------------------------

class TestRuntimeSwitches:
    def test_enable_is_selective_and_composable(self):
        obs.enable(metrics=True, tracing=False)
        assert obs.metrics_enabled() and not obs.tracing_enabled()
        obs.enable(metrics=False, tracing=True)  # must not clear metrics
        assert obs.metrics_enabled() and obs.tracing_enabled()
        assert obs.is_enabled()
        obs.disable()
        assert not obs.is_enabled()


# ---------------------------------------------------------------------------
# Thread-safe Stopwatch (satellite) and the obs re-export
# ---------------------------------------------------------------------------

class TestStopwatchThreadSafety:
    def test_concurrent_records_all_land(self):
        watch = Stopwatch()

        def worker():
            for _ in range(500):
                watch.record("op", 0.001)
                with watch.measure("measured"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert watch.summary("op").count == 4000
        assert watch.summary("measured").count == 4000

    def test_reexported_from_obs(self):
        assert obs.Stopwatch is Stopwatch
        from repro.utils.timing import TimingSummary, timed

        assert obs.TimingSummary is TimingSummary
        assert obs.timed is timed


# ---------------------------------------------------------------------------
# Version single-sourcing (satellite)
# ---------------------------------------------------------------------------

class TestVersion:
    def test_version_matches_pyproject(self):
        import tomllib
        from pathlib import Path

        import repro

        pyproject = Path(repro.__file__).parents[2] / "pyproject.toml"
        with pyproject.open("rb") as handle:
            expected = tomllib.load(handle)["project"]["version"]
        assert repro.__version__ == expected
