"""Unit tests for structured explanations and related actions."""

import pytest

from repro.core.explain import Explanation, explain_action, render_explanation
from repro.core.related import implementation_similarity, related_actions
from repro.exceptions import UnknownActionError


class TestExplainAction:
    def test_pickles_explanation(self, recipe_model):
        explanation = explain_action(
            recipe_model, {"potatoes", "carrots"}, "pickles"
        )
        assert explanation.action == "pickles"
        assert explanation.goals() == ["olivier salad"]
        (entry,) = explanation.evidence
        assert entry.completeness_before == pytest.approx(2 / 3)
        assert entry.completeness_after == 1.0
        assert entry.fulfills()
        assert entry.best_missing == frozenset()

    def test_multi_goal_evidence_sorted_by_gain(self, recipe_model):
        explanation = explain_action(
            recipe_model, {"potatoes", "carrots"}, "nutmeg"
        )
        assert set(explanation.goals()) == {
            "mashed potatoes", "pan-fried carrots",
        }
        gains = [entry.gain for entry in explanation.evidence]
        assert gains == sorted(gains, reverse=True)

    def test_best_missing_reported(self, recipe_model):
        explanation = explain_action(
            recipe_model, {"potatoes", "carrots"}, "nutmeg"
        )
        by_goal = {entry.goal: entry for entry in explanation.evidence}
        assert by_goal["mashed potatoes"].best_missing == frozenset({"butter"})
        assert by_goal["pan-fried carrots"].best_missing == frozenset({"oil"})

    def test_total_gain(self, recipe_model):
        explanation = explain_action(
            recipe_model, {"potatoes", "carrots"}, "nutmeg"
        )
        assert explanation.total_gain() == pytest.approx(2 / 3)

    def test_unreachable_action_has_empty_evidence(self, recipe_model):
        explanation = explain_action(recipe_model, {"pickles"}, "flour")
        assert explanation.evidence == ()

    def test_unknown_action_raises(self, recipe_model):
        with pytest.raises(UnknownActionError):
            explain_action(recipe_model, {"potatoes"}, "martian")

    def test_multiple_implementations_counted(self):
        from repro.core import AssociationGoalModel

        model = AssociationGoalModel.from_pairs(
            [("g", {"h", "x"}), ("g", {"h", "x", "y"})]
        )
        explanation = explain_action(model, {"h"}, "x")
        (entry,) = explanation.evidence
        assert entry.num_implementations == 2


class TestRender:
    def test_render_mentions_goals_and_completion(self, recipe_model):
        text = render_explanation(
            explain_action(recipe_model, {"potatoes", "carrots"}, "pickles")
        )
        assert "why 'pickles'" in text
        assert "olivier salad" in text
        assert "COMPLETES" in text

    def test_render_missing_actions(self, recipe_model):
        text = render_explanation(
            explain_action(recipe_model, {"potatoes", "carrots"}, "nutmeg")
        )
        assert "still missing: butter" in text

    def test_render_empty_evidence(self, recipe_model):
        text = render_explanation(
            explain_action(recipe_model, {"pickles"}, "flour")
        )
        assert "no goal" in text

    def test_explanation_is_dataclass(self, recipe_model):
        explanation = explain_action(recipe_model, {"potatoes"}, "butter")
        assert isinstance(explanation, Explanation)


class TestRelatedActions:
    def test_similarity_range_and_symmetry(self, recipe_model):
        value = implementation_similarity(recipe_model, "potatoes", "carrots")
        assert 0.0 < value < 1.0
        assert value == implementation_similarity(
            recipe_model, "carrots", "potatoes"
        )

    def test_same_implementation_set_is_one(self):
        from repro.core import AssociationGoalModel

        model = AssociationGoalModel.from_pairs([("g", {"a", "b"})])
        assert implementation_similarity(model, "a", "b") == 1.0

    def test_never_cooccurring_is_zero(self, recipe_model):
        assert implementation_similarity(recipe_model, "pickles", "flour") == 0.0

    def test_related_ranked_and_bounded(self, recipe_model):
        related = related_actions(recipe_model, "nutmeg", k=3)
        assert len(related) == 3
        scores = [score for _, score in related]
        assert scores == sorted(scores, reverse=True)

    def test_related_excludes_self(self, recipe_model):
        related = related_actions(recipe_model, "potatoes", k=10)
        assert all(action != "potatoes" for action, _ in related)

    def test_related_only_cooccurring(self, recipe_model):
        related = dict(related_actions(recipe_model, "pickles", k=10))
        assert "flour" not in related

    def test_unknown_action_raises(self, recipe_model):
        with pytest.raises(UnknownActionError):
            related_actions(recipe_model, "martian")

    def test_k_validated(self, recipe_model):
        with pytest.raises(ValueError):
            related_actions(recipe_model, "potatoes", k=0)
