"""Unit tests for the sampled and pruned Breadth approximations."""

import pytest

from repro.core import AssociationGoalModel, recall_at_k
from repro.core.approximate import PrunedBreadthStrategy, SampledBreadthStrategy
from repro.core.caching import CachedModelView
from repro.core.entities import RecommendationList, ScoredAction
from repro.core.strategies import create_strategy
from repro.core.strategies.breadth import BreadthStrategy
from repro.data import FoodMartConfig, generate_foodmart


@pytest.fixture(scope="module")
def foodmart_model():
    dataset = generate_foodmart(FoodMartConfig.tiny(), seed=0)
    return AssociationGoalModel.from_library(dataset.library)


class TestConfiguration:
    def test_budget_validated(self):
        with pytest.raises(ValueError, match="max_implementations"):
            SampledBreadthStrategy(max_implementations=0)

    def test_registered(self):
        strategy = create_strategy("breadth_sampled", max_implementations=10)
        assert isinstance(strategy, SampledBreadthStrategy)


class TestExactRegime:
    def test_under_budget_equals_exact_breadth(self, figure1_model):
        activity = figure1_model.encode_activity({"a1"})
        exact = BreadthStrategy().scores(figure1_model, activity)
        sampled = SampledBreadthStrategy(max_implementations=100).scores(
            figure1_model, activity
        )
        assert sampled == pytest.approx(exact)

    def test_sampling_rate_one_under_budget(self, figure1_model):
        strategy = SampledBreadthStrategy(max_implementations=100)
        activity = figure1_model.encode_activity({"a1"})
        assert strategy.sampling_rate(figure1_model, activity) == 1.0

    def test_empty_activity(self, figure1_model):
        strategy = SampledBreadthStrategy(max_implementations=2)
        assert strategy.rank(figure1_model, frozenset(), k=5) == []
        assert strategy.sampling_rate(figure1_model, frozenset()) == 1.0


class TestSampledRegime:
    @pytest.fixture
    def activity(self, foodmart_model):
        labels = sorted(foodmart_model.action_labels())[:5]
        return foodmart_model.encode_activity(labels)

    def test_budget_respected(self, foodmart_model, activity):
        strategy = SampledBreadthStrategy(max_implementations=20)
        rate = strategy.sampling_rate(foodmart_model, activity)
        assert rate < 1.0

    def test_deterministic_per_request(self, foodmart_model, activity):
        strategy = SampledBreadthStrategy(max_implementations=20, seed=1)
        first = strategy.rank(foodmart_model, activity, k=10)
        second = strategy.rank(foodmart_model, activity, k=10)
        assert first == second

    def test_different_seeds_sample_differently(self, foodmart_model, activity):
        a = SampledBreadthStrategy(max_implementations=20, seed=1)
        b = SampledBreadthStrategy(max_implementations=20, seed=2)
        assert a.scores(foodmart_model, activity) != b.scores(
            foodmart_model, activity
        )

    def test_scores_scaled_unbiased_direction(self, foodmart_model, activity):
        """Estimated totals should be in the ballpark of exact totals."""
        exact = BreadthStrategy().scores(foodmart_model, activity)
        strategy = SampledBreadthStrategy(max_implementations=60, seed=0)
        sampled = strategy.scores(foodmart_model, activity)
        exact_total = sum(exact.values())
        sampled_total = sum(sampled.values())
        assert sampled_total == pytest.approx(exact_total, rel=0.5)

    def test_top_ranks_mostly_agree(self, foodmart_model):
        """With half the space sampled, top-10 overlap stays high."""
        exact = BreadthStrategy()
        hits = 0
        total = 0
        for start in range(0, 25, 5):
            labels = sorted(foodmart_model.action_labels())[start : start + 5]
            activity = foodmart_model.encode_activity(labels)
            size = len(foodmart_model.implementation_space(activity))
            strategy = SampledBreadthStrategy(
                max_implementations=max(1, size // 2), seed=0
            )
            exact_top = {a for a, _ in exact.rank(foodmart_model, activity, 10)}
            sampled_top = {
                a for a, _ in strategy.rank(foodmart_model, activity, 10)
            }
            hits += len(exact_top & sampled_top)
            total += len(exact_top)
        assert hits / total > 0.6

    def test_never_recommends_activity(self, foodmart_model, activity):
        strategy = SampledBreadthStrategy(max_implementations=20)
        ranked = strategy.rank(foodmart_model, activity, k=20)
        assert not {aid for aid, _ in ranked} & activity


class TestPrunedConfiguration:
    def test_budget_validated(self):
        with pytest.raises(ValueError, match="budget"):
            PrunedBreadthStrategy(budget=0)

    def test_registered(self):
        strategy = create_strategy("breadth_pruned", budget=7)
        assert isinstance(strategy, PrunedBreadthStrategy)
        assert strategy.budget == 7

    def test_default_budget_is_serving_default(self):
        assert PrunedBreadthStrategy().budget == 128


class TestPrunedExactRegime:
    def test_large_budget_equals_exact_breadth(self, figure1_model):
        """Connectivity below the budget makes the truncation a no-op."""
        exact = BreadthStrategy()
        pruned = PrunedBreadthStrategy(budget=1000)
        for raw in ({"a1"}, {"a1", "a2"}, {"a2", "a6"}):
            activity = figure1_model.encode_activity(raw)
            assert pruned.rank(figure1_model, activity, k=10) == (
                exact.rank(figure1_model, activity, k=10)
            )

    def test_large_budget_equals_exact_on_foodmart(self, foodmart_model):
        exact = BreadthStrategy()
        pruned = PrunedBreadthStrategy(budget=10_000)
        labels = sorted(foodmart_model.action_labels())[:4]
        activity = foodmart_model.encode_activity(labels)
        assert pruned.rank(foodmart_model, activity, k=10) == (
            exact.rank(foodmart_model, activity, k=10)
        )

    def test_empty_activity(self, figure1_model):
        assert PrunedBreadthStrategy().rank(
            figure1_model, frozenset(), k=5
        ) == []


class TestPrunedTruncation:
    def test_truncated_row_respects_budget(self, foodmart_model):
        strategy = PrunedBreadthStrategy(budget=3)
        for aid in range(min(20, foodmart_model.num_actions)):
            row = strategy._truncated_row(foodmart_model, aid)
            assert len(row) <= 3
            counts = [count for _, count in row]
            assert counts == sorted(counts, reverse=True)

    def test_tight_budget_never_recommends_activity(self, foodmart_model):
        labels = sorted(foodmart_model.action_labels())[:5]
        activity = foodmart_model.encode_activity(labels)
        ranked = PrunedBreadthStrategy(budget=2).rank(
            foodmart_model, activity, k=20
        )
        assert not {aid for aid, _ in ranked} & activity


class TestPrunedEngineParity:
    """The CSR kernel and the scalar fallback agree entry for entry."""

    @pytest.mark.parametrize("budget", (1, 2, 5, 10_000))
    def test_engine_matches_scalar_fallback(self, foodmart_model, budget):
        view = CachedModelView(foodmart_model)
        if view.csr_engine() is None:
            pytest.skip("SciPy unavailable")
        strategy = PrunedBreadthStrategy(budget=budget)
        labels = sorted(foodmart_model.action_labels())
        for raw in (labels[:3], labels[5:9], labels[:1]):
            activity = foodmart_model.encode_activity(raw)
            via_engine = strategy.rank(view, activity, k=10)
            via_scalar = strategy.rank(foodmart_model, activity, k=10)
            assert via_engine == via_scalar, f"budget={budget} raw={raw}"


class TestRecallAtK:
    def test_empty_exact_scores_one(self):
        assert recall_at_k([], [(1, 2.0)]) == 1.0

    def test_identical_rankings_score_one(self):
        ranked = [(3, 2.0), (1, 1.0)]
        assert recall_at_k(ranked, ranked) == 1.0

    def test_partial_overlap(self):
        exact = [(1, 3.0), (2, 2.0), (3, 1.0), (4, 1.0)]
        approx = [(1, 3.0), (3, 1.0), (9, 0.5), (8, 0.25)]
        assert recall_at_k(exact, approx) == 0.5

    def test_recommendation_list_inputs(self):
        exact = RecommendationList(
            strategy="breadth",
            items=(ScoredAction("x", 2.0), ScoredAction("y", 1.0)),
            activity=frozenset(),
        )
        approx = RecommendationList(
            strategy="breadth_pruned",
            items=(ScoredAction("x", 2.0), ScoredAction("z", 1.0)),
            activity=frozenset(),
        )
        assert recall_at_k(exact, approx) == 0.5
