"""Integration tests: the service's debug surface and OpenMetrics scrape.

Covers the PR's acceptance criteria end to end: a slow request shows up in
``GET /debug/slow`` with a span tree containing all four pipeline stage
spans; ``GET /debug/vars`` reports span-buffer occupancy and the per-stage
breakdown; the ``/debug/profile`` lifecycle answers 409/404/400 on misuse;
and ``GET /metrics`` under ``Accept: application/openmetrics-text`` emits
a valid OpenMetrics 1.0 exposition whose histogram buckets carry
request-id exemplars (validated by a hand-written grammar checker — the
environment has no prometheus_client to parse with).
"""

from __future__ import annotations

import json
import re
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.core import AssociationGoalModel
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import STAGES, StageProfiler
from repro.obs.tracing import Tracer
from repro.service import RecommenderService


@pytest.fixture
def service(request):
    """A service with a zero slow-threshold so every request is logged."""
    registry = MetricsRegistry()
    tracer = Tracer()
    profiler = StageProfiler()
    previous_registry = obs.set_registry(registry)
    previous_tracer = obs.set_tracer(tracer)
    previous_profiler = obs.set_profiler(profiler)
    model = AssociationGoalModel.from_pairs(
        [
            ("olivier salad", {"potatoes", "carrots", "pickles"}),
            ("mashed potatoes", {"potatoes", "nutmeg", "butter"}),
            ("pan-fried carrots", {"carrots", "nutmeg", "oil"}),
        ]
    )
    server = RecommenderService(
        model, port=0, slow_threshold_seconds=0.0
    ).start()

    def teardown():
        server.stop()
        obs.disable()
        obs.set_registry(previous_registry)
        obs.set_tracer(previous_tracer)
        obs.set_profiler(previous_profiler)

    request.addfinalizer(teardown)
    return server


def call(service, path, payload=None, method=None, headers=None):
    """Return ``(status, body, response_headers)`` for one request."""
    url = f"http://127.0.0.1:{service.port}{path}"
    data = json.dumps(payload).encode() if payload is not None else None
    request_headers = dict(headers or {})
    if data is not None:
        request_headers.setdefault("Content-Type", "application/json")
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data else "GET"),
        headers=request_headers,
    )
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            raw = response.read()
            parsed = (
                json.loads(raw)
                if response.headers.get("Content-Type", "").startswith(
                    "application/json"
                )
                else raw.decode("utf-8")
            )
            return response.status, parsed, dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def span_names(span):
    """Every span name in one tree, preorder."""
    yield span["name"]
    for child in span["children"]:
        yield from span_names(child)


def wait_for(fetch, predicate, timeout=5.0):
    """Poll ``fetch()`` until ``predicate`` accepts it; return the value.

    The service writes its response *before* the handler thread closes the
    request's root span and runs the slow-log/profiler accounting, so a
    client can observe its own response a moment before the introspection
    surfaces it — the follow-up read has to poll briefly.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = fetch()
        if predicate(value):
            return value
        if time.monotonic() >= deadline:
            return value
        time.sleep(0.01)


class TestDebugSlow:
    def test_slow_request_carries_all_four_stage_spans(self, service):
        status, _, headers = call(
            service, "/recommend", {"activity": ["potatoes"], "k": 3}
        )
        assert status == 200
        request_id = headers["X-Request-Id"]

        body = wait_for(
            lambda: call(service, "/debug/slow")[1],
            lambda b: any(
                e["request_id"] == request_id for e in b["requests"]
            ),
        )
        assert body["threshold_seconds"] == 0.0
        by_id = {entry["request_id"]: entry for entry in body["requests"]}
        entry = by_id[request_id]
        assert entry["endpoint"] == "/recommend"
        assert entry["method"] == "POST"
        assert entry["status"] == 200
        assert entry["seconds"] >= 0
        (root,) = entry["spans"]
        assert root["name"] == "http.request"
        assert root["attributes"]["status"] == 200
        names = set(span_names(root))
        assert set(STAGES) <= names, f"missing stages in {sorted(names)}"
        assert "recommend" in names

    def test_log_is_ordered_slowest_first(self, service):
        for _ in range(3):
            call(service, "/health")
        body = wait_for(
            lambda: call(service, "/debug/slow")[1],
            lambda b: len(b["requests"]) >= 3,
        )
        seconds = [entry["seconds"] for entry in body["requests"]]
        assert seconds == sorted(seconds, reverse=True)
        assert body["count"] == len(body["requests"])

    def test_debug_routes_are_not_logged_as_slow(self, service):
        call(service, "/debug/vars")
        _, body, _ = call(service, "/debug/slow")
        endpoints = {entry["endpoint"] for entry in body["requests"]}
        # /debug/* requests themselves go through the same accounting...
        # but the introspection traffic must not hide real requests: the
        # log keeps the slowest, and all entries carry full span trees.
        for entry in body["requests"]:
            assert entry["spans"][0]["name"] == "http.request"
        assert "/debug/slow" not in endpoints  # the snapshot precedes itself


class TestDebugVars:
    def test_snapshot_shape_and_stage_breakdown(self, service):
        call(service, "/recommend", {"activity": ["potatoes"], "k": 3})
        body = wait_for(
            lambda: call(service, "/debug/vars")[1],
            lambda b: b["stages"]["rank"]["count"] >= 1,
        )
        for key in (
            "version", "uptime_seconds", "generation", "implementations",
            "inflight_requests", "caches", "span_buffer", "slow_log",
            "profile", "stages", "flags", "telemetry",
        ):
            assert key in body, f"missing {key}"
        assert body["implementations"] == 3
        assert body["generation"] == 0
        # The /debug/vars request itself is in flight while the snapshot
        # is taken.
        assert body["inflight_requests"] >= 1
        assert set(body["stages"]) == set(STAGES)
        assert body["stages"]["rank"]["count"] >= 1
        assert body["stages"]["rank"]["p95_seconds"] >= 0
        assert body["flags"] == {
            "metrics": True, "tracing": True,
            "exemplars": True, "trace_detail": True, "quality": True,
        }
        # No --telemetry-dir on this fixture: the recorder is off, and the
        # span buffer reports its dropped count alongside occupancy.
        assert body["telemetry"] == {"enabled": False}
        assert body["span_buffer"]["dropped"] == 0

    def test_span_buffer_occupancy_tracks_traffic(self, service):
        _, before, _ = call(service, "/debug/vars")
        for _ in range(5):
            call(service, "/health")
        after = wait_for(
            lambda: call(service, "/debug/vars")[1],
            lambda b: (
                b["span_buffer"]["occupancy"]
                >= before["span_buffer"]["occupancy"] + 5
            ),
        )
        assert after["span_buffer"]["capacity"] == before["span_buffer"]["capacity"]
        assert (
            after["span_buffer"]["occupancy"]
            >= before["span_buffer"]["occupancy"] + 5
        )
        assert after["span_buffer"]["occupancy"] <= after["span_buffer"]["capacity"]


class TestDebugProfile:
    def test_lifecycle_with_conflict_and_missing(self, service):
        status, body, _ = call(service, "/debug/profile", method="POST")
        assert (status, body) == (200, {"profiling": True})

        status, body, _ = call(service, "/debug/profile", method="POST")
        assert status == 409
        assert set(body) == {"error", "detail"}

        _, vars_body, _ = call(service, "/debug/vars")
        assert vars_body["profile"]["active"] is True

        call(service, "/recommend", {"activity": ["carrots"], "k": 2})
        status, report, _ = call(
            service, "/debug/profile?sort=tottime&limit=10", method="DELETE"
        )
        assert status == 200
        assert report.startswith("# profiled calls:")

        status, body, _ = call(service, "/debug/profile", method="DELETE")
        assert status == 404
        assert set(body) == {"error", "detail"}

    def test_stop_with_bad_query_is_400(self, service):
        call(service, "/debug/profile", method="POST")
        status, body, _ = call(
            service, "/debug/profile?sort=bogus", method="DELETE"
        )
        assert status == 400
        status, body, _ = call(
            service, "/debug/profile?limit=0", method="DELETE"
        )
        assert status == 400
        # The session survived both rejected stops.
        status, _, _ = call(service, "/debug/profile", method="DELETE")
        assert status == 200

    def test_profile_active_gauge_follows_the_session(self, service):
        call(service, "/debug/profile", method="POST")
        _, text, _ = call(service, "/metrics")
        assert "repro_profile_active 1" in text
        call(service, "/debug/profile", method="DELETE")
        _, text, _ = call(service, "/metrics")
        assert "repro_profile_active 0" in text


# ----------------------------------------------------------------------
# OpenMetrics validity
# ----------------------------------------------------------------------

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABELS = r"\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\}"
_NUMBER = r"(?:[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)|\+Inf|-Inf|NaN)"
_SAMPLE_LINE = re.compile(
    rf"^(?P<name>{_METRIC_NAME})(?P<labels>{_LABELS})? (?P<value>{_NUMBER})"
    rf"(?P<exemplar> # \{{trace_id=\"[^\"]*\"\}} {_NUMBER} {_NUMBER})?$"
)
_TYPE_LINE = re.compile(
    rf"^# TYPE (?P<name>{_METRIC_NAME}) (?P<kind>counter|gauge|histogram)$"
)
_HELP_LINE = re.compile(rf"^# HELP (?P<name>{_METRIC_NAME}) .*$")


def parse_openmetrics(text):
    """Validate an OpenMetrics 1.0 exposition; return the parsed samples.

    A deliberately strict hand-written checker (no prometheus_client in
    this environment): every line must be a TYPE/HELP line, a sample line,
    or the final ``# EOF``; samples must belong to a declared family;
    exemplars may only ride on histogram ``_bucket`` samples.
    """
    lines = text.split("\n")
    assert lines[-1] == "", "exposition must end with a newline"
    lines = lines[:-1]
    assert lines[-1] == "# EOF", "OpenMetrics must terminate with # EOF"
    families = {}
    samples = []
    for line in lines[:-1]:
        type_match = _TYPE_LINE.match(line)
        if type_match:
            name = type_match.group("name")
            assert name not in families, f"duplicate TYPE for {name}"
            families[name] = type_match.group("kind")
            continue
        if _HELP_LINE.match(line):
            assert _HELP_LINE.match(line).group("name") in families, (
                f"HELP before TYPE: {line!r}"
            )
            continue
        match = _SAMPLE_LINE.match(line)
        assert match, f"malformed OpenMetrics line: {line!r}"
        name = match.group("name")
        family = next(
            (
                declared
                for declared in families
                if name == declared
                or name.startswith(declared + "_")
            ),
            None,
        )
        assert family is not None, f"sample {name!r} has no TYPE metadata"
        kind = families[family]
        if match.group("exemplar"):
            assert kind == "histogram" and name.endswith("_bucket"), (
                f"exemplar on non-bucket sample: {line!r}"
            )
        if kind == "histogram" and name.endswith("_bucket"):
            assert 'le="' in (match.group("labels") or ""), (
                f"bucket without le label: {line!r}"
            )
        samples.append(
            (name, match.group("labels") or "", match.group("value"),
             match.group("exemplar"))
        )
    return families, samples


class TestOpenMetricsScrape:
    def test_negotiated_exposition_is_valid_and_carries_exemplars(
        self, service
    ):
        request_id = "exemplar-test-0001"
        status, _, _ = call(
            service, "/recommend", {"activity": ["potatoes"], "k": 3},
            headers={"X-Request-Id": request_id},
        )
        assert status == 200

        def bucket_has_exemplar(result):
            # The request's own latency is recorded *after* its response is
            # written, so poll until the http histogram's bucket carries
            # this request's exemplar (the id may surface earlier on the
            # recommend-latency histogram, observed mid-request).
            return any(
                line.startswith("repro_http_request_seconds_bucket")
                and f'trace_id="{request_id}"' in line
                for line in result[1].splitlines()
            )

        status, text, headers = wait_for(
            lambda: call(
                service, "/metrics",
                headers={"Accept": "application/openmetrics-text"},
            ),
            bucket_has_exemplar,
        )
        assert status == 200
        assert headers["Content-Type"].startswith(
            "application/openmetrics-text"
        )
        families, samples = parse_openmetrics(text)
        assert families["repro_http_request_seconds"] == "histogram"
        # Counter metadata drops the _total suffix per the spec.
        assert "repro_http_requests" in families
        exemplar_samples = [
            (name, labels, exemplar)
            for name, labels, _value, exemplar in samples
            if exemplar is not None
        ]
        assert exemplar_samples, "no exemplars rendered"
        assert any(
            name == "repro_http_request_seconds_bucket"
            and f'trace_id="{request_id}"' in exemplar
            for name, _labels, exemplar in exemplar_samples
        ), "the recommend request's id never surfaced as an exemplar"

    def test_default_scrape_stays_prometheus_0_0_4(self, service):
        call(service, "/recommend", {"activity": ["potatoes"], "k": 3})
        status, text, headers = call(service, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "# EOF" not in text
        assert "# {" not in text  # exemplars are OpenMetrics-only

    def test_quality_families_are_valid_openmetrics(self, service):
        status, _, _ = call(
            service, "/recommend", {"activity": ["potatoes"], "k": 3}
        )
        assert status == 200
        status, text, _ = wait_for(
            lambda: call(
                service, "/metrics",
                headers={"Accept": "application/openmetrics-text"},
            ),
            lambda result: "repro_slo_availability_burn_rate" in result[1],
        )
        assert status == 200
        families, _samples = parse_openmetrics(text)
        # Counter metadata drops the _total suffix per the spec.
        assert families["repro_quality_requests"] == "counter"
        assert families["repro_quality_top_score"] == "histogram"
        assert families["repro_quality_oov_ratio"] == "histogram"
        assert families["repro_quality_catalog_coverage_ratio"] == "gauge"
        assert families["repro_quality_model_generation"] == "gauge"
        assert families["repro_drift_score"] == "gauge"
        assert families["repro_drift_alert"] == "gauge"
        assert families["repro_drift_baseline_generation"] == "gauge"
        assert families["repro_slo_availability_burn_rate"] == "gauge"
        assert families["repro_slo_latency_burn_rate"] == "gauge"


class TestDebugQuality:
    def test_snapshot_shape_after_traffic(self, service):
        status, _, _ = call(
            service, "/recommend", {"activity": ["potatoes"], "k": 3}
        )
        assert status == 200
        body = wait_for(
            lambda: call(service, "/debug/quality")[1],
            lambda b: b["quality"]["oov"]["requests"] >= 1,
        )
        assert set(body) == {"quality", "slo", "telemetry"}
        quality = body["quality"]
        assert quality["strategies"]["breadth"]["requests"] >= 1
        assert quality["strategies"]["breadth"]["empty"] == 0
        assert quality["oov"]["last"] == 0.0
        assert quality["coverage"]["covered_actions"] >= 1
        assert quality["coverage"]["catalog_actions"] == 6
        drift = quality["drift"]
        assert drift["baseline_generation"] == 0
        assert drift["baseline_actions"] == 6
        assert drift["alerting"] is False
        slo = body["slo"]
        assert slo["errors"] == 0
        assert slo["availability_burn_rate"] == 0.0
        assert body["telemetry"] == {"enabled": False}

    def test_oov_and_generation_track_traffic(self, service):
        call(
            service, "/recommend",
            {"activity": ["potatoes", "no-such-action"], "k": 3},
        )
        body = wait_for(
            lambda: call(service, "/debug/quality")[1],
            lambda b: b["quality"]["oov"]["last"] > 0,
        )
        assert body["quality"]["oov"]["last"] == 0.5
        # A hot-reload bumps the generation and refreezes the baseline.
        call(
            service, "/model/implementations",
            {"implementations": [{"goal": "soup", "actions": ["water"]}]},
            method="PUT",
        )
        call(service, "/recommend", {"activity": ["water"], "k": 3})
        body = wait_for(
            lambda: call(service, "/debug/quality")[1],
            lambda b: b["quality"]["generation"] == 1,
        )
        assert body["quality"]["drift"]["baseline_generation"] == 1
        assert body["quality"]["drift"]["baseline_actions"] == 7

    def test_method_not_allowed(self, service):
        status, body, headers = call(
            service, "/debug/quality", method="DELETE"
        )
        assert status == 405
        assert set(body) == {"error", "detail"}
        assert headers["Allow"] == "GET, HEAD"


class TestTelemetryService:
    def test_recorder_surfaces_in_debug_and_metrics(self, tmp_path):
        registry = MetricsRegistry()
        previous_registry = obs.set_registry(registry)
        model = AssociationGoalModel.from_pairs(
            [("olivier salad", {"potatoes", "carrots", "pickles"})]
        )
        server = RecommenderService(
            model, port=0, telemetry_dir=tmp_path, telemetry_sample_rate=1.0
        ).start()
        try:
            status, _, _ = call(
                server, "/recommend", {"activity": ["potatoes"], "k": 2}
            )
            assert status == 200
            body = wait_for(
                lambda: call(server, "/debug/quality")[1],
                lambda b: b["telemetry"]["enqueued"] >= 1,
            )
            telemetry = body["telemetry"]
            assert telemetry["directory"] == str(tmp_path)
            assert telemetry["sample_rate"] == 1.0
            assert telemetry["enqueued"] >= 1
            _, vars_body, _ = call(server, "/debug/vars")
            assert vars_body["telemetry"]["directory"] == str(tmp_path)
            assert server.recorder.flush()
            status, text, _ = call(
                server, "/metrics",
                headers={"Accept": "application/openmetrics-text"},
            )
            families, _samples = parse_openmetrics(text)
            assert families["repro_telemetry_records"] == "counter"
            assert families["repro_telemetry_backlog"] == "gauge"
        finally:
            server.stop()
            obs.disable()
            obs.set_registry(previous_registry)
        records = list(obs.iter_telemetry_records(tmp_path))
        assert any(r["kind"] == "request" for r in records)
        # stop() closed the recorder; a second close must be a no-op.
        server.recorder.close()
