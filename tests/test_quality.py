"""The quality monitor, drift detector and SLO tracker.

Covers the PR's determinism acceptance criterion: the drift detector is a
pure function of (baseline, observed label stream) — the same seeded
stream replayed against the same baseline produces **bit-identical** PSI
scores, with the injectable fake clock only stamping alert events.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import obs
from repro.core import AssociationGoalModel, GoalRecommender
from repro.obs.metrics import MetricsRegistry
from repro.obs.quality import (
    BaselineProfile,
    DriftDetector,
    QualityMonitor,
    SLOTracker,
    population_stability_index,
)


@pytest.fixture
def registry():
    """An isolated registry with metrics enabled (quality flag off).

    The quality *flag* stays off so ``GoalRecommender.recommend`` does not
    additionally feed the process-wide monitor — these tests drive their
    own monitor instances explicitly, and both would share this registry.
    """
    registry = MetricsRegistry()
    previous = obs.set_registry(registry)
    obs.enable(metrics=True, tracing=False)
    yield registry
    obs.disable()
    obs.set_registry(previous)


def gauge_value(registry, name):
    assert name in registry.names(), f"{name} not in registry"
    return registry.gauge(name).value


class TestPSI:
    def test_identical_distributions_score_zero(self):
        dist = {"a": 0.5, "b": 0.3, "c": 0.2}
        assert population_stability_index(dist, dist) == 0.0

    def test_shifted_distribution_scores_positive(self):
        baseline = {"a": 0.5, "b": 0.5}
        live = {"a": 0.9, "b": 0.1}
        score = population_stability_index(baseline, live)
        # Hand-computed: (0.9-0.5)ln(0.9/0.5) + (0.1-0.5)ln(0.1/0.5)
        expected = 0.4 * math.log(0.9 / 0.5) + (-0.4) * math.log(0.1 / 0.5)
        assert score == pytest.approx(expected)
        assert score > 0

    def test_oov_mass_is_penalized(self):
        baseline = {"a": 1.0}
        live = {"a": 0.5, "never-seen": 0.5}
        with_oov = population_stability_index(baseline, live)
        without = population_stability_index(baseline, {"a": 0.5})
        assert with_oov > without

    def test_sorted_iteration_makes_the_sum_order_independent(self):
        baseline = {f"a{i}": 1 / 50 for i in range(50)}
        live_forward = {f"a{i}": (i + 1) / sum(range(1, 51)) for i in range(50)}
        live_reversed = dict(reversed(list(live_forward.items())))
        assert population_stability_index(
            baseline, live_forward
        ) == population_stability_index(baseline, live_reversed)


class TestBaselineProfile:
    def test_from_counts_normalizes(self):
        profile = BaselineProfile.from_counts({"a": 3, "b": 1}, generation=2)
        assert profile.distribution == {"a": 0.75, "b": 0.25}
        assert profile.generation == 2

    def test_from_counts_empty_is_empty(self):
        assert BaselineProfile.from_counts({}).distribution == {}

    def test_from_model_uses_action_frequencies(self, recipe_model):
        profile = BaselineProfile.from_model(recipe_model, generation=1)
        assert profile.generation == 1
        assert set(profile.distribution) == {
            "potatoes", "carrots", "pickles", "nutmeg",
            "butter", "oil", "flour", "eggs", "sugar",
        }
        assert sum(profile.distribution.values()) == pytest.approx(1.0)
        # potatoes appears in 2 of 4 implementations, sugar in 1.
        assert (
            profile.distribution["potatoes"]
            > profile.distribution["sugar"]
        )

    def test_from_model_without_frequencies_is_uniform(self):
        class Vocab:
            num_actions = 4

            def action_label(self, aid):
                return f"a{aid}"

        profile = BaselineProfile.from_model(Vocab())
        assert profile.distribution == {
            "a0": 0.25, "a1": 0.25, "a2": 0.25, "a3": 0.25
        }


def feed(detector, stream):
    """Feed a label stream one observation at a time; return all scores."""
    scores = []
    for labels in stream:
        detector.observe(labels)
        scores.append(detector.score())
    return scores


def seeded_stream(seed, n, vocabulary):
    rng = random.Random(seed)
    return [
        sorted(rng.sample(vocabulary, k=rng.randint(1, 3))) for _ in range(n)
    ]


class TestDriftDetector:
    def test_no_baseline_means_no_scoring(self):
        detector = DriftDetector(recompute_every=1)
        detector.observe(["a"])
        assert detector.score() == 0.0
        assert detector.snapshot()["baseline_generation"] is None

    def test_replaying_a_seeded_stream_is_bit_identical(self):
        baseline = BaselineProfile.from_counts(
            {"a": 5, "b": 3, "c": 2, "d": 1}
        )
        stream = seeded_stream(42, 200, ["a", "b", "c", "d", "e", "f"])
        runs = []
        for _ in range(2):
            detector = DriftDetector(
                window_size=64, recompute_every=1, clock=lambda: 0.0
            )
            detector.set_baseline(baseline)
            runs.append(feed(detector, stream))
        assert runs[0] == runs[1]  # bit-identical floats, not approx
        assert any(score != 0.0 for score in runs[0])

    def test_threshold_crossing_raises_alert_and_fires_sink(self, registry):
        events = []
        fake_now = 1234.5
        detector = DriftDetector(
            window_size=16,
            threshold=0.25,
            recompute_every=1,
            clock=lambda: fake_now,
            event_sink=lambda kind, payload: events.append((kind, payload)),
        )
        detector.set_baseline(BaselineProfile.from_counts({"a": 1, "b": 1}))
        # Traffic matching the baseline: no alert.
        for _ in range(8):
            detector.observe(["a", "b"])
        assert detector.snapshot()["alerting"] is False
        # Vocabulary the baseline has never seen: PSI explodes past 0.25.
        for _ in range(16):
            detector.observe(["z"])
        snap = detector.snapshot()
        assert snap["alerting"] is True
        assert snap["alerts"] == 1  # rising edge counted once, not per obs
        assert gauge_value(registry, "repro_drift_alert") == 1.0
        assert gauge_value(registry, "repro_drift_score") == pytest.approx(
            snap["score"], abs=1e-6
        )
        kinds = [kind for kind, _ in events]
        assert kinds == ["drift"]
        payload = events[0][1]
        assert payload["threshold"] == 0.25
        assert payload["baseline_generation"] == 0
        assert payload["score"] >= 0.25

    def test_set_baseline_resets_window_and_alert(self, registry):
        detector = DriftDetector(
            window_size=8, threshold=0.1, recompute_every=1
        )
        detector.set_baseline(BaselineProfile.from_counts({"a": 1}))
        for _ in range(8):
            detector.observe(["z"])
        assert detector.snapshot()["alerting"] is True
        detector.set_baseline(
            BaselineProfile.from_counts({"z": 1}, generation=3)
        )
        snap = detector.snapshot()
        assert snap["alerting"] is False
        assert snap["window"] == 0
        assert snap["score"] == 0.0
        assert snap["baseline_generation"] == 3
        assert (
            gauge_value(registry, "repro_drift_baseline_generation") == 3.0
        )

    def test_recompute_every_amortizes(self):
        detector = DriftDetector(window_size=32, recompute_every=10)
        detector.set_baseline(BaselineProfile.from_counts({"a": 1, "b": 1}))
        for _ in range(9):
            detector.observe(["z"])
        assert detector.score() == 0.0  # not recomputed yet
        detector.observe(["z"])
        assert detector.score() > 0.0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(window_size=0)
        with pytest.raises(ValueError):
            DriftDetector(threshold=0.0)
        with pytest.raises(ValueError):
            DriftDetector(recompute_every=0)


class TestSLOTracker:
    def test_burn_rates_scale_with_the_objective(self, registry):
        tracker = SLOTracker(
            availability_objective=0.99,
            latency_objective_seconds=0.1,
            latency_target=0.9,
            window_size=100,
        )
        for _ in range(99):
            tracker.observe(False, 0.01)
        tracker.observe(True, 0.5)  # one error, also slow
        snap = tracker.snapshot()
        # 1% errors against a 99% objective burns exactly at rate 1.
        assert snap["availability_burn_rate"] == pytest.approx(1.0)
        # 1% slow against a 10% tolerance burns at 0.1.
        assert snap["latency_burn_rate"] == pytest.approx(0.1)
        assert gauge_value(
            registry, "repro_slo_availability_burn_rate"
        ) == pytest.approx(1.0)

    def test_window_eviction_forgets_old_outcomes(self):
        tracker = SLOTracker(window_size=4)
        for _ in range(4):
            tracker.observe(True, 1.0)
        assert tracker.snapshot()["errors"] == 4
        for _ in range(4):
            tracker.observe(False, 0.0)
        snap = tracker.snapshot()
        assert snap["errors"] == 0
        assert snap["availability_burn_rate"] == 0.0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SLOTracker(availability_objective=1.0)
        with pytest.raises(ValueError):
            SLOTracker(latency_target=0.0)
        with pytest.raises(ValueError):
            SLOTracker(latency_objective_seconds=0.0)
        with pytest.raises(ValueError):
            SLOTracker(window_size=0)


class TestQualityMonitor:
    def test_observe_recommend_counts_per_strategy(
        self, registry, recipe_model
    ):
        monitor = QualityMonitor(score_threshold=0.05)
        recommender = GoalRecommender(recipe_model)
        encoded = recipe_model.encode_activity({"potatoes", "carrots"})
        result = recommender.recommend({"potatoes", "carrots"}, k=3)
        monitor.observe_recommend("breadth", recipe_model, encoded, result)
        empty = recommender.recommend({"unknown-action"}, k=3)
        monitor.observe_recommend("breadth", recipe_model, frozenset(), empty)
        snap = monitor.snapshot()
        stats = snap["strategies"]["breadth"]
        assert stats["requests"] == 2
        assert stats["empty"] == 1
        assert stats["last_top_score"] is None  # the empty one came last
        rendered = registry.render()
        assert (
            'repro_quality_requests_total{strategy="breadth"} 2' in rendered
        )
        assert 'repro_quality_empty_total{strategy="breadth"} 1' in rendered

    def test_below_threshold_counting(self, registry, recipe_model):
        monitor = QualityMonitor(score_threshold=10.0)  # everything is below
        recommender = GoalRecommender(recipe_model)
        encoded = recipe_model.encode_activity({"potatoes"})
        result = recommender.recommend({"potatoes"}, k=3)
        monitor.observe_recommend("breadth", recipe_model, encoded, result)
        assert (
            monitor.snapshot()["strategies"]["breadth"]["below_threshold"]
            == 1
        )

    def test_space_size_sampling_is_deterministic(
        self, registry, recipe_model
    ):
        monitor = QualityMonitor(space_sample_every=2)
        recommender = GoalRecommender(recipe_model)
        encoded = recipe_model.encode_activity({"potatoes"})
        result = recommender.recommend({"potatoes"}, k=3)
        for _ in range(4):
            monitor.observe_recommend(
                "breadth", recipe_model, encoded, result
            )
        rendered = registry.render()
        # Observations 2 and 4 were sampled: each records is/gs/as once.
        assert 'repro_quality_space_size_items_count{space="is"} 2' in rendered
        assert 'repro_quality_space_size_items_count{space="gs"} 2' in rendered
        assert 'repro_quality_space_size_items_count{space="as"} 2' in rendered

    def test_observe_traffic_oov_and_coverage(self, registry, recipe_model):
        monitor = QualityMonitor(window_size=2)
        recommender = GoalRecommender(recipe_model)
        result = recommender.recommend({"potatoes"}, k=3)
        monitor.observe_traffic(
            ["potatoes", "bogus"], recipe_model, result, generation=5
        )
        snap = monitor.snapshot()
        assert snap["oov"] == {"last": 0.5, "mean": 0.5, "requests": 1}
        assert snap["generation"] == 5
        assert snap["coverage"]["catalog_actions"] == 9
        assert snap["coverage"]["covered_actions"] == len(result.items)
        # The coverage window evicts: after two empty results the early
        # recommendations age out.
        empty = recommender.recommend({"bogus"}, k=3)
        monitor.observe_traffic(["bogus"], recipe_model, empty)
        monitor.observe_traffic(["bogus"], recipe_model, empty)
        assert monitor.snapshot()["coverage"]["covered_actions"] == 0

    def test_traffic_feeds_the_drift_window(self, recipe_model):
        drift = DriftDetector(window_size=8, recompute_every=1)
        monitor = QualityMonitor(drift=drift)
        drift.set_baseline(BaselineProfile.from_model(recipe_model))
        recommender = GoalRecommender(recipe_model)
        result = recommender.recommend({"potatoes"}, k=3)
        monitor.observe_traffic(["potatoes"], recipe_model, result)
        assert drift.snapshot()["window"] == 1

    def test_reset_clears_everything(self, recipe_model):
        monitor = QualityMonitor()
        recommender = GoalRecommender(recipe_model)
        result = recommender.recommend({"potatoes"}, k=3)
        monitor.observe_traffic(["potatoes"], recipe_model, result)
        monitor.observe_recommend(
            "breadth",
            recipe_model,
            recipe_model.encode_activity({"potatoes"}),
            result,
        )
        monitor.reset()
        snap = monitor.snapshot()
        assert snap["strategies"] == {}
        assert snap["observations"] == 0
        assert snap["oov"]["requests"] == 0

    def test_set_event_sink_wires_the_drift_detector(self):
        monitor = QualityMonitor()
        events = []
        sink = lambda kind, payload: events.append(kind)  # noqa: E731
        monitor.set_event_sink(sink)
        assert monitor.drift.event_sink is sink

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            QualityMonitor(window_size=0)
        with pytest.raises(ValueError):
            QualityMonitor(space_sample_every=0)


class TestRecommenderHook:
    def test_recommend_feeds_the_global_monitor(self, registry, recipe_model):
        obs.enable(metrics=True, tracing=False, quality=True)
        previous = obs.set_quality_monitor(QualityMonitor())
        try:
            recommender = GoalRecommender(recipe_model)
            recommender.recommend({"potatoes"}, k=3)
            snap = obs.get_quality_monitor().snapshot()
            assert snap["strategies"]["breadth"]["requests"] == 1
        finally:
            obs.set_quality_monitor(previous)

    def test_disabled_quality_records_nothing(self, recipe_model):
        obs.disable()
        previous = obs.set_quality_monitor(QualityMonitor())
        try:
            GoalRecommender(recipe_model).recommend({"potatoes"}, k=3)
            assert obs.get_quality_monitor().snapshot()["observations"] == 0
        finally:
            obs.set_quality_monitor(previous)
