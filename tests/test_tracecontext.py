"""W3C trace-context propagation: parsing, echo, stamping, lookup.

Unit tests pin the ``traceparent`` grammar (version ``ff`` and all-zero
ids rejected, higher versions accepted) and the ContextVar scope.
Integration tests drive a live service: a valid incoming header pins the
trace id through to the response echo, span tree, slow log and flight
recorder; ``GET /debug/trace/<key>`` joins them back by request id *or*
trace id; and — the regression the resilience layer demands — 429 shed,
503 drain and 504 deadline responses all carry ``X-Request-Id`` and
``traceparent``, because every response flows through the same header
path.
"""

from __future__ import annotations

import json
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.core import AssociationGoalModel
from repro.obs.export import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.quality import BaselineProfile, DriftDetector
from repro.resilience import (
    FaultInjector,
    FaultRule,
    clear_faults,
    install_faults,
)
from repro.service import RecommenderService

TRACE_ID = "ab" * 16
PARENT_ID = "cd" * 8
TRACEPARENT_RE = re.compile(r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")


# ----------------------------------------------------------------------
# Grammar
# ----------------------------------------------------------------------


class TestParseTraceparent:
    def test_valid_header_round_trips(self):
        context = obs.parse_traceparent(f"00-{TRACE_ID}-{PARENT_ID}-01")
        assert context is not None
        assert context.trace_id == TRACE_ID
        assert context.parent_id == PARENT_ID
        assert context.flags == "01"

    def test_flags_are_preserved_verbatim(self):
        context = obs.parse_traceparent(f"00-{TRACE_ID}-{PARENT_ID}-00")
        assert context.flags == "00"

    def test_higher_versions_are_accepted(self):
        # Forward-compatibility rule: unknown versions parse as long as
        # the 00-shaped fields do.
        assert obs.parse_traceparent(f"42-{TRACE_ID}-{PARENT_ID}-01")

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        f"ff-{TRACE_ID}-{PARENT_ID}-01",            # version ff forbidden
        f"00-{'0' * 32}-{PARENT_ID}-01",            # all-zero trace id
        f"00-{TRACE_ID}-{'0' * 16}-01",             # all-zero parent id
        f"00-{TRACE_ID.upper()}-{PARENT_ID}-01",    # uppercase hex
        f"00-{TRACE_ID[:-2]}-{PARENT_ID}-01",       # short trace id
        f"00-{TRACE_ID}-{PARENT_ID}",               # missing flags
    ])
    def test_invalid_headers_return_none(self, header):
        assert obs.parse_traceparent(header) is None

    def test_format_parses_back(self):
        rendered = obs.format_traceparent(TRACE_ID, PARENT_ID, "01")
        context = obs.parse_traceparent(rendered)
        assert (context.trace_id, context.parent_id) == (TRACE_ID, PARENT_ID)

    def test_fresh_ids_are_wellformed_and_distinct(self):
        trace_ids = {obs.new_trace_id() for _ in range(32)}
        span_ids = {obs.new_span_id() for _ in range(32)}
        assert len(trace_ids) == 32 and len(span_ids) == 32
        assert all(re.fullmatch(r"[0-9a-f]{32}", t) for t in trace_ids)
        assert all(re.fullmatch(r"[0-9a-f]{16}", s) for s in span_ids)

    def test_context_scope(self):
        assert obs.current_trace_id() is None
        with obs.trace_context(TRACE_ID):
            assert obs.current_trace_id() == TRACE_ID
        assert obs.current_trace_id() is None


# ----------------------------------------------------------------------
# Stamping: flight recorder and drift events
# ----------------------------------------------------------------------


class TestTraceStamping:
    def test_flight_recorder_request_carries_trace_id(self, tmp_path):
        recorder = FlightRecorder(tmp_path, sample_rate=1.0)
        recorder.record_request(
            "req-1", "/recommend", "POST", 200, 0.01,
            trace_id=TRACE_ID,
        )
        assert recorder.flush()
        recorder.close()
        (record,) = obs.iter_telemetry_records(tmp_path)
        assert record["trace_id"] == TRACE_ID
        assert record["request_id"] == "req-1"

    def test_drift_event_stamps_request_and_trace_ids(self):
        events = []
        detector = DriftDetector(
            window_size=8, threshold=1e-9, recompute_every=1,
            event_sink=lambda kind, payload: events.append((kind, payload)),
        )
        detector.set_baseline(BaselineProfile.from_counts({"a": 1.0}))
        with obs.request_context("req-drift"), obs.trace_context(TRACE_ID):
            detector.observe(["b"])  # 100% unseen labels: PSI > 0
        assert events, "drift alert never fired"
        kind, payload = events[0]
        assert kind == "drift"
        assert payload["request_id"] == "req-drift"
        assert payload["trace_id"] == TRACE_ID
        assert payload["score"] > 0


# ----------------------------------------------------------------------
# Live service
# ----------------------------------------------------------------------


PAIRS = [
    ("olivier salad", {"potatoes", "carrots", "pickles"}),
    ("mashed potatoes", {"potatoes", "nutmeg", "butter"}),
    ("pan-fried carrots", {"carrots", "nutmeg", "oil"}),
]
RECOMMEND = {"activity": ["potatoes", "carrots"], "k": 5}


@pytest.fixture
def make_service(request):
    previous_registry = obs.set_registry(MetricsRegistry())
    started = []

    def factory(**kwargs):
        model = AssociationGoalModel.from_pairs(PAIRS)
        kwargs.setdefault("slow_threshold_seconds", 0.0)
        server = RecommenderService(model, port=0, **kwargs).start()
        started.append(server)
        return server

    def teardown():
        clear_faults()
        for server in started:
            server.stop()
        obs.disable()
        obs.set_registry(previous_registry)

    request.addfinalizer(teardown)
    return factory


def call(service, path, payload=None, method=None, headers=None):
    url = f"http://127.0.0.1:{service.port}{path}"
    data = json.dumps(payload).encode() if payload is not None else None
    request_headers = dict(headers or {})
    if data is not None:
        request_headers.setdefault("Content-Type", "application/json")
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data else "GET"),
        headers=request_headers,
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def wait_for(fetch, predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while True:
        value = fetch()
        if predicate(value):
            return value
        if time.monotonic() >= deadline:
            return value
        time.sleep(0.02)


class TestTraceparentEcho:
    def test_incoming_trace_id_is_pinned_and_echoed(self, make_service):
        service = make_service()
        incoming = f"00-{TRACE_ID}-{PARENT_ID}-01"
        status, headers, _ = call(
            service, "/recommend", RECOMMEND,
            headers={"traceparent": incoming},
        )
        assert status == 200
        match = TRACEPARENT_RE.match(headers["traceparent"])
        assert match, headers["traceparent"]
        trace_id, span_id, flags = match.groups()
        assert trace_id == TRACE_ID       # pinned
        assert span_id != PARENT_ID       # the span id names *this* hop
        assert flags == "01"

    def test_incoming_flags_are_preserved(self, make_service):
        service = make_service()
        _, headers, _ = call(
            service, "/health",
            headers={"traceparent": f"00-{TRACE_ID}-{PARENT_ID}-00"},
        )
        assert headers["traceparent"].endswith("-00")

    def test_absent_or_invalid_header_mints_fresh_trace(self, make_service):
        service = make_service()
        _, headers, _ = call(service, "/health")
        match = TRACEPARENT_RE.match(headers["traceparent"])
        assert match
        first_trace = match.group(1)
        assert first_trace != "0" * 32

        _, headers, _ = call(
            service, "/health", headers={"traceparent": "not-a-traceparent"},
        )
        match = TRACEPARENT_RE.match(headers["traceparent"])
        assert match
        assert match.group(1) != TRACE_ID
        assert match.group(1) != first_trace

    def test_request_id_still_echoed_alongside(self, make_service):
        service = make_service()
        _, headers, _ = call(
            service, "/health", headers={"X-Request-Id": "my-req-7"},
        )
        assert headers["X-Request-Id"] == "my-req-7"
        assert TRACEPARENT_RE.match(headers["traceparent"])


class TestDebugTraceLookup:
    def test_lookup_by_request_id_and_trace_id(self, make_service):
        service = make_service()
        status, headers, _ = call(
            service, "/recommend", RECOMMEND,
            headers={
                "X-Request-Id": "lookup-req-1",
                "traceparent": f"00-{TRACE_ID}-{PARENT_ID}-01",
            },
        )
        assert status == 200

        def fetch(key):
            return call(service, f"/debug/trace/{key}")

        def settled(result):
            # The lookup answers 200 as soon as either store has the
            # request, but span retention and the slow-log append land
            # separately after the response is written — wait for both.
            if result[0] != 200:
                return False
            found = json.loads(result[2])
            return bool(found["spans"]) and bool(found["slow"])

        status, _, raw = wait_for(lambda: fetch("lookup-req-1"), settled)
        assert status == 200
        body = json.loads(raw)
        assert body["key"] == "lookup-req-1"
        assert body["trace_id"] == TRACE_ID
        assert body["spans"], "no span tree retained"
        root = body["spans"][0]
        assert root["name"] == "http.request"
        assert root["attributes"]["trace_id"] == TRACE_ID
        assert root["attributes"]["request_id"] == "lookup-req-1"
        # Slow threshold is zero: the request is in the slow log too,
        # stamped with the same trace id.
        assert body["slow"]
        assert body["slow"][0]["trace_id"] == TRACE_ID

        # The same record is reachable by trace id.
        status, _, raw = wait_for(
            lambda: fetch(TRACE_ID), lambda result: result[0] == 200,
        )
        assert status == 200
        by_trace = json.loads(raw)
        assert by_trace["trace_id"] == TRACE_ID
        assert any(
            span["attributes"]["request_id"] == "lookup-req-1"
            for span in by_trace["spans"]
        )

    def test_unknown_key_is_404(self, make_service):
        service = make_service()
        status, headers, raw = call(service, "/debug/trace/never-seen")
        assert status == 404
        body = json.loads(raw)
        assert "no retained trace" in body["error"]
        # Even the 404 carries both correlation headers.
        assert headers["X-Request-Id"]
        assert TRACEPARENT_RE.match(headers["traceparent"])

    def test_wrong_method_is_405(self, make_service):
        service = make_service()
        status, headers, _ = call(
            service, "/debug/trace/x", method="DELETE"
        )
        assert status == 405
        assert headers["Allow"] == "GET, HEAD"

    def test_recorder_file_carries_trace_id(self, make_service, tmp_path):
        service = make_service(
            telemetry_dir=tmp_path, telemetry_sample_rate=1.0
        )
        status, _, _ = call(
            service, "/recommend", RECOMMEND,
            headers={"traceparent": f"00-{TRACE_ID}-{PARENT_ID}-01"},
        )
        assert status == 200
        wait_for(
            lambda: service.recorder.snapshot()["enqueued"],
            lambda enqueued: enqueued >= 1,
        )
        assert service.recorder.flush()
        records = list(obs.iter_telemetry_records(tmp_path))
        assert any(
            record.get("kind") == "request"
            and record.get("trace_id") == TRACE_ID
            for record in records
        )


# ----------------------------------------------------------------------
# Regression: resilience responses carry both correlation headers
# ----------------------------------------------------------------------


def assert_correlated(headers):
    assert headers["X-Request-Id"]
    assert TRACEPARENT_RE.match(headers.get("traceparent", "")), (
        f"missing/malformed traceparent in {dict(headers)}"
    )


class TestResilienceHeaderEcho:
    def test_429_shed_carries_both_headers(self, make_service):
        service = make_service(
            max_inflight=1, max_queue=0, retry_after_seconds=1.0
        )
        install_faults(
            FaultInjector([FaultRule("model", "latency", delay_ms=400.0)])
        )
        occupant = threading.Thread(
            target=call, args=(service, "/recommend", RECOMMEND)
        )
        occupant.start()
        time.sleep(0.1)  # let the occupant take the only slot
        try:
            shed = [
                call(
                    service, "/recommend", RECOMMEND,
                    headers={
                        "traceparent": f"00-{TRACE_ID}-{PARENT_ID}-01"
                    },
                )
                for _ in range(4)
            ]
        finally:
            occupant.join(10.0)
        assert any(status == 429 for status, _, _ in shed), (
            [status for status, _, _ in shed]
        )
        for status, headers, _ in shed:
            if status != 429:
                continue
            assert_correlated(headers)
            # The shed response still honours the incoming trace id.
            assert headers["traceparent"].startswith(f"00-{TRACE_ID}-")
            assert headers["Retry-After"] == "1"

    def test_503_drain_carries_both_headers(self, make_service):
        service = make_service(retry_after_seconds=3.0)
        with service._inflight_lock:
            service._draining = True
        try:
            status, headers, raw = call(
                service, "/recommend", RECOMMEND,
                headers={"traceparent": f"00-{TRACE_ID}-{PARENT_ID}-01"},
            )
            assert status == 503
            assert json.loads(raw)["error"] == "service is draining"
            assert_correlated(headers)
            assert headers["traceparent"].startswith(f"00-{TRACE_ID}-")
        finally:
            with service._inflight_lock:
                service._draining = False

    def test_504_deadline_carries_both_headers(self, make_service):
        service = make_service()
        install_faults(
            FaultInjector([FaultRule("model", "latency", delay_ms=80.0)])
        )
        status, headers, raw = call(
            service, "/recommend", RECOMMEND,
            headers={
                "X-Request-Deadline-Ms": "20",
                "traceparent": f"00-{TRACE_ID}-{PARENT_ID}-01",
            },
        )
        assert status == 504
        assert json.loads(raw)["error"] == "deadline exceeded"
        assert_correlated(headers)
        assert headers["traceparent"].startswith(f"00-{TRACE_ID}-")
