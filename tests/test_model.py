"""Unit tests for the association-based goal model and its indexes."""

import pytest

from repro.core import AssociationGoalModel, ImplementationLibrary
from repro.exceptions import ModelError, UnknownActionError, UnknownGoalError


class TestConstruction:
    def test_from_pairs_counts(self, figure1_model):
        assert figure1_model.num_goals == 5
        assert figure1_model.num_actions == 6
        assert figure1_model.num_implementations == 5

    def test_empty_library_rejected(self):
        with pytest.raises(ModelError, match="zero implementations"):
            AssociationGoalModel.from_library(ImplementationLibrary())

    def test_mismatched_parallel_lists_rejected(self):
        with pytest.raises(ModelError, match="parallel"):
            AssociationGoalModel(["a"], ["g"], [frozenset({0})], [0, 0])

    def test_empty_implementation_rejected(self):
        with pytest.raises(ModelError, match="empty activity"):
            AssociationGoalModel(["a"], ["g"], [frozenset()], [0])

    def test_duplicate_action_labels_rejected(self):
        with pytest.raises(ModelError, match="duplicate action"):
            AssociationGoalModel(["a", "a"], ["g"], [frozenset({0})], [0])

    def test_roundtrip_through_library(self, figure1_model):
        rebuilt = AssociationGoalModel.from_library(figure1_model.to_library())
        assert rebuilt.num_implementations == figure1_model.num_implementations
        assert set(rebuilt.goal_labels()) == set(figure1_model.goal_labels())
        assert set(rebuilt.action_labels()) == set(figure1_model.action_labels())


class TestLabelTranslation:
    def test_action_id_roundtrip(self, figure1_model):
        aid = figure1_model.action_id("a1")
        assert figure1_model.action_label(aid) == "a1"

    def test_goal_id_roundtrip(self, figure1_model):
        gid = figure1_model.goal_id("g3")
        assert figure1_model.goal_label(gid) == "g3"

    def test_unknown_action_raises(self, figure1_model):
        with pytest.raises(UnknownActionError):
            figure1_model.action_id("missing")

    def test_unknown_goal_raises(self, figure1_model):
        with pytest.raises(UnknownGoalError):
            figure1_model.goal_id("missing")

    def test_has_action_and_goal(self, figure1_model):
        assert figure1_model.has_action("a1")
        assert not figure1_model.has_action("zz")
        assert figure1_model.has_goal("g1")
        assert not figure1_model.has_goal("zz")

    def test_encode_drops_unknown_by_default(self, figure1_model):
        encoded = figure1_model.encode_activity({"a1", "napkins"})
        assert encoded == frozenset({figure1_model.action_id("a1")})

    def test_encode_strict_raises_on_unknown(self, figure1_model):
        with pytest.raises(UnknownActionError):
            figure1_model.encode_activity({"a1", "napkins"}, strict=True)

    def test_decode_actions(self, figure1_model):
        ids = [figure1_model.action_id(a) for a in ("a1", "a4")]
        assert figure1_model.decode_actions(ids) == ["a1", "a4"]


class TestIndexes:
    def test_gi_a_idx(self, figure1_model):
        m = figure1_model
        pid = next(iter(m.implementations_of_goal(m.goal_id("g2"))))
        actions = {m.action_label(a) for a in m.implementation_actions(pid)}
        assert actions == {"a1", "a4"}

    def test_gi_g_idx(self, figure1_model):
        m = figure1_model
        pid = next(iter(m.implementations_of_goal(m.goal_id("g4"))))
        assert m.goal_label(m.implementation_goal(pid)) == "g4"

    def test_a_gi_idx_example_4_3(self, figure1_model):
        """Example 4.3: a1 participates in implementations of g1,g2,g3,g5."""
        m = figure1_model
        pids = m.implementations_of_action(m.action_id("a1"))
        goals = {m.goal_label(m.implementation_goal(p)) for p in pids}
        assert goals == {"g1", "g2", "g3", "g5"}

    def test_g_gi_idx_inverse_of_gi_g_idx(self, figure1_model):
        m = figure1_model
        for gid in range(m.num_goals):
            for pid in m.implementations_of_goal(gid):
                assert m.implementation_goal(pid) == gid

    def test_implementation_reconstruction(self, figure1_model):
        impl = figure1_model.implementation(0)
        assert impl.impl_id == 0
        assert impl.goal == "g1"
        assert impl.actions == frozenset({"a1", "a2", "a3"})


class TestSpaces:
    def test_goal_space_of_a1(self, figure1_model):
        """Definition 4.1 on the Figure 1 example."""
        assert figure1_model.goal_space_labels({"a1"}) == {"g1", "g2", "g3", "g5"}

    def test_action_space_of_a1(self, figure1_model):
        """Definition 4.2 on the Figure 1 example (a1's co-contributors)."""
        space = figure1_model.action_space_labels({"a1"})
        assert space == {"a1", "a2", "a3", "a4", "a5", "a6"}

    def test_candidate_actions_exclude_activity(self, figure1_model):
        m = figure1_model
        encoded = m.encode_activity({"a1"})
        candidates = {m.action_label(a) for a in m.candidate_actions(encoded)}
        assert candidates == {"a2", "a3", "a4", "a5", "a6"}

    def test_goal_space_of_set_is_union(self, figure1_model):
        """GS({a2, a6}) = GS(a2) ∪ GS(a6)."""
        m = figure1_model
        union = m.goal_space_labels({"a2"}) | m.goal_space_labels({"a6"})
        assert m.goal_space_labels({"a2", "a6"}) == union

    def test_empty_activity_has_empty_spaces(self, figure1_model):
        m = figure1_model
        empty = frozenset()
        assert m.implementation_space(empty) == set()
        assert m.goal_space(empty) == set()
        assert m.action_space(empty) == set()

    def test_implementation_space_counts(self, figure1_model):
        m = figure1_model
        encoded = m.encode_activity({"a6"})
        # a6 appears in the implementations of g4 and g5.
        assert len(m.implementation_space(encoded)) == 2


class TestDerivedStatistics:
    def test_connectivity(self, figure1_model):
        # a1 in 4 impls, a2 in 2, a6 in 2, a3/a4/a5 in 1 -> 11/6.
        assert figure1_model.connectivity() == pytest.approx(11 / 6)

    def test_action_frequencies_sum(self, figure1_model):
        freqs = figure1_model.action_frequencies()
        a1 = figure1_model.action_id("a1")
        assert freqs[a1] == pytest.approx(4 / 5)

    def test_goal_completeness_best_implementation_wins(self):
        model = AssociationGoalModel.from_pairs(
            [("g", {"a", "b", "c", "d"}), ("g", {"a", "b"})]
        )
        encoded = model.encode_activity({"a", "b"})
        # The short implementation is fully done: completeness 1.
        assert model.goal_completeness(model.goal_id("g"), encoded) == 1.0

    def test_goal_completeness_zero_when_untouched(self, figure1_model):
        m = figure1_model
        encoded = m.encode_activity({"a1"})
        assert m.goal_completeness(m.goal_id("g4"), encoded) == 0.0

    def test_stats_consistency_with_library(self, recipe_model, recipe_library):
        assert recipe_model.stats() == recipe_library.stats()


class TestRestriction:
    def test_projection_keeps_only_wanted_goals(self, figure1_model):
        projected = figure1_model.restrict_to_goals({"g1", "g4"})
        assert set(projected.goal_labels()) == {"g1", "g4"}
        assert projected.num_implementations == 2

    def test_projection_shrinks_spaces(self, figure1_model):
        projected = figure1_model.restrict_to_goals({"g1"})
        assert projected.goal_space_labels({"a1"}) == {"g1"}

    def test_unknown_goals_ignored(self, figure1_model):
        projected = figure1_model.restrict_to_goals({"g1", "martian"})
        assert set(projected.goal_labels()) == {"g1"}

    def test_empty_projection_rejected(self, figure1_model):
        from repro.exceptions import ModelError

        with pytest.raises(ModelError, match="no implementation"):
            figure1_model.restrict_to_goals({"martian"})

    def test_projection_recommendable(self, recipe_model):
        from repro.core import GoalRecommender

        desserts = recipe_model.restrict_to_goals({"carrot cake"})
        result = GoalRecommender(desserts).recommend({"carrots"}, k=5)
        assert result.action_set() <= {"flour", "eggs", "sugar"}

    def test_projection_identical_to_label_level_rebuild(self):
        """The id-level projection must equal rebuilding from the filtered
        label-level pairs (the previous implementation's semantics)."""
        import random

        from repro.core import GoalRecommender

        rng = random.Random(5)
        goals = [f"g{i}" for i in range(8)]
        actions = [f"a{i}" for i in range(20)]
        pairs = [
            (rng.choice(goals), set(rng.sample(actions, rng.randint(2, 5))))
            for _ in range(35)
        ]
        model = AssociationGoalModel.from_pairs(pairs)
        wanted = {"g0", "g3", "g5"}
        projected = model.restrict_to_goals(wanted)
        rebuilt = AssociationGoalModel.from_pairs(
            [(g, a) for g, a in pairs if g in wanted]
        )
        assert projected.num_implementations == rebuilt.num_implementations
        assert set(projected.goal_labels()) == set(rebuilt.goal_labels())
        for pid in range(projected.num_implementations):
            ours = projected.implementation(pid)
            theirs = rebuilt.implementation(pid)
            assert (ours.goal, ours.actions) == (theirs.goal, theirs.actions)
        for activity in ({"a0"}, {"a1", "a2"}, set(actions[:5])):
            left = GoalRecommender(projected).recommend(activity, k=10)
            right = GoalRecommender(rebuilt).recommend(activity, k=10)
            assert left.actions() == right.actions()
            assert [i.score for i in left] == [i.score for i in right]
