"""Unit tests for the BPR baseline."""

import numpy as np
import pytest

from repro.baselines.bpr import BPRRecommender
from repro.exceptions import RecommendationError


@pytest.fixture
def block_corpus():
    dairy = [{"milk", "cheese", "yogurt"}, {"milk", "cheese"}, {"cheese", "yogurt"}]
    tools = [{"hammer", "nails", "saw"}, {"hammer", "nails"}, {"nails", "saw"}]
    return dairy + tools


class TestConfiguration:
    def test_invalid_parameters_rejected(self):
        for kwargs in (
            {"num_factors": 0},
            {"num_epochs": 0},
            {"learning_rate": 0},
            {"regularization": 0},
        ):
            with pytest.raises(ValueError):
                BPRRecommender(**kwargs)

    def test_fit_required(self):
        with pytest.raises(RecommendationError, match="before fit"):
            BPRRecommender().recommend({"a"})


class TestTraining:
    def test_factor_shapes(self, block_corpus):
        model = BPRRecommender(num_factors=4, num_epochs=2).fit(block_corpus)
        assert model.user_factors.shape == (6, 4)
        assert model.item_factors.shape == (6, 4)

    def test_pairwise_objective_learned(self, block_corpus):
        """A dairy user's observed items must outscore tool items."""
        model = BPRRecommender(num_factors=8, num_epochs=40, seed=0).fit(
            block_corpus
        )
        dairy_user = model.user_factors[0]
        cheese = model.items.get("cheese")
        hammer = model.items.get("hammer")
        assert dairy_user @ model.item_factors[cheese] > (
            dairy_user @ model.item_factors[hammer]
        )

    def test_deterministic_given_seed(self, block_corpus):
        a = BPRRecommender(num_epochs=3, seed=5).fit(block_corpus)
        b = BPRRecommender(num_epochs=3, seed=5).fit(block_corpus)
        np.testing.assert_allclose(a.item_factors, b.item_factors)


class TestRecommend:
    def test_within_community_recommendation(self, block_corpus):
        model = BPRRecommender(num_factors=8, num_epochs=40, seed=0).fit(
            block_corpus
        )
        result = model.recommend({"milk", "cheese"}, k=1)
        assert result.actions() == ["yogurt"]

    def test_query_items_excluded(self, block_corpus):
        model = BPRRecommender(num_epochs=2).fit(block_corpus)
        assert "milk" not in model.recommend({"milk"}, k=10).actions()

    def test_fold_in_empty_is_zero(self, block_corpus):
        model = BPRRecommender(num_factors=4, num_epochs=2).fit(block_corpus)
        np.testing.assert_allclose(model.fold_in(frozenset()), np.zeros(4))

    def test_beats_random_on_generated_data(self, fortythree_tiny):
        """BPR must retrieve hidden actions above the random-pick rate."""
        from repro.eval import ExperimentHarness, average_true_positive_rate

        harness = ExperimentHarness(fortythree_tiny, k=10, max_users=30, seed=0)
        bpr = BPRRecommender(num_epochs=60, seed=0).fit(
            harness.split.observed_activities()
        )
        lists = [bpr.recommend(user.observed, k=10) for user in harness.split]
        hidden = harness.hidden_sets()
        tpr = average_true_positive_rate(lists, hidden)
        # Expected TPR of a uniform random picker: per user, the fraction
        # of the recommendable catalogue that happens to be hidden-relevant.
        catalog_labels = {
            bpr.items.label(item) for item in range(len(bpr.items))
        }
        random_rate = sum(
            len(set(h) & catalog_labels) / len(catalog_labels) for h in hidden
        ) / len(hidden)
        assert tpr > random_rate
