"""Unit tests for goal inference."""

import pytest

from repro.core import AssociationGoalModel
from repro.core.goal_inference import GoalInferencer
from repro.eval import make_split
from repro.exceptions import RecommendationError


@pytest.fixture
def model():
    return AssociationGoalModel.from_pairs(
        [
            ("near_done", {"h1", "h2", "x"}),       # 2/3 complete
            ("barely_started", {"h1", "a", "b", "c", "d"}),  # 1/5
            ("tight_fit", {"h1", "h2"}),            # fully explained
            ("unrelated", {"q", "r"}),
        ]
    )


ACTIVITY = {"h1", "h2"}


class TestConstruction:
    def test_invalid_scorer_rejected(self, model):
        with pytest.raises(ValueError, match="scorer"):
            GoalInferencer(model, scorer="nope")


class TestInfer:
    def test_only_goal_space_goals_scored(self, model):
        inferred = GoalInferencer(model).infer(ACTIVITY)
        goals = {goal for goal, _ in inferred}
        assert "unrelated" not in goals
        assert goals == {"near_done", "barely_started", "tight_fit"}

    def test_completeness_scorer_values(self, model):
        inferred = dict(
            GoalInferencer(model, scorer="completeness").infer(ACTIVITY)
        )
        assert inferred["tight_fit"] == pytest.approx(1.0)
        assert inferred["near_done"] == pytest.approx(2 / 3)
        assert inferred["barely_started"] == pytest.approx(1 / 5)

    def test_evidence_scorer_values(self, model):
        inferred = dict(GoalInferencer(model, scorer="evidence").infer(ACTIVITY))
        # Both actions touch near_done and tight_fit; only h1 touches
        # barely_started.
        assert inferred["near_done"] == pytest.approx(1.0)
        assert inferred["barely_started"] == pytest.approx(0.5)

    def test_coverage_blends_both_directions(self, model):
        inferred = dict(GoalInferencer(model, scorer="coverage").infer(ACTIVITY))
        # tight_fit: completeness 1 x coverage 1 = 1; near_done: 2/3 x 1.
        assert inferred["tight_fit"] == pytest.approx(1.0)
        assert inferred["near_done"] == pytest.approx(2 / 3)
        assert inferred["barely_started"] == pytest.approx((1 / 5) * (1 / 2))

    def test_ranking_order_and_top(self, model):
        top = GoalInferencer(model, scorer="coverage").infer(ACTIVITY, top=1)
        assert top == [("tight_fit", pytest.approx(1.0))]

    def test_top_validated(self, model):
        with pytest.raises(RecommendationError, match="positive"):
            GoalInferencer(model).infer(ACTIVITY, top=0)

    def test_unknown_activity_empty(self, model):
        assert GoalInferencer(model).infer({"martian"}) == []

    def test_deterministic_tie_break_by_label(self):
        model = AssociationGoalModel.from_pairs(
            [("beta", {"h", "x"}), ("alpha", {"h", "y"})]
        )
        inferred = GoalInferencer(model, scorer="completeness").infer({"h"})
        assert [goal for goal, _ in inferred] == ["alpha", "beta"]


class TestHitRate:
    def test_on_generated_dataset(self, fortythree_tiny):
        """True goals should be recoverable from 30% of the activity."""
        model = AssociationGoalModel.from_library(fortythree_tiny.library)
        inferencer = GoalInferencer(model, scorer="coverage")
        split = make_split(fortythree_tiny, seed=0, max_users=40)
        hit3 = inferencer.hit_rate_at(
            3,
            [user.observed for user in split],
            [user.user.goals for user in split],
        )
        assert hit3 > 0.5  # far above chance over ~30 goals

    def test_larger_k_never_hurts(self, fortythree_tiny):
        model = AssociationGoalModel.from_library(fortythree_tiny.library)
        inferencer = GoalInferencer(model)
        split = make_split(fortythree_tiny, seed=0, max_users=30)
        activities = [user.observed for user in split]
        goals = [user.user.goals for user in split]
        assert inferencer.hit_rate_at(5, activities, goals) >= (
            inferencer.hit_rate_at(1, activities, goals)
        )

    def test_mismatched_inputs_rejected(self, model):
        inferencer = GoalInferencer(model)
        with pytest.raises(RecommendationError, match="mismatched"):
            inferencer.hit_rate_at(1, [ACTIVITY], [])

    def test_empty_users_rejected(self, model):
        with pytest.raises(RecommendationError, match="no users"):
            GoalInferencer(model).hit_rate_at(1, [], [])

    def test_k_validated(self, model):
        with pytest.raises(RecommendationError):
            GoalInferencer(model).hit_rate_at(0, [ACTIVITY], [["g"]])
