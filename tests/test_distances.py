"""Unit tests for the Best Match distance functions."""

import math

import pytest

from repro.core.distances import (
    cosine_distance,
    euclidean_distance,
    get_distance,
    manhattan_distance,
)


class TestCosine:
    def test_identical_vectors(self):
        assert cosine_distance([1, 2, 3], [1, 2, 3]) == pytest.approx(0.0)

    def test_parallel_vectors(self):
        assert cosine_distance([1, 2], [2, 4]) == pytest.approx(0.0)

    def test_orthogonal_vectors(self):
        assert cosine_distance([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_zero_vector_distance_is_one(self):
        assert cosine_distance([0, 0], [1, 2]) == 1.0
        assert cosine_distance([1, 2], [0, 0]) == 1.0

    def test_range(self):
        # Non-negative vectors: distance in [0, 1].
        assert 0.0 <= cosine_distance([3, 1], [1, 4]) <= 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            cosine_distance([1], [1, 2])


class TestEuclidean:
    def test_known_value(self):
        assert euclidean_distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_identity(self):
        assert euclidean_distance([1, 2], [1, 2]) == 0.0

    def test_symmetry(self):
        assert euclidean_distance([1, 5], [4, 1]) == euclidean_distance(
            [4, 1], [1, 5]
        )

    def test_triangle_inequality(self):
        a, b, c = [0.0, 0.0], [1.0, 2.0], [3.0, 1.0]
        assert euclidean_distance(a, c) <= (
            euclidean_distance(a, b) + euclidean_distance(b, c) + 1e-12
        )


class TestManhattan:
    def test_known_value(self):
        assert manhattan_distance([1, 2], [4, -2]) == pytest.approx(7.0)

    def test_dominates_euclidean(self):
        u, v = [1.0, 3.0, -2.0], [4.0, 0.0, 1.0]
        assert manhattan_distance(u, v) >= euclidean_distance(u, v)


class TestRegistry:
    def test_lookup(self):
        assert get_distance("cosine") is cosine_distance
        assert get_distance("euclidean") is euclidean_distance
        assert get_distance("manhattan") is manhattan_distance

    def test_unknown_lists_choices(self):
        with pytest.raises(ValueError, match="cosine"):
            get_distance("chebyshev")

    def test_all_metrics_finite_on_integers(self):
        for name in ("cosine", "euclidean", "manhattan"):
            value = get_distance(name)([1, 0, 2], [0, 3, 1])
            assert math.isfinite(value)
