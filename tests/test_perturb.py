"""Unit tests for library perturbation."""

import pytest

from repro.data.perturb import perturb_library


class TestPerturb:
    def test_zero_noise_is_identity(self, recipe_library):
        noisy = perturb_library(recipe_library, seed=0)
        assert [(i.goal, i.actions) for i in noisy] == [
            (i.goal, i.actions) for i in recipe_library
        ]

    def test_original_untouched(self, recipe_library):
        before = [(i.goal, i.actions) for i in recipe_library]
        perturb_library(recipe_library, drop_prob=0.5, seed=1)
        assert [(i.goal, i.actions) for i in recipe_library] == before

    def test_drop_removes_actions(self, recipe_library):
        noisy = perturb_library(recipe_library, drop_prob=0.5, seed=1)
        before = sum(len(i.actions) for i in recipe_library)
        after = sum(len(i.actions) for i in noisy)
        assert after < before

    def test_drop_never_empties_implementation(self, recipe_library):
        noisy = perturb_library(recipe_library, drop_prob=0.99, seed=2)
        assert all(len(impl.actions) >= 1 for impl in noisy)

    def test_add_uses_library_vocabulary(self, recipe_library):
        vocabulary = recipe_library.actions()
        noisy = perturb_library(recipe_library, add_prob=1.0, seed=3)
        assert noisy.actions() <= vocabulary

    def test_relabel_changes_goals_but_keeps_goal_set(self, recipe_library):
        noisy = perturb_library(recipe_library, relabel_prob=1.0, seed=4)
        assert noisy.goals() <= recipe_library.goals()
        relabelled = sum(
            1
            for original, new in zip(recipe_library, noisy)
            if original.goal != new.goal
        )
        assert relabelled == len(recipe_library)

    def test_deterministic(self, recipe_library):
        a = perturb_library(recipe_library, drop_prob=0.3, add_prob=0.3, seed=5)
        b = perturb_library(recipe_library, drop_prob=0.3, add_prob=0.3, seed=5)
        assert [(i.goal, i.actions) for i in a] == [
            (i.goal, i.actions) for i in b
        ]

    def test_invalid_probabilities_rejected(self, recipe_library):
        with pytest.raises(ValueError):
            perturb_library(recipe_library, drop_prob=1.5)

    def test_model_still_buildable_under_heavy_noise(self, recipe_library):
        from repro.core import AssociationGoalModel, GoalRecommender

        noisy = perturb_library(
            recipe_library, drop_prob=0.4, add_prob=0.5, relabel_prob=0.3,
            seed=6,
        )
        model = AssociationGoalModel.from_library(noisy)
        result = GoalRecommender(model).recommend({"potatoes"}, k=5)
        assert len(result) >= 0  # never crashes
