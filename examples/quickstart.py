"""Quickstart: goal-based recommendations in twenty lines.

Builds the paper's motivating grocery scenario — a shopper with potatoes and
carrots in the cart, a small recipe library — and shows how each of the four
goal-based strategies ranks the missing ingredients, plus the explanation
facility that grounds a recommendation in the implementations behind it.

Run:  python examples/quickstart.py
"""

from repro import AssociationGoalModel, GoalRecommender

RECIPES = [
    ("olivier salad", {"potatoes", "carrots", "pickles"}),
    ("mashed potatoes", {"potatoes", "nutmeg", "butter"}),
    ("pan-fried carrots", {"carrots", "nutmeg", "oil"}),
    ("carrot cake", {"carrots", "flour", "eggs", "sugar"}),
    ("pickle soup", {"pickles", "potatoes", "cream"}),
]

CART = {"potatoes", "carrots"}


def main() -> None:
    model = AssociationGoalModel.from_pairs(RECIPES)
    recommender = GoalRecommender(model)

    print(f"cart: {sorted(CART)}")
    print(f"goal space: {sorted(model.goal_space_labels(CART))}\n")

    for strategy in ("focus_cmp", "focus_cl", "breadth", "best_match"):
        result = recommender.recommend(CART, k=3, strategy=strategy)
        ranked = ", ".join(
            f"{item.action} ({item.score:.2f})" for item in result
        )
        print(f"{strategy:>10}: {ranked}")

    print("\nwhy pickles?")
    for goal, activities in recommender.explain(CART, "pickles").items():
        for activity in activities:
            print(f"  {goal}: needs {sorted(activity)}")


if __name__ == "__main__":
    main()
