"""The paper's Figure 1 scenario: an online clothing store with outfits.

Outfits labelled with purposes ("meeting friends", "be warm", ...) are goal
implementations; buying an item is an action.  Given what a customer already
owns, the goal-based strategies suggest the garments that complete outfits —
and the SQLite store answers the space queries without loading the library.

Run:  python examples/outfit_store.py
"""

from repro import AssociationGoalModel, GoalRecommender, ImplementationLibrary
from repro.storage import SqliteLibraryStore

OUTFITS = [
    ("meeting friends", {"jeans", "white tee", "sneakers"}),
    ("meeting friends", {"chinos", "polo shirt", "sneakers"}),
    ("going to the office", {"chinos", "oxford shirt", "loafers"}),
    ("be warm", {"wool coat", "scarf", "beanie", "jeans"}),
    ("gym session", {"track pants", "white tee", "running shoes"}),
    ("summer walk", {"shorts", "white tee", "sandals"}),
]

WARDROBE = {"jeans", "white tee"}


def main() -> None:
    library = ImplementationLibrary()
    for goal, items in OUTFITS:
        library.add_pair(goal, items)

    model = AssociationGoalModel.from_library(library)
    recommender = GoalRecommender(model)

    print(f"wardrobe: {sorted(WARDROBE)}")
    print(f"outfit purposes in reach: {sorted(model.goal_space_labels(WARDROBE))}\n")

    for strategy in ("focus_cl", "breadth", "best_match"):
        result = recommender.recommend(WARDROBE, k=4, strategy=strategy)
        print(f"{strategy:>10}: {', '.join(result.actions())}")

    # The same space queries, answered inside SQLite (Section 4's
    # "hundreds or millions of implementations" deployment path).
    with SqliteLibraryStore(":memory:") as store:
        store.save(library)
        goals_sql = store.goal_space_sql(WARDROBE)
        assert goals_sql == model.goal_space_labels(WARDROBE)
        print(f"\nSQLite agrees on the goal space: {sorted(goals_sql)}")


if __name__ == "__main__":
    main()
