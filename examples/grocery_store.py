"""Grocery scenario end to end: synthetic FoodMart-style data, all methods.

Generates a grocery world (products in categories, recipes as goal
implementations, carts as user activities), then compares the four
goal-based strategies against content-based and collaborative baselines on
one cart — printing, for each method, the recommended products and how
complete the shopper's reachable recipes would become.

Run:  python examples/grocery_store.py
"""

from repro import AssociationGoalModel, GoalRecommender, PAPER_STRATEGIES
from repro.baselines import CFKnnRecommender, ContentBasedRecommender
from repro.data import FoodMartConfig, generate_foodmart
from repro.eval import goal_completeness_after


def main() -> None:
    dataset = generate_foodmart(FoodMartConfig.tiny(), seed=0)
    print(dataset.summary(), "\n")

    model = AssociationGoalModel.from_library(dataset.library)
    recommender = GoalRecommender(model)

    # Train the baselines on every other shopper's cart.
    carts = dataset.activities()
    cart = carts[0]
    training = carts[1:]
    knn = CFKnnRecommender().fit(training)
    content = ContentBasedRecommender(dataset.item_features).fit(training)

    print(f"shopper's cart ({len(cart)} products): {sorted(cart)[:6]}...")
    print(f"reachable recipes: {len(model.goal_space_labels(cart))}\n")

    results = {
        name: recommender.recommend(cart, k=5, strategy=name)
        for name in PAPER_STRATEGIES
    }
    results["cf_knn"] = knn.recommend(cart, k=5)
    results["content"] = content.recommend(cart, k=5)

    print(f"{'method':>10}  {'avg recipe completeness':>24}  recommendations")
    for name, result in results.items():
        summary = goal_completeness_after(model, cart, result)
        top = ", ".join(result.actions()[:3])
        print(f"{name:>10}  {summary.average:>24.3f}  {top}")

    print(
        "\nGoal-based methods pick products that finish recipes the cart "
        "already started; content picks same-category products; CF picks "
        "what similar shoppers bought."
    )


if __name__ == "__main__":
    main()
