"""Goal inference on the bundled sample data.

Uses the hand-curated life-goal stories: extract a library from the raw
text, then — given a partial activity — infer which life goals the user is
pursuing under each scorer, and show the recommendations that would follow.

Run:  python examples/goal_inference.py
"""

from repro.core import AssociationGoalModel, GoalRecommender
from repro.core.goal_inference import GoalInferencer
from repro.data.samples import life_goal_stories, life_goals_library
from repro.eval.report import ascii_bar_chart

ACTIVITY = {"join gym", "drink water", "track spending in notebook"}


def main() -> None:
    stories = life_goal_stories()
    library = life_goals_library()
    print(
        f"extracted {library.stats()} from {len(stories)} stories\n"
    )

    model = AssociationGoalModel.from_library(library)
    print(f"user has done: {sorted(ACTIVITY)}\n")

    for scorer in ("evidence", "completeness", "coverage"):
        inferred = GoalInferencer(model, scorer=scorer).infer(ACTIVITY, top=5)
        labels = [goal for goal, _ in inferred]
        values = [score for _, score in inferred]
        print(ascii_bar_chart(labels, values, width=30,
                              title=f"scorer = {scorer}"))
        print()

    recommender = GoalRecommender(model)
    result = recommender.recommend(ACTIVITY, k=5, strategy="breadth")
    print("next actions (breadth):")
    for item in result:
        evidence = recommender.explain(ACTIVITY, item.action)
        goals = ", ".join(sorted(map(str, evidence)))
        print(f"  {item.action}  <- serves: {goals}")


if __name__ == "__main__":
    main()
