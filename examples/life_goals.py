"""Life-goal scenario: the paper's 43Things setting, end to end.

Generates a sparse life-goal world (goal families, low action connectivity,
users pursuing 1-6 goals), hides 70% of one user's activity exactly as the
paper's protocol does, and shows how well each goal-based strategy recovers
the hidden actions and advances the user's *true* goals.

Run:  python examples/life_goals.py
"""

from repro import AssociationGoalModel, GoalRecommender, PAPER_STRATEGIES
from repro.data import FortyThreeConfig, generate_fortythree
from repro.eval import goal_completeness_after, make_split, true_positive_rate


def main() -> None:
    dataset = generate_fortythree(FortyThreeConfig.tiny(), seed=1)
    print(dataset.summary(), "\n")

    model = AssociationGoalModel.from_library(dataset.library)
    recommender = GoalRecommender(model)
    split = make_split(dataset, observed_fraction=0.3, seed=0)

    # Pick a multi-goal user so the strategies can disagree.
    user = next(u for u in split if len(u.user.goals) >= 2)
    print(f"user {user.user.user_id} pursues: {', '.join(user.user.goals)}")
    print(
        f"observed {len(user.observed)} of "
        f"{len(user.user.full_activity)} actions\n"
    )

    header = f"{'method':>10}  {'TPR':>5}  {'goal completeness':>18}  top actions"
    print(header)
    for strategy in PAPER_STRATEGIES:
        result = recommender.recommend(user.observed, k=10, strategy=strategy)
        tpr = true_positive_rate(result, user.hidden)
        summary = goal_completeness_after(
            model, user.observed, result, goals=user.user.goals
        )
        top = ", ".join(result.actions()[:3])
        print(f"{strategy:>10}  {tpr:>5.2f}  {summary.average:>18.3f}  {top}")

    print(
        "\nTPR counts recommended actions the user had actually performed "
        "(they were hidden); completeness is over the user's true goals."
    )


if __name__ == "__main__":
    main()
