"""From plain-text success stories to a recommendation-ready library.

The paper built its 43Things dataset by extracting actions from free-text
descriptions of how users achieved their goals.  This example runs our
rule-based extractor over a handful of wikiHow-style stories, builds the
implementation library, and serves goal-based recommendations from it.

Run:  python examples/text_to_library.py
"""

from repro import AssociationGoalModel, GoalRecommender
from repro.text import ActionExtractor, GoalStory, extract_implementations

STORIES = [
    GoalStory(
        "lose weight",
        "I stopped eating at restaurants. Drank more water, and I joined "
        "a gym. Finally I started tracking calories every day.",
    ),
    GoalStory(
        "get fit",
        "Join a gym. Run every morning. Drink more water!",
    ),
    GoalStory(
        "save money",
        "1. stop eating at restaurants 2. cook at home 3. track spending "
        "in a notebook",
    ),
    GoalStory(
        "run a marathon",
        "I ran every morning, then signed up for a local race and "
        "stretched daily.",
    ),
    GoalStory(
        "be happier",
        "It was a difficult year. The weather did not help.",  # no actions
    ),
]


def main() -> None:
    extractor = ActionExtractor()
    for story in STORIES:
        actions = extractor.extract(story)
        print(f"{story.goal!r}: {actions or '(no actions found)'}")

    library = extract_implementations(STORIES, extractor)
    model = AssociationGoalModel.from_library(library)
    print(f"\nextracted library: {library.stats()}")

    recommender = GoalRecommender(model)
    activity = {"join gym"}
    print(f"\nuser has done: {sorted(activity)}")
    print(f"goals in reach: {sorted(model.goal_space_labels(activity))}")
    result = recommender.recommend(activity, k=5, strategy="breadth")
    for item in result:
        print(f"  recommend: {item.action}  (score {item.score:.1f})")


if __name__ == "__main__":
    main()
