"""Course planning: the paper's online-learning motivation, end to end.

Specializations are goals, their tracks are implementations, courses are
actions.  For one student partway through a track, compare what each
strategy suggests next, show the ensemble fusion, and render a structured
explanation of the top suggestion.

Run:  python examples/course_planner.py
"""

from repro.core import AssociationGoalModel, GoalRecommender
from repro.core.explain import explain_action, render_explanation
from repro.core.goal_inference import GoalInferencer
from repro.data import LearningConfig, generate_learning


def main() -> None:
    dataset = generate_learning(LearningConfig.tiny(), seed=2)
    print(dataset.summary(), "\n")

    model = AssociationGoalModel.from_library(dataset.library)
    recommender = GoalRecommender(model)

    student = next(u for u in dataset.users if len(u.goals) == 2)
    print(f"{student.user_id} is enrolled toward: {', '.join(student.goals)}")
    print(f"completed {len(student.full_activity)} courses\n")

    inferred = GoalInferencer(model, scorer="coverage").infer(
        student.full_activity, top=3
    )
    print("the model's guess at the student's targets:")
    for goal, score in inferred:
        marker = "✓" if goal in student.goals else " "
        print(f"  [{marker}] {goal}  ({score:.2f})")
    print()

    strategies = ("focus_cmp", "breadth", "best_match", "ensemble")
    for strategy in strategies:
        options = (
            {"members": ("focus_cmp", "breadth", "best_match")}
            if strategy == "ensemble"
            else {}
        )
        result = recommender.recommend(
            student.full_activity, k=3, strategy=strategy, **options
        )
        print(f"{strategy:>10}: {', '.join(map(str, result.actions()))}")

    top = recommender.recommend(
        student.full_activity, k=1, strategy="focus_cmp"
    ).actions()[0]
    print()
    print(
        render_explanation(
            explain_action(model, student.full_activity, top)
        )
    )


if __name__ == "__main__":
    main()
