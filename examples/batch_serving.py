"""Production serving patterns: bulk scoring, live updates, HTTP API.

Three deployment-oriented features on one dataset:

1. :class:`~repro.core.vectorized.BatchRecommender` — sparse-matrix bulk
   scoring, bit-identical to the reference strategies but built for
   throughput (compared here with a quick wall-clock measurement);
2. :class:`~repro.core.incremental.IncrementalGoalModel` — a new recipe is
   published, the next recommendation reflects it without a rebuild;
3. :class:`~repro.service.RecommenderService` — the stdlib HTTP JSON API.

Run:  python examples/batch_serving.py
"""

import json
import time
import urllib.request

from repro.core import AssociationGoalModel, GoalRecommender, IncrementalGoalModel
from repro.core.vectorized import BatchRecommender
from repro.data import FoodMartConfig, generate_foodmart
from repro.service import RecommenderService


def main() -> None:
    dataset = generate_foodmart(FoodMartConfig.small(), seed=0)
    model = AssociationGoalModel.from_library(dataset.library)
    carts = [user.full_activity for user in dataset.users[:200]]
    print(dataset.summary())

    # 1. Bulk scoring -------------------------------------------------
    reference = GoalRecommender(model)
    batch = BatchRecommender(model)
    start = time.perf_counter()
    slow = [reference.recommend(cart, k=10, strategy="breadth") for cart in carts]
    reference_seconds = time.perf_counter() - start
    start = time.perf_counter()
    fast = batch.recommend_many(carts, k=10, strategy="breadth")
    batch_seconds = time.perf_counter() - start
    agree = all(a.actions() == b.actions() for a, b in zip(slow, fast))
    print(
        f"\nbulk breadth over {len(carts)} carts: reference "
        f"{reference_seconds * 1e3:.0f}ms, vectorized {batch_seconds * 1e3:.0f}ms, "
        f"identical output: {agree}"
    )

    # 2. Live updates --------------------------------------------------
    live = IncrementalGoalModel.from_library(dataset.library)
    live_recommender = GoalRecommender(live)
    cart = set(sorted(carts[0])[:4])
    # Focus_cl: the new recipe is one action from completion, so its
    # missing product tops the list the moment the recipe is indexed.
    before = live_recommender.recommend(cart, k=5, strategy="focus_cl").action_set()
    live.add_implementation("todays special", set(cart) | {"brand_new_product"})
    after = live_recommender.recommend(cart, k=5, strategy="focus_cl").action_set()
    print(
        f"\nlive update: new recipe published -> 'brand_new_product' "
        f"recommended: {'brand_new_product' in after} "
        f"(was {'brand_new_product' in before})"
    )

    # 3. HTTP API -------------------------------------------------------
    with RecommenderService(model, port=0) as server:
        url = f"http://127.0.0.1:{server.port}/recommend"
        body = json.dumps(
            {"activity": sorted(map(str, cart)), "k": 3}
        ).encode()
        request = urllib.request.Request(
            url, data=body, headers={"Content-Type": "application/json"}
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            payload = json.loads(response.read())
        print(
            f"\nHTTP /recommend on port {server.port}: "
            f"{[row['action'] for row in payload['recommendations']]}"
        )


if __name__ == "__main__":
    main()
